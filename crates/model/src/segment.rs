//! Shared prefix segments: recorded, replayable KV snapshots of one prompt
//! prefix, the storage unit of cross-session prefix sharing.
//!
//! A backend's state after pre-filling a prefix is a deterministic function
//! of the *call sequence* it observed: the `insert`s (with the model's KV
//! projections) interleaved with the `observe_attention` score reports of
//! each step.  [`SegmentRecorder`] wraps a live backend during a one-time
//! publication pre-fill and records exactly that sequence — the raw per-head
//! keys/values into per-`(layer, head)` arenas, the layer-input vectors, and
//! every score report — together with the post-prefix logits and the fault
//! injector's RNG snapshot.  The frozen result is a [`SharedSegment`].
//!
//! A later session whose prompt starts with the published prefix *replays*
//! the segment ([`SharedSegment::replay_into`]) instead of running the
//! transformer over those tokens: the replayed call sequence reproduces the
//! backend state **bit-identically** (for every policy — score-tracking,
//! evicting, quantizing), the adopted logits and fault snapshot restore the
//! generation cursor, and the expensive part — the matrix work of the prefix
//! forward passes — is skipped entirely.
//!
//! Replay pairs with [`KvCacheBackend::attach_shared_prefix`]: backends that
//! store raw KV in insertion order open their arenas over the segment's
//! refcounted grid first, so the replayed inserts adopt the shared entries
//! zero-copy (see the copy-on-evict notes in [`crate::arena`]).

use crate::arena::{ArenaGrid, SharedKv};
use crate::cache::{CacheStats, EntryRef, KvCacheBackend, PayloadRef, TokenId};
use crate::fault::ProbabilisticFaults;
use std::sync::Arc;

/// One recorded backend call of the prefix pre-fill.
#[derive(Debug, Clone, Copy)]
enum ReplayEvent {
    /// An `insert` call; the payload lives in the segment's KV grid and
    /// input-vector store at `index`.
    Insert { layer: u32, token: u32, index: u32 },
    /// An `observe_attention` call; the scores live in the segment's flat
    /// score pool at `start..start + len`.
    Observe {
        layer: u32,
        head: u32,
        start: u32,
        len: u32,
    },
}

/// An immutable, refcounted snapshot of one pre-filled prompt prefix.
///
/// Produced by [`SegmentRecorder::finish`], published into the prefix store
/// behind an `Arc`, and consumed by cache-hit sessions via
/// [`replay_into`](SharedSegment::replay_into).  See the [module
/// docs](self) for the hit/miss/publish lifecycle.
#[derive(Debug)]
pub struct SharedSegment {
    /// Prefix length in tokens.
    len: usize,
    heads: usize,
    head_dim: usize,
    channels: usize,
    /// Raw per-`(layer, head)` KV of every prefix token, in insertion order —
    /// the refcounted base that zero-copy sessions alias.
    kv: Arc<ArenaGrid>,
    /// Per-layer input vectors, token-major (`index * channels`).
    xs: Vec<Vec<f32>>,
    /// The recorded call sequence.
    events: Vec<ReplayEvent>,
    /// Flat pool backing the `Observe` events.
    scores: Vec<(TokenId, f32)>,
    /// Logits of the last prefix token (the generation cursor).
    logits: Vec<f32>,
    /// Fault-injector snapshot taken right after the prefix pre-fill.
    faults: ProbabilisticFaults,
}

impl SharedSegment {
    /// Prefix length in tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the segment is empty (never true for published segments).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decoder layers covered.
    pub fn layers(&self) -> usize {
        self.xs.len()
    }

    /// The post-prefix logits (restored into the session's generation state
    /// on a hit).
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// A fresh copy of the post-prefix fault-injector state (restored into
    /// the session on a hit, so the fault RNG stream continues exactly where
    /// a cold session's would be).
    pub fn faults_snapshot(&self) -> ProbabilisticFaults {
        self.faults.clone()
    }

    /// The refcounted KV base for zero-copy attachment
    /// ([`KvCacheBackend::attach_shared_prefix`]).
    pub fn shared_kv(&self) -> SharedKv {
        SharedKv {
            grid: Arc::clone(&self.kv),
            layers: self.layers(),
            heads: self.heads,
            head_dim: self.head_dim,
            tokens: self.len,
        }
    }

    /// Logical FP16 footprint of the shared KV data (the bytes a ledger
    /// charges once, however many sessions attach).
    pub fn bytes_fp16(&self) -> usize {
        self.kv.bytes_fp16()
    }

    /// Replays the recorded insert/observe sequence into a fresh cache,
    /// reproducing the exact backend state a cold pre-fill of the prefix
    /// would have built — without any model compute.  Call
    /// [`attach_shared_prefix`](KvCacheBackend::attach_shared_prefix) with
    /// [`shared_kv`](SharedSegment::shared_kv) first if the backend should
    /// adopt the storage zero-copy.
    ///
    /// The caller is responsible for *not* signalling
    /// [`finish_prefill`](KvCacheBackend::finish_prefill) until the rest of
    /// the session's first prompt has been pre-filled (matching the cold
    /// call sequence).
    pub fn replay_into(&self, cache: &mut dyn KvCacheBackend) {
        let channels = self.channels;
        let hd = self.head_dim;
        let mut kbuf = vec![0.0f32; channels];
        let mut vbuf = vec![0.0f32; channels];
        for event in &self.events {
            match *event {
                ReplayEvent::Insert {
                    layer,
                    token,
                    index,
                } => {
                    let layer = layer as usize;
                    let index = index as usize;
                    for h in 0..self.heads {
                        let arena = self
                            .kv
                            .get(layer, h)
                            .expect("recorded (layer, head) exists");
                        kbuf[h * hd..(h + 1) * hd].copy_from_slice(arena.key(index));
                        vbuf[h * hd..(h + 1) * hd].copy_from_slice(arena.value(index));
                    }
                    let x = &self.xs[layer][index * channels..(index + 1) * channels];
                    cache.insert(layer, token as usize, x, &kbuf, &vbuf, hd);
                }
                ReplayEvent::Observe {
                    layer,
                    head,
                    start,
                    len,
                } => {
                    let scores = &self.scores[start as usize..(start + len) as usize];
                    cache.observe_attention(layer as usize, head as usize, scores);
                }
            }
        }
    }

    /// Convenience: [`attach_shared_prefix`](KvCacheBackend::attach_shared_prefix)
    /// followed by [`replay_into`](SharedSegment::replay_into).
    pub fn attach_and_replay(&self, cache: &mut dyn KvCacheBackend) {
        cache.attach_shared_prefix(&self.shared_kv());
        self.replay_into(cache);
    }
}

/// A frozen view of the recorder's state at one intermediate prefix
/// boundary, captured by [`SegmentRecorder::mark_boundary`].
///
/// Holds everything a [`SharedSegment`] of the boundary prefix needs: its
/// own copy of the KV grid and input vectors (so shorter prefixes attach a
/// grid of exactly their own length), the call-sequence cut points, and the
/// generation-cursor snapshot (logits + fault RNG) at the boundary.
#[derive(Debug)]
struct BoundarySnapshot {
    len: usize,
    kv: ArenaGrid,
    xs: Vec<Vec<f32>>,
    events_len: usize,
    scores_len: usize,
    logits: Vec<f32>,
    faults: ProbabilisticFaults,
}

/// A pass-through [`KvCacheBackend`] that records the call sequence of a
/// publication pre-fill while forwarding everything to the wrapped backend.
///
/// Wrap the publishing session's cache, run the prefix through
/// `prefill_extend`, then [`finish`](SegmentRecorder::finish) with the
/// post-prefix logits and fault snapshot to obtain the [`SharedSegment`].
///
/// For **nested prefix hierarchies** (system prompt → tool preamble → user
/// history), call [`mark_boundary`](SegmentRecorder::mark_boundary) after
/// pre-filling each nesting level, then
/// [`finish_hierarchy`](SegmentRecorder::finish_hierarchy) to obtain one
/// segment per boundary from the single recording pass — the transformer
/// runs over the longest prefix exactly once.
#[derive(Debug)]
pub struct SegmentRecorder<'a> {
    inner: &'a mut dyn KvCacheBackend,
    heads: usize,
    head_dim: usize,
    channels: usize,
    kv: ArenaGrid,
    xs: Vec<Vec<f32>>,
    /// Inserts seen per layer (the per-layer payload index).
    counts: Vec<u32>,
    events: Vec<ReplayEvent>,
    scores: Vec<(TokenId, f32)>,
    /// Intermediate boundaries marked during the recording pass.
    boundaries: Vec<BoundarySnapshot>,
}

impl<'a> SegmentRecorder<'a> {
    /// Wraps a backend for recording.
    pub fn new(inner: &'a mut dyn KvCacheBackend) -> Self {
        SegmentRecorder {
            inner,
            heads: 0,
            head_dim: 0,
            channels: 0,
            kv: ArenaGrid::new(),
            xs: Vec::new(),
            counts: Vec::new(),
            events: Vec::new(),
            scores: Vec::new(),
            boundaries: Vec::new(),
        }
    }

    /// Number of prefix tokens recorded so far (layer-0 inserts).
    pub fn recorded_tokens(&self) -> usize {
        self.counts.first().map_or(0, |&c| c as usize)
    }

    /// Marks the current recording position as an intermediate prefix
    /// boundary of a nested hierarchy.
    ///
    /// `logits` are the logits of the last token pre-filled so far and
    /// `faults` the fault injector's state at this point — exactly what a
    /// cold session's cursor would hold after pre-filling only this much.
    /// The KV grid and input vectors are snapshotted (copied) so the
    /// boundary segment attaches a grid of exactly its own length.
    ///
    /// # Panics
    ///
    /// Panics if nothing was recorded yet, or if the boundary would not be
    /// strictly longer than the previous one.
    pub fn mark_boundary(&mut self, logits: &[f32], faults: ProbabilisticFaults) {
        let len = self.recorded_tokens();
        assert!(len > 0, "cannot mark an empty prefix boundary");
        if let Some(prev) = self.boundaries.last() {
            assert!(
                len > prev.len,
                "hierarchy boundaries must be strictly increasing"
            );
        }
        self.boundaries.push(BoundarySnapshot {
            len,
            kv: self.kv.clone(),
            xs: self.xs.clone(),
            events_len: self.events.len(),
            scores_len: self.scores.len(),
            logits: logits.to_vec(),
            faults,
        });
    }

    /// Number of boundaries marked so far.
    pub fn marked_boundaries(&self) -> usize {
        self.boundaries.len()
    }

    /// Freezes the recording into one publishable segment **per marked
    /// boundary** (innermost first), the multi-level counterpart of
    /// [`finish`](SegmentRecorder::finish).
    ///
    /// Each returned segment replays bit-identically to a cold pre-fill of
    /// its own prefix: the call sequence is truncated at the boundary's cut
    /// point and the cursor state (logits + faults) is the boundary's own
    /// snapshot.  The caller marks the final (longest) boundary too — after
    /// the last chunk, before calling this.
    ///
    /// # Panics
    ///
    /// Panics if no boundary was marked.
    pub fn finish_hierarchy(self) -> Vec<SharedSegment> {
        assert!(
            !self.boundaries.is_empty(),
            "cannot publish an empty prefix hierarchy"
        );
        let SegmentRecorder {
            heads,
            head_dim,
            channels,
            events,
            scores,
            boundaries,
            ..
        } = self;
        boundaries
            .into_iter()
            .map(|b| SharedSegment {
                len: b.len,
                heads,
                head_dim,
                channels,
                kv: Arc::new(b.kv),
                xs: b.xs,
                events: events[..b.events_len].to_vec(),
                scores: scores[..b.scores_len].to_vec(),
                logits: b.logits,
                faults: b.faults,
            })
            .collect()
    }

    /// Freezes the recording into a publishable segment.
    ///
    /// `logits` are the last prefix token's logits and `faults` the fault
    /// injector's state right after the prefix pre-fill (both captured by
    /// the publishing session).
    ///
    /// # Panics
    ///
    /// Panics if nothing was recorded.
    pub fn finish(self, logits: &[f32], faults: ProbabilisticFaults) -> SharedSegment {
        let len = self.recorded_tokens();
        assert!(len > 0, "cannot publish an empty prefix segment");
        SharedSegment {
            len,
            heads: self.heads,
            head_dim: self.head_dim,
            channels: self.channels,
            kv: Arc::new(self.kv),
            xs: self.xs,
            events: self.events,
            scores: self.scores,
            logits: logits.to_vec(),
            faults,
        }
    }
}

impl KvCacheBackend for SegmentRecorder<'_> {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        x: &[f32],
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) {
        if self.channels == 0 {
            self.head_dim = head_dim;
            self.heads = keys.len() / head_dim;
            self.channels = x.len();
        }
        debug_assert_eq!(head_dim, self.head_dim, "stride is uniform across layers");
        if layer >= self.xs.len() {
            self.xs.resize_with(layer + 1, Vec::new);
            self.counts.resize(layer + 1, 0);
        }
        let index = self.counts[layer];
        self.counts[layer] += 1;
        self.xs[layer].extend_from_slice(x);
        for (head, (k, v)) in keys
            .chunks_exact(head_dim)
            .zip(values.chunks_exact(head_dim))
            .enumerate()
        {
            self.kv
                .get_or_create(layer, head, head_dim)
                .push(token, k, v);
        }
        self.events.push(ReplayEvent::Insert {
            layer: layer as u32,
            token: token as u32,
            index,
        });
        self.inner.insert(layer, token, x, keys, values, head_dim);
    }

    fn for_each_entry(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(EntryRef<'e>),
    ) {
        self.inner.for_each_entry(layer, head, visit);
    }

    fn for_each_payload(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(PayloadRef<'e>),
    ) {
        self.inner.for_each_payload(layer, head, visit);
    }

    fn entry_count(&self, layer: usize, head: usize) -> usize {
        self.inner.entry_count(layer, head)
    }

    fn observe_attention(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]) {
        self.events.push(ReplayEvent::Observe {
            layer: layer as u32,
            head: head as u32,
            start: self.scores.len() as u32,
            len: scores.len() as u32,
        });
        self.scores.extend_from_slice(scores);
        self.inner.observe_attention(layer, head, scores);
    }

    fn finish_prefill(&mut self, context_len: usize) {
        // Publication records through `prefill_extend`, which never finishes
        // pre-fill; forward defensively so a recorder misused as a plain
        // backend still behaves.
        self.inner.finish_prefill(context_len);
    }

    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::FullKvCache;
    use crate::fault::{BitFlipRates, FaultInjector};

    fn faults() -> ProbabilisticFaults {
        ProbabilisticFaults::new(BitFlipRates::zero(), 7)
    }

    /// Drives a tiny synthetic "pre-fill" through a recorder: 2 layers,
    /// 2 heads, head_dim 2 (channels 4).
    fn record(inner: &mut dyn KvCacheBackend, tokens: usize) -> SharedSegment {
        let mut recorder = SegmentRecorder::new(inner);
        for t in 0..tokens {
            for layer in 0..2 {
                let x = [t as f32, layer as f32, 1.0, -1.0];
                let keys = [t as f32; 4];
                let values = [-(t as f32); 4];
                recorder.insert(layer, t, &x, &keys, &values, 2);
                for head in 0..2 {
                    let scores: Vec<(TokenId, f32)> =
                        (0..=t).map(|s| (s, 1.0 / (t + 1) as f32)).collect();
                    recorder.observe_attention(layer, head, &scores);
                }
            }
        }
        assert_eq!(recorder.recorded_tokens(), tokens);
        recorder.finish(&[0.5, 0.25], faults())
    }

    #[test]
    fn replay_reproduces_recorded_backend_state() {
        let mut original = FullKvCache::new();
        let segment = record(&mut original, 3);
        assert_eq!(segment.len(), 3);
        assert_eq!(segment.layers(), 2);
        assert!(segment.bytes_fp16() > 0);

        let mut replayed = FullKvCache::new();
        segment.replay_into(&mut replayed);
        for layer in 0..2 {
            for head in 0..2 {
                assert_eq!(
                    original.entries(layer, head),
                    replayed.entries(layer, head),
                    "layer {layer} head {head}"
                );
            }
        }
        let (a, b) = (original.stats(), replayed.stats());
        assert_eq!(a.kv_entries, b.kv_entries);
        assert_eq!(a.insertions, b.insertions);
    }

    #[test]
    fn attach_and_replay_adopts_zero_copy() {
        let mut original = FullKvCache::new();
        let segment = record(&mut original, 4);
        let mut hit = FullKvCache::new();
        segment.attach_and_replay(&mut hit);
        let stats = hit.stats();
        assert_eq!(stats.shared_bytes, segment.bytes_fp16());
        assert_eq!(stats.private_bytes, 0);
        assert_eq!(stats.bytes_fp16, stats.shared_bytes + stats.private_bytes);
        // Entries are served straight out of the shared grid.
        assert_eq!(hit.entries(0, 0), original.entries(0, 0));
    }

    #[test]
    fn snapshot_carries_cursor_state() {
        let mut inner = FullKvCache::new();
        let segment = record(&mut inner, 2);
        assert_eq!(segment.logits(), &[0.5, 0.25]);
        let snap = segment.faults_snapshot();
        assert_eq!(snap.stats().words_examined, 0);
        assert_eq!(segment.shared_kv().tokens, 2);
        assert_eq!(segment.shared_kv().heads, 2);
    }

    #[test]
    #[should_panic(expected = "empty prefix segment")]
    fn empty_recording_cannot_publish() {
        let mut inner = FullKvCache::new();
        let recorder = SegmentRecorder::new(&mut inner);
        recorder.finish(&[0.0], faults());
    }

    /// Same synthetic pre-fill as `record`, but marking a boundary after
    /// each of the given prefix lengths (the last must equal `tokens`).
    fn record_hierarchy(
        inner: &mut dyn KvCacheBackend,
        tokens: usize,
        boundaries: &[usize],
    ) -> Vec<SharedSegment> {
        let mut recorder = SegmentRecorder::new(inner);
        let mut next = 0;
        for t in 0..tokens {
            for layer in 0..2 {
                let x = [t as f32, layer as f32, 1.0, -1.0];
                let keys = [t as f32; 4];
                let values = [-(t as f32); 4];
                recorder.insert(layer, t, &x, &keys, &values, 2);
                for head in 0..2 {
                    let scores: Vec<(TokenId, f32)> =
                        (0..=t).map(|s| (s, 1.0 / (t + 1) as f32)).collect();
                    recorder.observe_attention(layer, head, &scores);
                }
            }
            if next < boundaries.len() && boundaries[next] == t + 1 {
                recorder.mark_boundary(&[t as f32, 0.5], faults());
                next += 1;
            }
        }
        recorder.finish_hierarchy()
    }

    #[test]
    fn one_pass_publishes_every_boundary() {
        let mut inner = FullKvCache::new();
        let segments = record_hierarchy(&mut inner, 4, &[1, 2, 4]);
        assert_eq!(segments.len(), 3);
        assert_eq!(
            segments.iter().map(SharedSegment::len).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );

        // Each boundary segment replays exactly the state a dedicated
        // recording of just that prefix would have produced.
        for segment in &segments {
            let mut dedicated_inner = FullKvCache::new();
            let dedicated = record(&mut dedicated_inner, segment.len());
            let mut a = FullKvCache::new();
            let mut b = FullKvCache::new();
            segment.replay_into(&mut a);
            dedicated.replay_into(&mut b);
            for layer in 0..2 {
                for head in 0..2 {
                    assert_eq!(
                        a.entries(layer, head),
                        b.entries(layer, head),
                        "len {} layer {layer} head {head}",
                        segment.len()
                    );
                }
            }
            // The boundary cursor is the boundary's own, not the final one.
            assert_eq!(segment.logits(), &[(segment.len() - 1) as f32, 0.5]);
            assert_eq!(segment.shared_kv().tokens, segment.len());
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_boundary_rejected() {
        let mut inner = FullKvCache::new();
        let mut recorder = SegmentRecorder::new(&mut inner);
        recorder.insert(0, 0, &[0.0; 4], &[0.0; 4], &[0.0; 4], 2);
        recorder.mark_boundary(&[0.0], faults());
        recorder.mark_boundary(&[0.0], faults());
    }
}
