//! Multi-head self-attention over a pluggable KV cache.
//!
//! This module implements the paper's Eq. 1 and Eq. 2 exactly: for the current
//! token's query `q^h_N`, attention scores are the softmax of dot products with
//! every cached key `k^h_n`, and the head output `y^h_N` is the score-weighted
//! sum of cached values `v^h_n`.  The cached entries may arrive in any order
//! (the permutation-invariance property of §2.2 that lets Kelle reuse evicted
//! slots), and an entry may carry either the KV vectors themselves or the
//! token's input vector `x_n`, in which case the key/value are recomputed
//! through `W_K`/`W_V` on the fly (§4.1.2).
//!
//! Retention faults are applied by the [`FaultInjector`] to the *stored*
//! representation at read time: KV vectors for `Kv` entries, the input vector
//! for `Recompute` entries — matching where the bits physically live in eDRAM.

use crate::cache::{CacheEntry, EntryPayload, KvCacheBackend, TokenId};
use crate::fault::{FaultInjector, TokenGroup};
use crate::weights::LayerWeights;
use kelle_tensor::ops;

/// The result of one attention forward pass for a single token.
#[derive(Debug, Clone)]
pub struct AttentionOutput {
    /// The attention block output (after `W_O`), length `channels`.
    pub output: Vec<f32>,
    /// Post-softmax attention probabilities per head, keyed by token id.
    pub attention: Vec<Vec<(TokenId, f32)>>,
    /// Number of cached entries that required KV recomputation this step.
    pub recomputed_entries: usize,
    /// Number of cached entries read as stored KV vectors this step.
    pub kv_entries_read: usize,
}

/// Multi-head attention operator bound to one layer's weights.
#[derive(Debug)]
pub struct MultiHeadAttention<'w> {
    weights: &'w LayerWeights,
    heads: usize,
    head_dim: usize,
    rope_theta: f32,
}

impl<'w> MultiHeadAttention<'w> {
    /// Creates the attention operator for a layer.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrices are not square or not divisible by `heads`.
    pub fn new(weights: &'w LayerWeights, heads: usize) -> Self {
        let channels = weights.wq.rows();
        assert_eq!(weights.wq.shape(), (channels, channels));
        assert_eq!(
            channels % heads,
            0,
            "channels must divide evenly into heads"
        );
        MultiHeadAttention {
            weights,
            heads,
            head_dim: channels / heads,
            rope_theta: 10_000.0,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Splits a full-channel vector into per-head slices.
    fn split_heads(&self, v: &[f32]) -> Vec<Vec<f32>> {
        v.chunks_exact(self.head_dim).map(<[f32]>::to_vec).collect()
    }

    /// Projects an input vector to per-head keys and values (with RoPE applied
    /// to the keys), as used both for insertion and for recomputation.
    pub fn project_kv(&self, x: &[f32], position: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let k = self
            .weights
            .wk
            .matvec(x)
            .expect("input length matches channel dimension");
        let v = self
            .weights
            .wv
            .matvec(x)
            .expect("input length matches channel dimension");
        let mut k_heads = self.split_heads(&k);
        let v_heads = self.split_heads(&v);
        for kh in &mut k_heads {
            ops::apply_rope(kh, position, self.rope_theta);
        }
        (k_heads, v_heads)
    }

    /// Runs one decoding-step attention forward pass.
    ///
    /// `x` is the normalized layer input for the current token at sequence
    /// position `position`; the current token is inserted into `cache` before
    /// attending, so it always attends at least to itself.
    pub fn forward(
        &self,
        layer: usize,
        token: TokenId,
        position: usize,
        x: &[f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
    ) -> AttentionOutput {
        let q_full = self
            .weights
            .wq
            .matvec(x)
            .expect("input length matches channel dimension");
        let mut q_heads = self.split_heads(&q_full);
        for qh in &mut q_heads {
            ops::apply_rope(qh, position, self.rope_theta);
        }
        let (k_heads, v_heads) = self.project_kv(x, position);

        cache.insert(layer, token, x, &k_heads, &v_heads);

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut concatenated = vec![0.0f32; self.heads * self.head_dim];
        let mut attention = Vec::with_capacity(self.heads);
        let mut recomputed_entries = 0;
        let mut kv_entries_read = 0;

        for (h, qh) in q_heads.iter().enumerate() {
            let entries = cache.entries(layer, h);
            let (scores, values, tokens, recomputed, read) =
                self.score_entries(h, &entries, qh, scale, faults);
            recomputed_entries += recomputed;
            kv_entries_read += read;

            let probs = ops::softmax(&scores);
            let mut yh = vec![0.0f32; self.head_dim];
            for (p, v) in probs.iter().zip(values.iter()) {
                for (o, vi) in yh.iter_mut().zip(v.iter()) {
                    *o += p * vi;
                }
            }
            let labelled: Vec<(TokenId, f32)> =
                tokens.iter().copied().zip(probs.iter().copied()).collect();
            cache.observe_attention(layer, h, &labelled);
            attention.push(labelled);
            concatenated[h * self.head_dim..(h + 1) * self.head_dim].copy_from_slice(&yh);
        }

        let output = self
            .weights
            .wo
            .matvec(&concatenated)
            .expect("concatenated head outputs match channel dimension");

        AttentionOutput {
            output,
            attention,
            recomputed_entries,
            kv_entries_read,
        }
    }

    /// Computes raw (pre-softmax) scores and gathers value vectors for the
    /// cached entries of one head, applying fault injection to stored data.
    #[allow(clippy::type_complexity)]
    fn score_entries(
        &self,
        head: usize,
        entries: &[CacheEntry],
        qh: &[f32],
        scale: f32,
        faults: &mut dyn FaultInjector,
    ) -> (Vec<f32>, Vec<Vec<f32>>, Vec<TokenId>, usize, usize) {
        let mut scores = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut tokens = Vec::with_capacity(entries.len());
        let mut recomputed = 0;
        let mut read = 0;

        for entry in entries {
            let group = if entry.high_score {
                TokenGroup::HighScore
            } else {
                TokenGroup::LowScore
            };
            let (key, value) = match &entry.payload {
                EntryPayload::Kv { key, value } => {
                    read += 1;
                    let mut k = key.clone();
                    let mut v = value.clone();
                    faults.corrupt_slice(&mut k, group);
                    faults.corrupt_slice(&mut v, group);
                    (k, v)
                }
                EntryPayload::Recompute { x } => {
                    recomputed += 1;
                    // Faults hit the *stored* input vector; the recomputed KV
                    // inherits the corruption through the projection.
                    let mut stored_x = x.clone();
                    faults.corrupt_slice(&mut stored_x, group);
                    let (k_heads, v_heads) = self.project_kv(&stored_x, entry.token);
                    (k_heads[head].clone(), v_heads[head].clone())
                }
            };
            scores.push(kelle_tensor::dot(&key, qh) * scale);
            values.push(value);
            tokens.push(entry.token);
        }
        (scores, values, tokens, recomputed, read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::FullKvCache;
    use crate::config::SurrogateDims;
    use crate::fault::NoFaults;
    use crate::weights::{ModelWeights, WeightGenConfig};

    fn setup() -> (ModelWeights, SurrogateDims) {
        let dims = SurrogateDims {
            layers: 1,
            heads: 4,
            channels: 32,
            ffn_dim: 64,
            vocab: 64,
        };
        let weights = ModelWeights::generate(&dims, &WeightGenConfig::default(), 3);
        (weights, dims)
    }

    #[test]
    fn attention_probabilities_sum_to_one() {
        let (weights, dims) = setup();
        let attn = MultiHeadAttention::new(&weights.layers[0], dims.heads);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        for pos in 0..5 {
            let x = weights.embed(pos % dims.vocab, pos);
            let out = attn.forward(0, pos, pos, &x, &mut cache, &mut faults);
            for head in &out.attention {
                let total: f32 = head.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-4);
                assert_eq!(head.len(), pos + 1);
            }
        }
    }

    #[test]
    fn output_dimension_matches_channels() {
        let (weights, dims) = setup();
        let attn = MultiHeadAttention::new(&weights.layers[0], dims.heads);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let x = weights.embed(1, 0);
        let out = attn.forward(0, 0, 0, &x, &mut cache, &mut faults);
        assert_eq!(out.output.len(), dims.channels);
        assert_eq!(out.attention.len(), dims.heads);
    }
}
