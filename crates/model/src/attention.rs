//! Multi-head self-attention over a pluggable KV cache.
//!
//! This module implements the paper's Eq. 1 and Eq. 2 exactly: for the current
//! token's query `q^h_N`, attention scores are the softmax of dot products with
//! every cached key `k^h_n`, and the head output `y^h_N` is the score-weighted
//! sum of cached values `v^h_n`.  The cached entries may arrive in any order
//! (the permutation-invariance property of §2.2 that lets Kelle reuse evicted
//! slots), and an entry may carry either the KV vectors themselves or the
//! token's input vector `x_n`, in which case the key/value are recomputed
//! through `W_K`/`W_V` on the fly (§4.1.2).
//!
//! # The fused, allocation-free pass
//!
//! The hot entry point is [`MultiHeadAttention::forward_with`]: it threads a
//! caller-owned [`DecodeScratch`] through the whole computation and visits the
//! cache through the borrowed [`EntryRef`](crate::cache::EntryRef) API, so a
//! steady-state decode step touches the heap not at all.  Per head it runs:
//!
//! 1. one traversal over the `(layer, head)` arena computing all raw scores
//!    (keys read *by reference* when the fault injector
//!    [`is_noop`](FaultInjector::is_noop); staged through scratch otherwise);
//! 2. [`ops::softmax_into`] in place over the score buffer (the consolidated
//!    online-softmax formulation);
//! 3. one weighted-value accumulation pass (values by reference under
//!    `NoFaults`, from the stash otherwise).
//!
//! The floating-point operation order is identical to the
//! materialize-then-compute algorithm, which is preserved as
//! [`MultiHeadAttention::forward_via_entries`] — the reference the equivalence
//! tests compare against bit for bit, and the allocation-heavy baseline the
//! decode benchmark measures the win over.  (Both paths share the documented
//! multi-accumulator [`dot`](kelle_tensor::dot) ordering, which is where the
//! rewrite's numeric results differ from pre-rewrite binaries.)
//!
//! Retention faults are applied by the [`FaultInjector`] to the *stored*
//! representation at read time: KV vectors for `Kv` entries, the input vector
//! for `Recompute` entries — matching where the bits physically live in eDRAM.
//! The stored bits themselves are never modified; corrupted reads are staged
//! in scratch.

use crate::cache::{EntryPayload, KvCacheBackend, PayloadRef, TokenId};
use crate::fault::{FaultInjector, NoFaults, TokenGroup};
use crate::weights::LayerWeights;
use kelle_tensor::ops;
use kelle_tensor::par::{Job, ParallelRunner};

/// The result of one attention forward pass for a single token.
#[derive(Debug, Clone)]
pub struct AttentionOutput {
    /// The attention block output (after `W_O`), length `channels`.
    pub output: Vec<f32>,
    /// Post-softmax attention probabilities per head, keyed by token id.
    pub attention: Vec<Vec<(TokenId, f32)>>,
    /// Number of cached entries that required KV recomputation this step.
    pub recomputed_entries: usize,
    /// Number of cached entries read as stored KV vectors this step.
    pub kv_entries_read: usize,
}

/// Reusable buffers for the allocation-free decode hot path.
///
/// One instance travels with a generation state
/// ([`GenerationState`](crate::generation::GenerationState) owns one) and is
/// threaded through [`MultiHeadAttention::forward_with`], the decoder layer
/// loop and the LM head.  Every buffer is cleared (`len = 0`) and refilled
/// each step; capacities warm up over the first few steps and then stay put,
/// so steady-state decoding performs zero heap allocation.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Query projection, length `channels` (RoPE applied per head chunk).
    pub(crate) q: Vec<f32>,
    /// Key projection of the current token, flat head-major.
    pub(crate) k: Vec<f32>,
    /// Value projection of the current token, flat head-major.
    pub(crate) v: Vec<f32>,
    /// Raw scores, then (after `softmax_into`) probabilities, per entry.
    pub(crate) scores: Vec<f32>,
    /// Token ids of the visited entries, parallel to `scores`.
    pub(crate) tokens: Vec<TokenId>,
    /// Staged value vectors (corrupted or recomputed), `head_dim` per staged
    /// entry.
    pub(crate) stash: Vec<f32>,
    /// Per entry: whether its value lives in `stash` (vs. by-ref in the
    /// arena).
    pub(crate) stash_mask: Vec<bool>,
    /// Staging buffer for corrupted key reads, length `head_dim`.
    pub(crate) kbuf: Vec<f32>,
    /// Staging buffer for corrupted stored-input reads, length `channels`.
    pub(crate) xbuf: Vec<f32>,
    /// Recomputed key head-slice of a `Recompute` entry, length `head_dim`.
    pub(crate) rk: Vec<f32>,
    /// Recomputed value head-slice of a `Recompute` entry, length `head_dim`.
    pub(crate) rv: Vec<f32>,
    /// Per-head attention output `y^h`, length `head_dim`.
    pub(crate) yh: Vec<f32>,
    /// Concatenated head outputs, length `channels`.
    pub(crate) concat: Vec<f32>,
    /// Attention block output after `W_O`, length `channels`.
    pub(crate) attn_out: Vec<f32>,
    /// Post-softmax attention labels per head (inner vectors reused).
    pub(crate) attention: Vec<Vec<(TokenId, f32)>>,
    /// Normalized layer input / FFN input staging, length `channels`.
    pub(crate) normed: Vec<f32>,
    /// FFN gate projection, length `ffn_dim`.
    pub(crate) gate: Vec<f32>,
    /// FFN up projection, length `ffn_dim`.
    pub(crate) up: Vec<f32>,
    /// FFN down projection, length `channels`.
    pub(crate) ffn: Vec<f32>,
    /// Residual-stream hidden state, length `channels`.
    pub(crate) hidden: Vec<f32>,
    /// LM-head logits, length `vocab`.
    pub(crate) logits: Vec<f32>,
    /// Per-head buffer shards for the parallel attention pass
    /// ([`MultiHeadAttention::forward_with_runner`]); empty until that path
    /// first runs.
    pub(crate) heads: Vec<HeadScratch>,
}

/// One head's private shard of the decode scratch, used when heads run on
/// different workers.  Mirrors the per-head buffers of [`DecodeScratch`]
/// (which the sequential loop reuses across heads) plus the head's step
/// counters, so a parallel pass mutates nothing shared.
#[derive(Debug, Clone, Default)]
pub(crate) struct HeadScratch {
    /// Raw scores, then (after `softmax_into`) probabilities, per entry.
    scores: Vec<f32>,
    /// Token ids of the visited entries, parallel to `scores`.
    tokens: Vec<TokenId>,
    /// Staged value vectors (corrupted or recomputed), `head_dim` each.
    stash: Vec<f32>,
    /// Per entry: whether its value lives in `stash` (vs. by-ref).
    stash_mask: Vec<bool>,
    /// Staging buffer for corrupted key reads, length `head_dim`.
    kbuf: Vec<f32>,
    /// Staging buffer for corrupted stored-input reads, length `channels`.
    xbuf: Vec<f32>,
    /// Recomputed key head-slice, length `head_dim`.
    rk: Vec<f32>,
    /// Recomputed value head-slice, length `head_dim`.
    rv: Vec<f32>,
    /// Head attention output `y^h`, length `head_dim`.
    yh: Vec<f32>,
    /// Cache entries recomputed from stored inputs by this head's pass.
    recomputed: usize,
    /// Cache entries read as stored KV by this head's pass.
    kv_read: usize,
}

/// Disjoint mutable views over one head's working buffers — either the
/// shared sequential buffers of [`DecodeScratch`] or one of its
/// [`HeadScratch`] shards.  [`MultiHeadAttention::attend_head`] is written
/// against this so the sequential and parallel passes share one
/// implementation and therefore one floating-point sequence.
struct HeadBuffers<'a> {
    scores: &'a mut Vec<f32>,
    tokens: &'a mut Vec<TokenId>,
    stash: &'a mut Vec<f32>,
    stash_mask: &'a mut Vec<bool>,
    kbuf: &'a mut Vec<f32>,
    xbuf: &'a mut Vec<f32>,
    rk: &'a mut Vec<f32>,
    rv: &'a mut Vec<f32>,
    yh: &'a mut Vec<f32>,
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow to their working sizes during
    /// the first step they are used in.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// The attention block output of the most recent
    /// [`forward_with`](MultiHeadAttention::forward_with) call.
    pub fn output(&self) -> &[f32] {
        &self.attn_out
    }

    /// The per-head post-softmax attention labels of the most recent pass.
    pub fn attention_labels(&self) -> &[Vec<(TokenId, f32)>] {
        &self.attention
    }

    /// The logits of the most recent
    /// [`forward_token_with`](crate::decoder::SurrogateModel::forward_token_with)
    /// call.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }
}

/// Multi-head attention operator bound to one layer's weights.
#[derive(Debug)]
pub struct MultiHeadAttention<'w> {
    weights: &'w LayerWeights,
    heads: usize,
    head_dim: usize,
    rope_theta: f32,
}

impl<'w> MultiHeadAttention<'w> {
    /// Creates the attention operator for a layer.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrices are not square or not divisible by `heads`.
    pub fn new(weights: &'w LayerWeights, heads: usize) -> Self {
        let channels = weights.wq.rows();
        assert_eq!(weights.wq.shape(), (channels, channels));
        assert_eq!(
            channels % heads,
            0,
            "channels must divide evenly into heads"
        );
        MultiHeadAttention {
            weights,
            heads,
            head_dim: channels / heads,
            rope_theta: 10_000.0,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Projects an input vector to per-head keys and values (with RoPE applied
    /// to the keys), as used both for insertion and for recomputation.
    ///
    /// The result is laid out head-major as flat `channels`-length vectors:
    /// head `h` owns elements `[h·head_dim, (h+1)·head_dim)` — the layout the
    /// cache [`insert`](KvCacheBackend::insert) contract expects.
    pub fn project_kv(&self, x: &[f32], position: usize) -> (Vec<f32>, Vec<f32>) {
        let mut k = Vec::new();
        let mut v = Vec::new();
        self.project_kv_into(x, position, &mut k, &mut v);
        (k, v)
    }

    /// [`project_kv`](MultiHeadAttention::project_kv) into caller-owned
    /// buffers (cleared and refilled).
    pub fn project_kv_into(&self, x: &[f32], position: usize, k: &mut Vec<f32>, v: &mut Vec<f32>) {
        self.weights
            .wk
            .matvec_into(x, k)
            .expect("input length matches channel dimension");
        self.weights
            .wv
            .matvec_into(x, v)
            .expect("input length matches channel dimension");
        for kh in k.chunks_exact_mut(self.head_dim) {
            ops::apply_rope(kh, position, self.rope_theta);
        }
    }

    /// Runs one decoding-step attention forward pass through the reusable
    /// `scratch`, leaving the block output in [`DecodeScratch::output`] and
    /// the per-head labels in [`DecodeScratch::attention_labels`].
    ///
    /// `x` is the normalized layer input for the current token at sequence
    /// position `position`; the current token is inserted into `cache` before
    /// attending, so it always attends at least to itself.  Returns
    /// `(recomputed_entries, kv_entries_read)`.
    ///
    /// This is the allocation-free hot path: cache entries are visited as
    /// borrowed [`EntryRef`](crate::cache::EntryRef) views, and when
    /// `faults.is_noop()` keys and values are consumed directly from the
    /// storage arenas with zero copies.
    #[allow(clippy::too_many_arguments)] // the decode-step contract: position + data + 3 collaborators
    pub fn forward_with(
        &self,
        layer: usize,
        token: TokenId,
        position: usize,
        x: &[f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
        scratch: &mut DecodeScratch,
    ) -> (usize, usize) {
        let hd = self.head_dim;
        let channels = self.heads * hd;
        let scale = 1.0 / (hd as f32).sqrt();

        let DecodeScratch {
            q,
            k,
            v,
            scores,
            tokens,
            stash,
            stash_mask,
            kbuf,
            xbuf,
            rk,
            rv,
            yh,
            concat,
            attn_out,
            attention,
            ..
        } = scratch;

        self.weights
            .wq
            .matvec_into(x, q)
            .expect("input length matches channel dimension");
        for qh in q.chunks_exact_mut(hd) {
            ops::apply_rope(qh, position, self.rope_theta);
        }
        self.project_kv_into(x, position, k, v);

        cache.insert(layer, token, x, k, v, hd);

        concat.clear();
        concat.resize(channels, 0.0);
        if attention.len() != self.heads {
            attention.resize_with(self.heads, Vec::new);
        }

        let noop = faults.is_noop();
        let mut recomputed_entries = 0usize;
        let mut kv_entries_read = 0usize;

        for h in 0..self.heads {
            faults.begin_lane(layer, h);
            let qh = &q[h * hd..(h + 1) * hd];
            let (rec, read) = self.attend_head(
                layer,
                h,
                qh,
                scale,
                noop,
                &*cache,
                faults,
                HeadBuffers {
                    scores,
                    tokens,
                    stash,
                    stash_mask,
                    kbuf,
                    xbuf,
                    rk,
                    rv,
                    yh,
                },
                &mut attention[h],
                &mut concat[h * hd..(h + 1) * hd],
            );
            recomputed_entries += rec;
            kv_entries_read += read;
            cache.observe_attention(layer, h, &attention[h]);
        }

        self.weights
            .wo
            .matvec_into(concat, attn_out)
            .expect("concatenated head outputs match channel dimension");

        (recomputed_entries, kv_entries_read)
    }

    /// The complete per-head attention pass — score traversal, in-place
    /// softmax, weighted-value accumulation — for head `h`, writing the head
    /// output into `out` (the head's `head_dim` slice of the concat buffer)
    /// and the post-softmax labels into `labels`.
    ///
    /// Shared verbatim between the sequential head loop
    /// ([`forward_with`](MultiHeadAttention::forward_with)) and the per-head
    /// parallel jobs
    /// ([`forward_with_runner`](MultiHeadAttention::forward_with_runner)), so
    /// both execute exactly the same floating-point sequence per head.  The
    /// cache is taken by `&` (reads only); reporting the labels back through
    /// [`KvCacheBackend::observe_attention`] is the caller's responsibility.
    /// Returns `(recomputed_entries, kv_entries_read)` for this head.
    #[allow(clippy::too_many_arguments)] // the per-head slice of the decode-step contract
    fn attend_head(
        &self,
        layer: usize,
        h: usize,
        qh: &[f32],
        scale: f32,
        noop: bool,
        cache: &dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
        buf: HeadBuffers<'_>,
        labels: &mut Vec<(TokenId, f32)>,
        out: &mut [f32],
    ) -> (usize, usize) {
        let hd = self.head_dim;
        let HeadBuffers {
            scores,
            tokens,
            stash,
            stash_mask,
            kbuf,
            xbuf,
            rk,
            rv,
            yh,
        } = buf;
        scores.clear();
        tokens.clear();
        stash.clear();
        stash_mask.clear();

        let mut recomputed_entries = 0usize;
        let mut kv_entries_read = 0usize;

        // Pass 1: raw attention scores (Eq. 1 numerator exponents), one
        // traversal over the head's arena.  Keys are read by reference
        // when no faults are active; corrupted or recomputed reads are
        // staged in scratch, and their value vectors stashed for pass 2.
        {
            let weights = self.weights;
            let rope_theta = self.rope_theta;
            cache.for_each_entry(layer, h, &mut |e| {
                let group = if e.high_score {
                    TokenGroup::HighScore
                } else {
                    TokenGroup::LowScore
                };
                let score = match e.payload {
                    PayloadRef::Kv { key, value } => {
                        kv_entries_read += 1;
                        if noop {
                            stash_mask.push(false);
                            kelle_tensor::dot(key, qh) * scale
                        } else {
                            kbuf.clear();
                            kbuf.extend_from_slice(key);
                            faults.corrupt_slice(kbuf, group);
                            let start = stash.len();
                            stash.extend_from_slice(value);
                            faults.corrupt_slice(&mut stash[start..], group);
                            stash_mask.push(true);
                            kelle_tensor::dot(kbuf, qh) * scale
                        }
                    }
                    PayloadRef::Recompute { x: stored_x } => {
                        recomputed_entries += 1;
                        // Faults hit the *stored* input vector; the
                        // recomputed KV inherits the corruption through
                        // the projection.
                        let src: &[f32] = if noop {
                            stored_x
                        } else {
                            xbuf.clear();
                            xbuf.extend_from_slice(stored_x);
                            faults.corrupt_slice(xbuf, group);
                            xbuf
                        };
                        // Only this head's rows of W_K/W_V are needed;
                        // the row-range projection is bitwise identical
                        // to the corresponding slice of the full matvec
                        // at 1/heads of the cost.
                        weights
                            .wk
                            .matvec_rows_into(h * hd..(h + 1) * hd, src, rk)
                            .expect("stored input matches channel dimension");
                        weights
                            .wv
                            .matvec_rows_into(h * hd..(h + 1) * hd, src, rv)
                            .expect("stored input matches channel dimension");
                        ops::apply_rope(rk, e.token, rope_theta);
                        stash.extend_from_slice(rv);
                        stash_mask.push(true);
                        kelle_tensor::dot(rk, qh) * scale
                    }
                };
                scores.push(score);
                tokens.push(e.token);
            });
        }

        // Pass 2: online softmax in place, then the weighted-value
        // accumulation (Eq. 2) in entry order.
        ops::softmax_into(scores);

        yh.clear();
        yh.resize(hd, 0.0);
        if noop {
            // Values come straight from the arena by reference; only
            // recomputed entries were stashed.  The payload-only
            // traversal skips the backends' importance labelling.
            let mut idx = 0usize;
            let mut spos = 0usize;
            cache.for_each_payload(layer, h, &mut |payload| {
                let p = scores[idx];
                let val: &[f32] = if stash_mask[idx] {
                    let s = &stash[spos..spos + hd];
                    spos += hd;
                    s
                } else {
                    match payload {
                        PayloadRef::Kv { value, .. } => value,
                        // stash_mask[idx] is false only for Kv entries;
                        // a backend changing its answer between the two
                        // traversals violates the trait contract.
                        PayloadRef::Recompute { .. } => {
                            unreachable!("entry visitation changed between traversals")
                        }
                    }
                };
                for (o, vi) in yh.iter_mut().zip(val.iter()) {
                    *o += p * vi;
                }
                idx += 1;
            });
            debug_assert_eq!(idx, scores.len(), "entry count changed between traversals");
        } else {
            // Every value was staged during pass 1.
            for (p, val) in scores.iter().zip(stash.chunks_exact(hd)) {
                for (o, vi) in yh.iter_mut().zip(val.iter()) {
                    *o += p * vi;
                }
            }
        }

        labels.clear();
        labels.extend(tokens.iter().copied().zip(scores.iter().copied()));
        out.copy_from_slice(yh);
        (recomputed_entries, kv_entries_read)
    }

    /// Runs one decoding-step attention forward pass with the per-head work
    /// fanned out across `runner`.
    ///
    /// Produces exactly the bits of
    /// [`forward_with`](MultiHeadAttention::forward_with): the Q/K/V and
    /// output projections are row-partitioned (each output row is an
    /// independent [`dot`](kelle_tensor::dot), so per-element accumulation
    /// order is unchanged); each head's score → softmax → value pass runs the
    /// shared `attend_head` sequence against its own deterministic fault
    /// lane ([`FaultInjector::split_lanes`]) and its own private
    /// `HeadScratch` shard;
    /// and the [`KvCacheBackend::observe_attention`] calls are replayed
    /// serially in head order after the heads join — legal because observes
    /// are per-head confined (see the trait contract).
    ///
    /// Falls back to the sequential loop when the runner has a single lane,
    /// the layer has a single head, or an active fault injector cannot be
    /// partitioned (`split_lanes` returns `None`).  Unlike the sequential
    /// path, the fan-out allocates per call (job boxes); the
    /// zero-steady-state-allocation guarantee covers `forward_with` only.
    #[allow(clippy::too_many_arguments)] // the decode-step contract + the runner
    pub fn forward_with_runner(
        &self,
        layer: usize,
        token: TokenId,
        position: usize,
        x: &[f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
        scratch: &mut DecodeScratch,
        runner: &dyn ParallelRunner,
    ) -> (usize, usize) {
        if runner.lanes() <= 1 || self.heads == 1 {
            return self.forward_with(layer, token, position, x, cache, faults, scratch);
        }
        let noop = faults.is_noop();
        if !noop && faults.split_lanes(layer, self.heads).is_none() {
            // A custom injector without per-head substreams cannot corrupt
            // from multiple workers deterministically; stay sequential.
            return self.forward_with(layer, token, position, x, cache, faults, scratch);
        }

        let hd = self.head_dim;
        let channels = self.heads * hd;
        let scale = 1.0 / (hd as f32).sqrt();

        let DecodeScratch {
            q,
            k,
            v,
            concat,
            attn_out,
            attention,
            heads: head_scratch,
            ..
        } = scratch;

        self.weights
            .wq
            .matvec_into_par(x, q, runner)
            .expect("input length matches channel dimension");
        for qh in q.chunks_exact_mut(hd) {
            ops::apply_rope(qh, position, self.rope_theta);
        }
        self.weights
            .wk
            .matvec_into_par(x, k, runner)
            .expect("input length matches channel dimension");
        self.weights
            .wv
            .matvec_into_par(x, v, runner)
            .expect("input length matches channel dimension");
        for kh in k.chunks_exact_mut(hd) {
            ops::apply_rope(kh, position, self.rope_theta);
        }

        cache.insert(layer, token, x, k, v, hd);

        concat.clear();
        concat.resize(channels, 0.0);
        if attention.len() != self.heads {
            attention.resize_with(self.heads, Vec::new);
        }
        if head_scratch.len() < self.heads {
            head_scratch.resize_with(self.heads, HeadScratch::default);
        }

        let lane_handles: Vec<Option<&mut (dyn FaultInjector + Send)>> = if noop {
            (0..self.heads).map(|_| None).collect()
        } else {
            faults
                .split_lanes(layer, self.heads)
                .expect("split_lanes succeeded above")
                .into_iter()
                .map(Some)
                .collect()
        };

        {
            let cache_ref: &dyn KvCacheBackend = cache;
            let mut jobs: Vec<Job<'_>> = Vec::with_capacity(self.heads);
            for ((((hs, out), labels), lane), (h, qh)) in head_scratch
                .iter_mut()
                .zip(concat.chunks_exact_mut(hd))
                .zip(attention.iter_mut())
                .zip(lane_handles)
                .zip(q.chunks_exact(hd).enumerate())
            {
                jobs.push(Box::new(move || {
                    let mut local_noop = NoFaults;
                    let fault_ref: &mut dyn FaultInjector = match lane {
                        Some(lane) => lane,
                        None => &mut local_noop,
                    };
                    let (rec, read) = self.attend_head(
                        layer,
                        h,
                        qh,
                        scale,
                        noop,
                        cache_ref,
                        fault_ref,
                        HeadBuffers {
                            scores: &mut hs.scores,
                            tokens: &mut hs.tokens,
                            stash: &mut hs.stash,
                            stash_mask: &mut hs.stash_mask,
                            kbuf: &mut hs.kbuf,
                            xbuf: &mut hs.xbuf,
                            rk: &mut hs.rk,
                            rv: &mut hs.rv,
                            yh: &mut hs.yh,
                        },
                        labels,
                        out,
                    );
                    hs.recomputed = rec;
                    hs.kv_read = read;
                }));
            }
            runner.run(jobs);
        }

        // Join: replay the observes serially in head order (per-head confined
        // by the backend contract, so this is indistinguishable from the
        // sequential interleaving) and sum the per-head counters.
        let mut recomputed_entries = 0usize;
        let mut kv_entries_read = 0usize;
        for (h, labels) in attention.iter().enumerate().take(self.heads) {
            cache.observe_attention(layer, h, labels);
        }
        for hs in head_scratch.iter().take(self.heads) {
            recomputed_entries += hs.recomputed;
            kv_entries_read += hs.kv_read;
        }

        self.weights
            .wo
            .matvec_into_par(concat, attn_out, runner)
            .expect("concatenated head outputs match channel dimension");

        (recomputed_entries, kv_entries_read)
    }

    /// Runs one decoding-step attention forward pass, allocating a fresh
    /// scratch and returning owned results.
    ///
    /// Convenience wrapper over
    /// [`forward_with`](MultiHeadAttention::forward_with) for tests and
    /// one-shot callers; hot loops should hold a [`DecodeScratch`] and call
    /// `forward_with` directly.
    pub fn forward(
        &self,
        layer: usize,
        token: TokenId,
        position: usize,
        x: &[f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
    ) -> AttentionOutput {
        let mut scratch = DecodeScratch::new();
        let (recomputed_entries, kv_entries_read) =
            self.forward_with(layer, token, position, x, cache, faults, &mut scratch);
        AttentionOutput {
            output: scratch.attn_out,
            attention: scratch.attention,
            recomputed_entries,
            kv_entries_read,
        }
    }

    /// The historical materialize-then-compute forward pass, preserved as the
    /// reference implementation.
    ///
    /// It drives attention through the owned
    /// [`entries`](KvCacheBackend::entries) adapter — deep-cloning every
    /// cached key/value (twice, once for materialization and once for fault
    /// staging) and allocating every intermediate — exactly as the storage
    /// layer behaved before the arena rewrite.  The equivalence suite asserts
    /// its outputs are bit-for-bit identical to
    /// [`forward_with`](MultiHeadAttention::forward_with), and the decode
    /// benchmark reports the hot path's speedup over it.
    pub fn forward_via_entries(
        &self,
        layer: usize,
        token: TokenId,
        position: usize,
        x: &[f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
    ) -> AttentionOutput {
        let q_full = self
            .weights
            .wq
            .matvec(x)
            .expect("input length matches channel dimension");
        let hd = self.head_dim;
        let mut q = q_full;
        for qh in q.chunks_exact_mut(hd) {
            ops::apply_rope(qh, position, self.rope_theta);
        }
        let (k, v) = self.project_kv(x, position);

        cache.insert(layer, token, x, &k, &v, hd);

        let scale = 1.0 / (hd as f32).sqrt();
        let mut concatenated = vec![0.0f32; self.heads * hd];
        let mut attention = Vec::with_capacity(self.heads);
        let mut recomputed_entries = 0;
        let mut kv_entries_read = 0;

        for h in 0..self.heads {
            // Same per-(layer, head) fault-lane selection as the fused pass,
            // so both consume identical RNG substreams.
            faults.begin_lane(layer, h);
            let qh = &q[h * hd..(h + 1) * hd];
            let entries = cache.entries(layer, h);
            let mut scores = Vec::with_capacity(entries.len());
            let mut values = Vec::with_capacity(entries.len());
            let mut tokens = Vec::with_capacity(entries.len());
            for entry in &entries {
                let group = if entry.high_score {
                    TokenGroup::HighScore
                } else {
                    TokenGroup::LowScore
                };
                let (key, value) = match &entry.payload {
                    EntryPayload::Kv { key, value } => {
                        kv_entries_read += 1;
                        let mut k = key.clone();
                        let mut v = value.clone();
                        faults.corrupt_slice(&mut k, group);
                        faults.corrupt_slice(&mut v, group);
                        (k, v)
                    }
                    EntryPayload::Recompute { x } => {
                        recomputed_entries += 1;
                        let mut stored_x = x.clone();
                        faults.corrupt_slice(&mut stored_x, group);
                        let (rk, rv) = self.project_kv(&stored_x, entry.token);
                        (
                            rk[h * hd..(h + 1) * hd].to_vec(),
                            rv[h * hd..(h + 1) * hd].to_vec(),
                        )
                    }
                };
                scores.push(kelle_tensor::dot(&key, qh) * scale);
                values.push(value);
                tokens.push(entry.token);
            }

            let probs = ops::softmax(&scores);
            let mut yh = vec![0.0f32; hd];
            for (p, val) in probs.iter().zip(values.iter()) {
                for (o, vi) in yh.iter_mut().zip(val.iter()) {
                    *o += p * vi;
                }
            }
            let labelled: Vec<(TokenId, f32)> =
                tokens.iter().copied().zip(probs.iter().copied()).collect();
            cache.observe_attention(layer, h, &labelled);
            attention.push(labelled);
            concatenated[h * hd..(h + 1) * hd].copy_from_slice(&yh);
        }

        let output = self
            .weights
            .wo
            .matvec(&concatenated)
            .expect("concatenated head outputs match channel dimension");

        AttentionOutput {
            output,
            attention,
            recomputed_entries,
            kv_entries_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::FullKvCache;
    use crate::config::SurrogateDims;
    use crate::fault::{BitFlipRates, NoFaults, ProbabilisticFaults};
    use crate::weights::{ModelWeights, WeightGenConfig};

    fn setup() -> (ModelWeights, SurrogateDims) {
        let dims = SurrogateDims {
            layers: 1,
            heads: 4,
            channels: 32,
            ffn_dim: 64,
            vocab: 64,
        };
        let weights = ModelWeights::generate(&dims, &WeightGenConfig::default(), 3);
        (weights, dims)
    }

    #[test]
    fn attention_probabilities_sum_to_one() {
        let (weights, dims) = setup();
        let attn = MultiHeadAttention::new(&weights.layers[0], dims.heads);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        for pos in 0..5 {
            let x = weights.embed(pos % dims.vocab, pos);
            let out = attn.forward(0, pos, pos, &x, &mut cache, &mut faults);
            for head in &out.attention {
                let total: f32 = head.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-4);
                assert_eq!(head.len(), pos + 1);
            }
        }
    }

    #[test]
    fn output_dimension_matches_channels() {
        let (weights, dims) = setup();
        let attn = MultiHeadAttention::new(&weights.layers[0], dims.heads);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let x = weights.embed(1, 0);
        let out = attn.forward(0, 0, 0, &x, &mut cache, &mut faults);
        assert_eq!(out.output.len(), dims.channels);
        assert_eq!(out.attention.len(), dims.heads);
    }

    /// The fused scratch-based pass and the materializing reference pass must
    /// agree bit for bit, with and without active fault injection (the fault
    /// RNG consumption order is part of the contract).
    #[test]
    fn fused_pass_matches_reference_bitwise() {
        let (weights, dims) = setup();
        let attn = MultiHeadAttention::new(&weights.layers[0], dims.heads);
        for faulty in [false, true] {
            let run = |fused: bool| -> Vec<u32> {
                let mut cache = FullKvCache::new();
                let mut noop = NoFaults;
                let mut prob = ProbabilisticFaults::new(BitFlipRates::uniform(0.02), 11);
                let faults: &mut dyn FaultInjector = if faulty { &mut prob } else { &mut noop };
                let mut scratch = DecodeScratch::new();
                let mut out = Vec::new();
                for pos in 0..6 {
                    let x = weights.embed((pos * 3) % dims.vocab, pos);
                    if fused {
                        attn.forward_with(0, pos, pos, &x, &mut cache, faults, &mut scratch);
                        out = scratch.output().to_vec();
                    } else {
                        out = attn
                            .forward_via_entries(0, pos, pos, &x, &mut cache, faults)
                            .output;
                    }
                }
                out.iter().map(|f| f.to_bits()).collect()
            };
            assert_eq!(run(true), run(false), "faulty = {faulty}");
        }
    }

    /// A real fork-join runner over scoped threads: every job runs on its own
    /// thread, and `run` joins them all before returning.
    #[derive(Debug)]
    struct ThreadRunner(usize);

    impl kelle_tensor::par::ParallelRunner for ThreadRunner {
        fn lanes(&self) -> usize {
            self.0
        }
        fn run<'a>(&self, jobs: Vec<kelle_tensor::par::Job<'a>>) {
            std::thread::scope(|s| {
                for job in jobs {
                    s.spawn(job);
                }
            });
        }
    }

    /// Everything one pass observes: output bits, per-head attention labels,
    /// fault statistics.
    type PassObservables = (Vec<u32>, Vec<Vec<(TokenId, u32)>>, crate::fault::FaultStats);

    /// The per-head fan-out must reproduce the sequential pass bit for bit —
    /// outputs, attention labels and fault statistics — with and without
    /// active fault injection, for any lane count.
    #[test]
    fn runner_pass_matches_sequential_bitwise() {
        let (weights, dims) = setup();
        let attn = MultiHeadAttention::new(&weights.layers[0], dims.heads);
        for faulty in [false, true] {
            let run = |lanes: usize| -> PassObservables {
                let mut cache = FullKvCache::new();
                let mut noop = NoFaults;
                let mut prob = ProbabilisticFaults::new(BitFlipRates::uniform(0.02), 11);
                let faults: &mut dyn FaultInjector = if faulty { &mut prob } else { &mut noop };
                let mut scratch = DecodeScratch::new();
                let runner = ThreadRunner(lanes);
                let mut out = Vec::new();
                for pos in 0..6 {
                    let x = weights.embed((pos * 3) % dims.vocab, pos);
                    if lanes <= 1 {
                        attn.forward_with(0, pos, pos, &x, &mut cache, faults, &mut scratch);
                    } else {
                        attn.forward_with_runner(
                            0,
                            pos,
                            pos,
                            &x,
                            &mut cache,
                            faults,
                            &mut scratch,
                            &runner,
                        );
                    }
                    out = scratch.output().to_vec();
                }
                let labels = scratch
                    .attention_labels()
                    .iter()
                    .map(|head| head.iter().map(|(t, p)| (*t, p.to_bits())).collect())
                    .collect();
                (
                    out.iter().map(|f| f.to_bits()).collect(),
                    labels,
                    faults.stats(),
                )
            };
            let sequential = run(1);
            for lanes in [2usize, 4, 8] {
                assert_eq!(sequential, run(lanes), "faulty = {faulty}, lanes = {lanes}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stable_across_steps() {
        let (weights, dims) = setup();
        let attn = MultiHeadAttention::new(&weights.layers[0], dims.heads);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let mut scratch = DecodeScratch::new();
        for pos in 0..4 {
            let x = weights.embed(pos, pos);
            let (rec, read) =
                attn.forward_with(0, pos, pos, &x, &mut cache, &mut faults, &mut scratch);
            assert_eq!(rec, 0);
            assert_eq!(read, (pos + 1) * dims.heads);
            assert_eq!(scratch.output().len(), dims.channels);
            assert_eq!(scratch.attention_labels().len(), dims.heads);
            for head in scratch.attention_labels() {
                assert_eq!(head.len(), pos + 1);
            }
        }
    }
}
