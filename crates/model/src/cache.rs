//! The KV-cache backend abstraction and the full (uncompressed) reference cache.
//!
//! During decoding, the model inserts the current token's per-head key/value
//! vectors into the cache (paper Fig. 1b) and then attends over whatever the
//! cache returns.  Different *policies* (full cache, StreamingLLM, H2O, Kelle's
//! AERP) decide which tokens survive and whether a token is stored as KV
//! vectors or as the input vector `x` to be recomputed (§4.1.2).  Those
//! policies live in the `kelle-cache` crate and implement [`KvCacheBackend`].
//!
//! The trait is deliberately payload-centric: the attention code does not care
//! *why* a token survived, only what is stored for it.  Eq. 1 and Eq. 2 are
//! invariant to the relative order of KV pairs (§2.2), so `entries` may return
//! tokens in any order — a property the proptest suite checks explicitly.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a token within the full (pre-eviction) sequence.
pub type TokenId = usize;

/// What is physically stored for a cached token in one attention head.
#[derive(Debug, Clone, PartialEq)]
pub enum EntryPayload {
    /// The key and value vectors are stored directly (each of length
    /// `head_dim`).
    Kv {
        /// Stored key vector.
        key: Vec<f32>,
        /// Stored value vector.
        value: Vec<f32>,
    },
    /// Only the layer-input vector `x` (length `channels`) is stored; the
    /// key/value must be recomputed through `W_K`/`W_V` before use (§4.1.2).
    Recompute {
        /// Stored input vector for the token.
        x: Vec<f32>,
    },
}

impl EntryPayload {
    /// Whether this payload requires recomputation.
    pub fn needs_recompute(&self) -> bool {
        matches!(self, EntryPayload::Recompute { .. })
    }
}

/// A single cached token entry for one `(layer, head)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The original sequence index of the token.
    pub token: TokenId,
    /// Stored data.
    pub payload: EntryPayload,
    /// Whether the policy currently classifies this token as a high-score
    /// (heavy-hitter) token.  Used by the fault injector to apply the
    /// HST/LST-dependent corruption rates of 2DRP.
    pub high_score: bool,
}

/// Aggregate occupancy statistics reported by a cache backend.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of per-head KV pairs currently stored (across all layers/heads).
    pub kv_entries: usize,
    /// Number of tokens currently stored as input vectors for recomputation
    /// (counted once per layer, since `x` is shared across heads).
    pub recompute_entries: usize,
    /// Total evictions performed so far.
    pub evictions: u64,
    /// Total tokens inserted so far (per layer insertions counted once).
    pub insertions: u64,
    /// Logical storage footprint in bytes assuming 16-bit elements.
    pub bytes_fp16: usize,
}

impl CacheStats {
    /// Sum of stored entries of both kinds.
    pub fn total_entries(&self) -> usize {
        self.kv_entries + self.recompute_entries
    }
}

/// A KV-cache management policy.
///
/// One backend instance manages the caches of *all* layers and heads of a
/// model; the `layer` argument selects which one an operation refers to.
///
/// The call sequence per generated token and layer is:
///
/// 1. [`insert`](KvCacheBackend::insert) with the token's input vector and
///    per-head keys/values;
/// 2. [`entries`](KvCacheBackend::entries) for each head, returning the tokens
///    to attend over;
/// 3. [`observe_attention`](KvCacheBackend::observe_attention) for each head
///    with the post-softmax probabilities assigned to the returned entries, so
///    importance-tracking policies (H2O, AERP) can update their scores.
///
/// After pre-filling, [`finish_prefill`](KvCacheBackend::finish_prefill) lets
/// policies apply their prefill retention rule (e.g. keep the top-`N'` tokens).
pub trait KvCacheBackend: std::fmt::Debug {
    /// Inserts the current token for `layer`.
    ///
    /// `x` is the layer-input vector (length `channels`); `keys[h]` /
    /// `values[h]` are the per-head projections (length `head_dim`).
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        x: &[f32],
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
    );

    /// Returns the cached entries to attend over for `(layer, head)`.
    fn entries(&self, layer: usize, head: usize) -> Vec<CacheEntry>;

    /// Reports the post-softmax attention probabilities assigned to cached
    /// tokens during the current step.
    fn observe_attention(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]);

    /// Signals the end of the pre-filling stage; `context_len` is the number
    /// of context tokens that were inserted.
    fn finish_prefill(&mut self, context_len: usize) {
        let _ = context_len;
    }

    /// Current occupancy statistics.
    fn stats(&self) -> CacheStats;

    /// Short policy name for reports (e.g. `"full"`, `"h2o"`, `"aerp"`).
    fn name(&self) -> &'static str;
}

/// Raw (token, key, value) entries stored for one `(layer, head)`.
type RawEntries = Vec<(TokenId, Vec<f32>, Vec<f32>)>;

/// The uncompressed reference cache: every token of every head is retained as
/// raw KV vectors.  This corresponds to the paper's "FP16 / full KV cache"
/// baseline column in Table 2.
#[derive(Debug, Default)]
pub struct FullKvCache {
    /// (layer, head) -> ordered list of (token, key, value).
    store: HashMap<(usize, usize), RawEntries>,
    /// (layer, head, token) -> accumulated attention score (used only to label
    /// HST/LST groups for fault-injection experiments).
    accumulated: HashMap<(usize, usize), HashMap<TokenId, f32>>,
    insertions: u64,
}

impl FullKvCache {
    /// Creates an empty full cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn median_score(scores: &HashMap<TokenId, f32>) -> f32 {
        if scores.is_empty() {
            return 0.0;
        }
        let mut values: Vec<f32> = scores.values().copied().collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values[values.len() / 2]
    }
}

impl KvCacheBackend for FullKvCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        _x: &[f32],
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
    ) {
        for (head, (k, v)) in keys.iter().zip(values.iter()).enumerate() {
            self.store
                .entry((layer, head))
                .or_default()
                .push((token, k.clone(), v.clone()));
        }
        self.insertions += 1;
    }

    fn entries(&self, layer: usize, head: usize) -> Vec<CacheEntry> {
        let scores = self.accumulated.get(&(layer, head));
        let median = scores.map(Self::median_score).unwrap_or(0.0);
        self.store
            .get(&(layer, head))
            .map(|entries| {
                entries
                    .iter()
                    .map(|(token, k, v)| CacheEntry {
                        token: *token,
                        payload: EntryPayload::Kv {
                            key: k.clone(),
                            value: v.clone(),
                        },
                        high_score: scores
                            .and_then(|s| s.get(token))
                            .map(|s| *s >= median)
                            .unwrap_or(true),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn observe_attention(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]) {
        let acc = self.accumulated.entry((layer, head)).or_default();
        for (token, p) in scores {
            *acc.entry(*token).or_insert(0.0) += *p;
        }
    }

    fn stats(&self) -> CacheStats {
        let kv_entries: usize = self.store.values().map(Vec::len).sum();
        let bytes: usize = self
            .store
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, k, v)| 2 * (k.len() + v.len()))
            .sum();
        CacheStats {
            kv_entries,
            recompute_entries: 0,
            evictions: 0,
            insertions: self.insertions,
            bytes_fp16: bytes,
        }
    }

    fn name(&self) -> &'static str {
        "full"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(token: usize) -> (Vec<f32>, Vec<f32>) {
        (vec![token as f32; 4], vec![-(token as f32); 4])
    }

    #[test]
    fn full_cache_retains_everything() {
        let mut cache = FullKvCache::new();
        for t in 0..10 {
            let (k, v) = kv(t);
            cache.insert(0, t, &[0.0; 8], &[k.clone(), k], &[v.clone(), v]);
        }
        assert_eq!(cache.entries(0, 0).len(), 10);
        assert_eq!(cache.entries(0, 1).len(), 10);
        assert_eq!(cache.entries(1, 0).len(), 0);
        assert_eq!(cache.stats().kv_entries, 20);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn full_cache_stats_bytes() {
        let mut cache = FullKvCache::new();
        let (k, v) = kv(0);
        cache.insert(0, 0, &[0.0; 8], &[k], &[v]);
        // One head, key+value of 4 elements each at 2 bytes.
        assert_eq!(cache.stats().bytes_fp16, 16);
    }

    #[test]
    fn high_score_labels_follow_attention() {
        let mut cache = FullKvCache::new();
        for t in 0..4 {
            let (k, v) = kv(t);
            cache.insert(0, t, &[0.0; 8], &[k], &[v]);
        }
        // Token 2 receives most of the attention mass.
        cache.observe_attention(0, 0, &[(0, 0.05), (1, 0.05), (2, 0.8), (3, 0.1)]);
        let entries = cache.entries(0, 0);
        let e2 = entries.iter().find(|e| e.token == 2).unwrap();
        let e0 = entries.iter().find(|e| e.token == 0).unwrap();
        assert!(e2.high_score);
        assert!(!e0.high_score);
    }

    #[test]
    fn payload_kind_query() {
        let kv = EntryPayload::Kv {
            key: vec![1.0],
            value: vec![2.0],
        };
        let rc = EntryPayload::Recompute { x: vec![1.0] };
        assert!(!kv.needs_recompute());
        assert!(rc.needs_recompute());
    }

    #[test]
    fn stats_total_entries() {
        let stats = CacheStats {
            kv_entries: 3,
            recompute_entries: 2,
            ..CacheStats::default()
        };
        assert_eq!(stats.total_entries(), 5);
    }
}
