//! The KV-cache backend abstraction and the full (uncompressed) reference
//! cache.
//!
//! During decoding, the model inserts the current token's per-head key/value
//! vectors into the cache (paper Fig. 1b) and then attends over whatever the
//! cache exposes.  Different *policies* (full cache, StreamingLLM, H2O,
//! Kelle's AERP) decide which tokens survive and whether a token is stored as
//! KV vectors or as the input vector `x` to be recomputed (§4.1.2).  Those
//! policies live in the `kelle-cache` crate and implement [`KvCacheBackend`].
//!
//! # Arena layout and the decode allocation discipline
//!
//! Kelle treats the KV cache as a first-order, contiguously laid out memory
//! object — that is the whole premise of co-designing it with eDRAM — and the
//! storage layer mirrors that.  Every policy backs each `(layer, head)` with
//! a [`KvArena`](crate::arena::KvArena): one `Vec<TokenId>` plus two flat
//! `Vec<f32>` buffers strided by `head_dim`, entry `i` owning elements
//! `[i·head_dim, (i+1)·head_dim)`.  AERP's recompute-format input vectors
//! live in a per-layer slot-recycling [`InputSlab`](crate::arena::InputSlab).
//! The discipline for the decode hot path is:
//!
//! * **reads are borrows**: [`for_each_entry`](KvCacheBackend::for_each_entry)
//!   visits [`EntryRef`] views whose key/value/`x` slices point straight into
//!   the arenas — zero copies, zero allocation;
//! * **inserts append**: flat per-head slices are copied onto the arena tail;
//!   buffers warm up to the policy budget and then stop growing;
//! * **evictions splice in place** (order-preserving `copy_within`), so the
//!   entry iteration order — and therefore the floating-point accumulation
//!   order of attention — is the same as the historical per-token-`Vec`
//!   storage produced.
//!
//! The materializing [`entries`](KvCacheBackend::entries) adapter (a provided
//! trait method building owned [`CacheEntry`] values through
//! `for_each_entry`) survives as the *reference surface*: tests prove the
//! borrowed path computes **bit-for-bit identical** token streams and
//! probability distributions to decoding through this adapter, and the
//! benchmark suite uses it as the allocation-heavy pre-arena baseline.
//! (Absolute numeric results differ from pre-rewrite *binaries* only through
//! the independently documented [`dot`](kelle_tensor::dot) reference
//! ordering, which both paths share.)
//!
//! The trait is deliberately payload-centric: the attention code does not
//! care *why* a token survived, only what is stored for it.  Eq. 1 and Eq. 2
//! are invariant to the relative order of KV pairs (§2.2), so entries may be
//! visited in any order — a property the proptest suite checks explicitly.

use crate::arena::ArenaGrid;
use crate::hash::FastHashMap;
use serde::{Deserialize, Serialize};

/// Index of a token within the full (pre-eviction) sequence.
pub type TokenId = usize;

/// What is physically stored for a cached token in one attention head.
#[derive(Debug, Clone, PartialEq)]
pub enum EntryPayload {
    /// The key and value vectors are stored directly (each of length
    /// `head_dim`).
    Kv {
        /// Stored key vector.
        key: Vec<f32>,
        /// Stored value vector.
        value: Vec<f32>,
    },
    /// Only the layer-input vector `x` (length `channels`) is stored; the
    /// key/value must be recomputed through `W_K`/`W_V` before use (§4.1.2).
    Recompute {
        /// Stored input vector for the token.
        x: Vec<f32>,
    },
}

impl EntryPayload {
    /// Whether this payload requires recomputation.
    pub fn needs_recompute(&self) -> bool {
        matches!(self, EntryPayload::Recompute { .. })
    }
}

/// A single cached token entry for one `(layer, head)` pair, with owned
/// payload buffers.
///
/// This is the *materialized* form produced by the
/// [`entries`](KvCacheBackend::entries) reference adapter; the decode hot
/// path works on borrowed [`EntryRef`] views instead.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The original sequence index of the token.
    pub token: TokenId,
    /// Stored data.
    pub payload: EntryPayload,
    /// Whether the policy currently classifies this token as a high-score
    /// (heavy-hitter) token.  Used by the fault injector to apply the
    /// HST/LST-dependent corruption rates of 2DRP.
    pub high_score: bool,
}

/// Borrowed view of a cached token's stored payload: slices pointing straight
/// into the backing arena (or input slab), valid for the duration of one
/// [`for_each_entry`](KvCacheBackend::for_each_entry) visit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadRef<'a> {
    /// Key and value vectors stored directly (each of length `head_dim`).
    Kv {
        /// Stored key vector.
        key: &'a [f32],
        /// Stored value vector.
        value: &'a [f32],
    },
    /// Only the layer-input vector `x` (length `channels`) is stored.
    Recompute {
        /// Stored input vector for the token.
        x: &'a [f32],
    },
}

impl PayloadRef<'_> {
    /// Whether this payload requires recomputation.
    pub fn needs_recompute(&self) -> bool {
        matches!(self, PayloadRef::Recompute { .. })
    }

    /// Deep-copies the payload into its owned form.
    pub fn to_owned_payload(&self) -> EntryPayload {
        match *self {
            PayloadRef::Kv { key, value } => EntryPayload::Kv {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            PayloadRef::Recompute { x } => EntryPayload::Recompute { x: x.to_vec() },
        }
    }
}

/// Borrowed view of a single cached token entry for one `(layer, head)`.
///
/// The zero-copy counterpart of [`CacheEntry`]: produced by
/// [`KvCacheBackend::for_each_entry`] and consumed by the fused attention
/// pass without touching the allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryRef<'a> {
    /// The original sequence index of the token.
    pub token: TokenId,
    /// Stored data, borrowed from the backend.
    pub payload: PayloadRef<'a>,
    /// Whether the policy currently classifies this token as a high-score
    /// (heavy-hitter) token.
    pub high_score: bool,
}

impl EntryRef<'_> {
    /// Deep-copies the view into an owned [`CacheEntry`].
    pub fn to_owned_entry(&self) -> CacheEntry {
        CacheEntry {
            token: self.token,
            payload: self.payload.to_owned_payload(),
            high_score: self.high_score,
        }
    }
}

/// Aggregate occupancy statistics reported by a cache backend.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of per-head KV pairs currently stored (across all layers/heads).
    pub kv_entries: usize,
    /// Number of tokens currently stored as input vectors for recomputation
    /// (counted once per layer, since `x` is shared across heads).
    pub recompute_entries: usize,
    /// Total evictions performed so far.
    pub evictions: u64,
    /// Total tokens inserted so far (per layer insertions counted once).
    pub insertions: u64,
    /// Logical storage footprint in bytes assuming 16-bit elements.
    ///
    /// This is the **arena footprint of live data**: `stride × live entries ×
    /// 2 bytes` per stored vector, with `Recompute` payloads counted once per
    /// layer (the input vector is shared across heads).  Retired arena
    /// capacity — slots kept warm for reuse after evictions — is explicitly
    /// *not* counted; the figure feeds the eDRAM capacity/refresh model,
    /// which cares about bits that must be retained, not allocator bookkeeping.
    ///
    /// Always equals `shared_bytes + private_bytes` — the unit-of-account
    /// invariant the prefix-sharing ledger relies on (regression-tested).
    pub bytes_fp16: usize,
    /// The portion of [`bytes_fp16`](CacheStats::bytes_fp16) currently served
    /// from a refcounted shared prefix segment (zero-copy; the physical bytes
    /// are charged once globally, not per session).
    pub shared_bytes: usize,
    /// The portion of [`bytes_fp16`](CacheStats::bytes_fp16) stored privately
    /// by this cache instance.
    pub private_bytes: usize,
}

impl CacheStats {
    /// Sum of stored entries of both kinds.
    pub fn total_entries(&self) -> usize {
        self.kv_entries + self.recompute_entries
    }

    /// Assembles stats from the shared/private byte split, keeping the
    /// `bytes_fp16 == shared_bytes + private_bytes` invariant by
    /// construction.  The single constructor every backend reports through.
    pub fn with_split(
        kv_entries: usize,
        recompute_entries: usize,
        evictions: u64,
        insertions: u64,
        shared_bytes: usize,
        private_bytes: usize,
    ) -> CacheStats {
        CacheStats {
            kv_entries,
            recompute_entries,
            evictions,
            insertions,
            bytes_fp16: shared_bytes + private_bytes,
            shared_bytes,
            private_bytes,
        }
    }
}

/// A KV-cache management policy.
///
/// One backend instance manages the caches of *all* layers and heads of a
/// model; the `layer` argument selects which one an operation refers to.
///
/// The call sequence per generated token and layer is:
///
/// 1. [`insert`](KvCacheBackend::insert) with the token's input vector and
///    the per-head keys/values as flat `channels`-length slices;
/// 2. [`for_each_entry`](KvCacheBackend::for_each_entry) for each head,
///    visiting borrowed views of the tokens to attend over;
/// 3. [`observe_attention`](KvCacheBackend::observe_attention) for each head
///    with the post-softmax probabilities assigned to the visited entries, so
///    importance-tracking policies (H2O, AERP) can update their scores.
///
/// After pre-filling, [`finish_prefill`](KvCacheBackend::finish_prefill) lets
/// policies apply their prefill retention rule (e.g. keep the top-`N'`
/// tokens).
///
/// Within one logical step, consecutive `for_each_entry` calls for the same
/// `(layer, head)` with no intervening `&mut` access must visit the same
/// entries in the same order (the fused attention pass traverses twice:
/// scores, then value accumulation).
///
/// Backends are required to be [`Send`] + [`Sync`]: a serving session owns
/// its backend and the threaded serving front-end (`kelle::parallel`) moves
/// whole sessions between the coordinator and its worker shards (`Send`),
/// while the intra-session decode path shares `&self` across workers that
/// each traverse a different head's entries concurrently (`Sync`).  Every
/// stock backend is plain owned data (arenas, hash maps, counters), so the
/// bounds cost nothing; they only rule out `Rc`/`RefCell`/thread-local
/// tricks in custom implementations.
///
/// `observe_attention(layer, head, ..)` must confine its effects to state
/// associated with that `(layer, head)` pair — it must not evict, reorder or
/// rescore entries of *other* heads (evictions belong in
/// [`insert`](KvCacheBackend::insert) /
/// [`finish_prefill`](KvCacheBackend::finish_prefill)).  The parallel
/// attention pass relies on this: it runs all heads' read-only traversals
/// first and replays the observes serially in head order afterwards, which
/// is indistinguishable from the interleaved sequential order exactly
/// because observes are per-head confined.  All stock policies satisfy this
/// (H2O/AERP accumulate into per-`(layer, head)` score maps; the others
/// ignore observes).
pub trait KvCacheBackend: std::fmt::Debug + Send + Sync {
    /// Inserts the current token for `layer`.
    ///
    /// `x` is the layer-input vector (length `channels`); `keys` / `values`
    /// are the per-head projections laid out head-major as flat slices of
    /// length `heads × head_dim` (head `h` owns
    /// `[h·head_dim, (h+1)·head_dim)`).
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        x: &[f32],
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    );

    /// Visits every cached entry of `(layer, head)` in the backend's entry
    /// order, handing the visitor borrowed [`EntryRef`] views into the
    /// backing storage.
    fn for_each_entry(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(EntryRef<'e>),
    );

    /// Visits only the stored payloads of `(layer, head)`, in the same entry
    /// order as [`for_each_entry`](KvCacheBackend::for_each_entry).
    ///
    /// This is the second (value-accumulation) traversal of the fused
    /// attention pass, which needs no token ids or importance labels;
    /// backends that pay per-entry cost to classify HST/LST tokens (median
    /// lookups in score-tracking policies) should override it to skip that
    /// work.  The default delegates to `for_each_entry`.
    fn for_each_payload(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(PayloadRef<'e>),
    ) {
        self.for_each_entry(layer, head, &mut |e| visit(e.payload));
    }

    /// Number of cached entries for `(layer, head)`.
    ///
    /// The default implementation counts through
    /// [`for_each_entry`](KvCacheBackend::for_each_entry); backends with O(1)
    /// knowledge should override it.
    fn entry_count(&self, layer: usize, head: usize) -> usize {
        let mut n = 0;
        self.for_each_entry(layer, head, &mut |_| n += 1);
        n
    }

    /// Materializes the cached entries of `(layer, head)` as owned values.
    ///
    /// This is the *reference adapter* over
    /// [`for_each_entry`](KvCacheBackend::for_each_entry): it deep-copies
    /// every visited view, which makes it convenient for tests, assertions
    /// and offline tooling — and exactly as allocation-heavy as the
    /// pre-arena storage layer, which is why the decode benchmark uses it as
    /// the baseline.  Hot paths must use `for_each_entry` directly.
    fn entries(&self, layer: usize, head: usize) -> Vec<CacheEntry> {
        let mut out = Vec::with_capacity(self.entry_count(layer, head));
        self.for_each_entry(layer, head, &mut |e| out.push(e.to_owned_entry()));
        out
    }

    /// Reports the post-softmax attention probabilities assigned to cached
    /// tokens during the current step.
    fn observe_attention(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]);

    /// Offers a refcounted shared prefix base to the backend **before** the
    /// prefix-sharing machinery replays the prefix's insert/observe sequence
    /// into it.
    ///
    /// Backends whose arenas store the raw KV projections in insertion order
    /// override this to open their arenas over the base
    /// ([`ArenaGrid::attach_base`](crate::arena::ArenaGrid::attach_base)):
    /// the replayed inserts then *adopt* the shared entries zero-copy, and an
    /// eviction touching the prefix privatizes first (copy-on-evict).  The
    /// default ignores the offer — the replay simply stores private copies,
    /// which is always correct (the backend's state is a deterministic
    /// function of the insert/observe call sequence either way).  Backends
    /// that transform payloads on insert (e.g. quantization) should keep the
    /// default: their pushes can never match the raw shared data.
    ///
    /// Must only be called on a fresh (empty) cache.
    fn attach_shared_prefix(&mut self, prefix: &crate::arena::SharedKv) {
        let _ = prefix;
    }

    /// Signals the end of the pre-filling stage; `context_len` is the number
    /// of context tokens that were inserted.
    fn finish_prefill(&mut self, context_len: usize) {
        let _ = context_len;
    }

    /// Current occupancy statistics.
    fn stats(&self) -> CacheStats;

    /// Short policy name for reports (e.g. `"full"`, `"h2o"`, `"aerp"`).
    fn name(&self) -> &'static str;

    /// Deep-copies the backend behind a fresh box — the checkpointing hook
    /// the chaos-recovery machinery uses to snapshot a session's KV state at
    /// committed tick boundaries.
    ///
    /// The clone must be *bit-faithful*: replaying the same insert/observe
    /// sequence against original and clone must produce identical entries,
    /// statistics and eviction decisions.  All stock policies derive `Clone`
    /// (arenas, hash maps and counters copy trivially; shared prefix bases
    /// are refcounted `Arc`s whose clone is ledger-neutral).  The default
    /// panics, so ephemeral adapters that can never be checkpointed — e.g.
    /// the borrowing `SegmentRecorder` — need not (and cannot) implement it.
    fn clone_box(&self) -> Box<dyn KvCacheBackend> {
        unimplemented!(
            "KV cache backend `{}` does not support checkpoint cloning",
            self.name()
        )
    }
}

/// The uncompressed reference cache: every token of every head is retained as
/// raw KV vectors in per-`(layer, head)` arenas.  This corresponds to the
/// paper's "FP16 / full KV cache" baseline column in Table 2.
#[derive(Debug, Default, Clone)]
pub struct FullKvCache {
    /// (layer, head) -> contiguous KV arena in insertion order.
    store: ArenaGrid,
    /// (layer, head, token) -> accumulated attention score (used only to label
    /// HST/LST groups for fault-injection experiments).
    accumulated: FastHashMap<(usize, usize), FastHashMap<TokenId, f32>>,
    insertions: u64,
}

impl FullKvCache {
    /// Creates an empty full cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn median_score(scores: &FastHashMap<TokenId, f32>) -> f32 {
        if scores.is_empty() {
            return 0.0;
        }
        let mut values: Vec<f32> = scores.values().copied().collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values[values.len() / 2]
    }
}

impl KvCacheBackend for FullKvCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        _x: &[f32],
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) {
        for (head, (k, v)) in keys
            .chunks_exact(head_dim)
            .zip(values.chunks_exact(head_dim))
            .enumerate()
        {
            self.store
                .get_or_create(layer, head, head_dim)
                .push(token, k, v);
        }
        self.insertions += 1;
    }

    fn for_each_entry(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(EntryRef<'e>),
    ) {
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        let scores = self.accumulated.get(&(layer, head));
        let median = scores.map(Self::median_score).unwrap_or(0.0);
        for i in 0..arena.len() {
            let token = arena.token_at(i);
            visit(EntryRef {
                token,
                payload: PayloadRef::Kv {
                    key: arena.key(i),
                    value: arena.value(i),
                },
                high_score: scores
                    .and_then(|s| s.get(&token))
                    .map(|s| *s >= median)
                    .unwrap_or(true),
            });
        }
    }

    fn for_each_payload(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(PayloadRef<'e>),
    ) {
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        for i in 0..arena.len() {
            visit(PayloadRef::Kv {
                key: arena.key(i),
                value: arena.value(i),
            });
        }
    }

    fn entry_count(&self, layer: usize, head: usize) -> usize {
        self.store.get(layer, head).map_or(0, |a| a.len())
    }

    fn observe_attention(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]) {
        let acc = self.accumulated.entry((layer, head)).or_default();
        for (token, p) in scores {
            *acc.entry(*token).or_insert(0.0) += *p;
        }
    }

    fn attach_shared_prefix(&mut self, prefix: &crate::arena::SharedKv) {
        // The full cache stores raw KV in insertion order and never evicts:
        // adopted prefix entries stay zero-copy for the session's lifetime.
        self.store.attach_base(prefix);
    }

    fn stats(&self) -> CacheStats {
        CacheStats::with_split(
            self.store.total_entries(),
            0,
            0,
            self.insertions,
            self.store.shared_bytes_fp16(),
            self.store.private_bytes_fp16(),
        )
    }

    fn name(&self) -> &'static str {
        "full"
    }

    fn clone_box(&self) -> Box<dyn KvCacheBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(token: usize) -> (Vec<f32>, Vec<f32>) {
        (vec![token as f32; 4], vec![-(token as f32); 4])
    }

    /// Two-head insert helper using the flat head-major layout.
    fn insert2(cache: &mut FullKvCache, token: usize) {
        let (k, v) = kv(token);
        let keys: Vec<f32> = k.iter().chain(k.iter()).copied().collect();
        let values: Vec<f32> = v.iter().chain(v.iter()).copied().collect();
        cache.insert(0, token, &[0.0; 8], &keys, &values, 4);
    }

    #[test]
    fn full_cache_retains_everything() {
        let mut cache = FullKvCache::new();
        for t in 0..10 {
            insert2(&mut cache, t);
        }
        assert_eq!(cache.entries(0, 0).len(), 10);
        assert_eq!(cache.entries(0, 1).len(), 10);
        assert_eq!(cache.entries(1, 0).len(), 0);
        assert_eq!(cache.entry_count(0, 0), 10);
        assert_eq!(cache.entry_count(1, 0), 0);
        assert_eq!(cache.stats().kv_entries, 20);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn full_cache_stats_bytes() {
        let mut cache = FullKvCache::new();
        let (k, v) = kv(0);
        cache.insert(0, 0, &[0.0; 8], &k, &v, 4);
        // One head, key+value of 4 elements each at 2 bytes.
        assert_eq!(cache.stats().bytes_fp16, 16);
    }

    #[test]
    fn high_score_labels_follow_attention() {
        let mut cache = FullKvCache::new();
        for t in 0..4 {
            let (k, v) = kv(t);
            cache.insert(0, t, &[0.0; 8], &k, &v, 4);
        }
        // Token 2 receives most of the attention mass.
        cache.observe_attention(0, 0, &[(0, 0.05), (1, 0.05), (2, 0.8), (3, 0.1)]);
        let entries = cache.entries(0, 0);
        let e2 = entries.iter().find(|e| e.token == 2).unwrap();
        let e0 = entries.iter().find(|e| e.token == 0).unwrap();
        assert!(e2.high_score);
        assert!(!e0.high_score);
    }

    #[test]
    fn borrowed_views_match_materialized_entries() {
        let mut cache = FullKvCache::new();
        for t in 0..6 {
            insert2(&mut cache, t);
        }
        cache.observe_attention(0, 0, &[(0, 0.7), (3, 0.1)]);
        let owned = cache.entries(0, 0);
        let mut visited = Vec::new();
        cache.for_each_entry(0, 0, &mut |e| visited.push(e.to_owned_entry()));
        assert_eq!(owned, visited);
    }

    #[test]
    fn payload_kind_query() {
        let kv = EntryPayload::Kv {
            key: vec![1.0],
            value: vec![2.0],
        };
        let rc = EntryPayload::Recompute { x: vec![1.0] };
        assert!(!kv.needs_recompute());
        assert!(rc.needs_recompute());
        let kv_ref = PayloadRef::Kv {
            key: &[1.0],
            value: &[2.0],
        };
        let rc_ref = PayloadRef::Recompute { x: &[1.0] };
        assert!(!kv_ref.needs_recompute());
        assert!(rc_ref.needs_recompute());
        assert_eq!(kv_ref.to_owned_payload(), kv);
        assert_eq!(rc_ref.to_owned_payload(), rc);
    }

    #[test]
    fn stats_total_entries() {
        let stats = CacheStats {
            kv_entries: 3,
            recompute_entries: 2,
            ..CacheStats::default()
        };
        assert_eq!(stats.total_entries(), 5);
    }
}
