//! Contiguous arena storage backing the KV-cache policies.
//!
//! The original storage layer kept every cached token as a pair of boxed
//! `Vec<f32>`s inside per-token structs, so each decode step chased pointers
//! all over the heap and every read materialized fresh clones.  The arenas in
//! this module are the replacement: one flat `f32` buffer per `(layer, head)`
//! strided by `head_dim` for KV pairs ([`KvArena`]), and one slot-recycling
//! slab per layer for AERP's recompute-format input vectors ([`InputSlab`]).
//!
//! The allocation discipline is:
//!
//! * **insert** appends to the arena tail (amortized O(1); the buffers warm
//!   up to the policy budget and then stop growing);
//! * **evict** removes the entry while *preserving order* (`copy_within` +
//!   truncate), so entry iteration order — and therefore the floating-point
//!   accumulation order of attention — is identical to the historical
//!   per-token-`Vec` storage; and
//! * **read** hands out borrowed `&[f32]` slices straight into the arena; the
//!   steady-state decode path never clones a key or value.
//!
//! Eq. 1/2 are order-invariant (§2.2), so *correctness* does not depend on
//! the order-preserving eviction; bitwise reproducibility of token streams
//! against the materializing reference adapter (and against the historical
//! entry order) does, which is why the arenas do not use `swap_remove`.

use crate::cache::TokenId;
use crate::hash::FastHashMap;

/// Bytes per stored element under the logical FP16 storage format the cache
/// statistics report.
pub const FP16_BYTES: usize = 2;

/// Contiguous KV storage for one `(layer, head)`: a token list plus two flat
/// `f32` buffers (keys and values) strided by `head_dim`.
///
/// Entry `i` owns `keys[i*head_dim .. (i+1)*head_dim]` and the corresponding
/// `values` range; `tokens[i]` is its sequence position.  Entries stay in
/// insertion order across evictions (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct KvArena {
    head_dim: usize,
    tokens: Vec<TokenId>,
    keys: Vec<f32>,
    values: Vec<f32>,
}

impl KvArena {
    /// Creates an empty arena for vectors of length `head_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim == 0`.
    pub fn new(head_dim: usize) -> Self {
        assert!(head_dim > 0, "arena stride must be non-zero");
        KvArena {
            head_dim,
            tokens: Vec::new(),
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The per-entry stride (elements per key or value vector).
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the arena holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The stored token ids, in entry order.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// The token id of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn token_at(&self, i: usize) -> TokenId {
        self.tokens[i]
    }

    /// Borrows the key vector of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn key(&self, i: usize) -> &[f32] {
        &self.keys[i * self.head_dim..(i + 1) * self.head_dim]
    }

    /// Borrows the value vector of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn value(&self, i: usize) -> &[f32] {
        &self.values[i * self.head_dim..(i + 1) * self.head_dim]
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if `key` or `value` length differs from the arena stride.
    pub fn push(&mut self, token: TokenId, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.head_dim, "key length must match stride");
        assert_eq!(value.len(), self.head_dim, "value length must match stride");
        self.tokens.push(token);
        self.keys.extend_from_slice(key);
        self.values.extend_from_slice(value);
    }

    /// The entry index currently holding `token`, if present.
    pub fn position(&self, token: TokenId) -> Option<usize> {
        self.tokens.iter().position(|&t| t == token)
    }

    /// Removes entry `i`, preserving the order of the remaining entries.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn remove_at(&mut self, i: usize) {
        let n = self.len();
        assert!(i < n, "arena index out of bounds");
        self.tokens.remove(i);
        let d = self.head_dim;
        self.keys.copy_within((i + 1) * d.., i * d);
        self.keys.truncate((n - 1) * d);
        self.values.copy_within((i + 1) * d.., i * d);
        self.values.truncate((n - 1) * d);
    }

    /// Removes the entry holding `token`, if present.  Returns whether an
    /// entry was removed.
    pub fn remove_token(&mut self, token: TokenId) -> bool {
        match self.position(token) {
            Some(i) => {
                self.remove_at(i);
                true
            }
            None => false,
        }
    }

    /// Drops all entries (capacity is retained for reuse).
    pub fn clear(&mut self) {
        self.tokens.clear();
        self.keys.clear();
        self.values.clear();
    }

    /// Logical FP16 footprint of the *live* entries: `stride × live entries ×
    /// 2 vectors × 2 bytes`.  Deliberately independent of the buffers'
    /// retained capacity — retired slots cost nothing (the
    /// `CacheStats::bytes_fp16` contract).
    pub fn bytes_fp16(&self) -> usize {
        self.len() * 2 * self.head_dim * FP16_BYTES
    }
}

/// A keyed collection of [`KvArena`]s, one per `(layer, head)`, with lazy
/// creation at a fixed stride.  Thin convenience wrapper shared by the cache
/// policies.
#[derive(Debug, Clone, Default)]
pub struct ArenaGrid {
    arenas: FastHashMap<(usize, usize), KvArena>,
}

impl ArenaGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        ArenaGrid::default()
    }

    /// The arena for `(layer, head)`, if any entries were ever inserted.
    pub fn get(&self, layer: usize, head: usize) -> Option<&KvArena> {
        self.arenas.get(&(layer, head))
    }

    /// Mutable access to the arena for `(layer, head)`, if present.
    pub fn get_mut(&mut self, layer: usize, head: usize) -> Option<&mut KvArena> {
        self.arenas.get_mut(&(layer, head))
    }

    /// The arena for `(layer, head)`, created at `head_dim` stride on first
    /// use.
    pub fn get_or_create(&mut self, layer: usize, head: usize, head_dim: usize) -> &mut KvArena {
        self.arenas
            .entry((layer, head))
            .or_insert_with(|| KvArena::new(head_dim))
    }

    /// Iterates over all arenas.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &KvArena)> {
        self.arenas.iter()
    }

    /// The `(layer, head)` keys present in the grid.
    pub fn keys(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.arenas.keys().copied()
    }

    /// Total live entries across all arenas.
    pub fn total_entries(&self) -> usize {
        self.arenas.values().map(KvArena::len).sum()
    }

    /// Total logical FP16 footprint across all arenas (live entries only).
    pub fn bytes_fp16(&self) -> usize {
        self.arenas.values().map(KvArena::bytes_fp16).sum()
    }
}

/// Slot-recycling storage for per-layer input vectors (`x`, length
/// `channels`), used by AERP's recomputation format.
///
/// Removing a token pushes its slot onto a free list instead of freeing the
/// backing memory, so steady-state insert/evict churn performs no heap
/// traffic at all once the slab has warmed up to the policy budget.
#[derive(Debug, Clone, Default)]
pub struct InputSlab {
    width: usize,
    data: Vec<f32>,
    index: FastHashMap<TokenId, usize>,
    free: Vec<usize>,
}

impl InputSlab {
    /// Creates an empty slab for vectors of length `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "slab width must be non-zero");
        InputSlab {
            width,
            data: Vec::new(),
            index: FastHashMap::default(),
            free: Vec::new(),
        }
    }

    /// The vector length the slab stores.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `token` is stored.
    pub fn contains(&self, token: TokenId) -> bool {
        self.index.contains_key(&token)
    }

    /// Stores (or overwrites) the vector for `token`.
    ///
    /// # Panics
    ///
    /// Panics if `x` length differs from the slab width.
    pub fn insert(&mut self, token: TokenId, x: &[f32]) {
        assert_eq!(x.len(), self.width, "input length must match slab width");
        let slot = match self.index.get(&token) {
            Some(&slot) => slot,
            None => {
                let slot = self.free.pop().unwrap_or_else(|| {
                    let slot = self.data.len() / self.width;
                    self.data.resize(self.data.len() + self.width, 0.0);
                    slot
                });
                self.index.insert(token, slot);
                slot
            }
        };
        self.data[slot * self.width..(slot + 1) * self.width].copy_from_slice(x);
    }

    /// Borrows the vector stored for `token`, if present.
    pub fn get(&self, token: TokenId) -> Option<&[f32]> {
        self.index
            .get(&token)
            .map(|&slot| &self.data[slot * self.width..(slot + 1) * self.width])
    }

    /// Removes `token`, recycling its slot.  Returns whether it was present.
    pub fn remove(&mut self, token: TokenId) -> bool {
        match self.index.remove(&token) {
            Some(slot) => {
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Logical FP16 footprint of the live entries (`width × live entries × 2
    /// bytes`), independent of recycled-slot capacity.
    pub fn bytes_fp16(&self) -> usize {
        self.len() * self.width * FP16_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with(entries: &[(TokenId, f32)]) -> KvArena {
        let mut arena = KvArena::new(4);
        for &(t, v) in entries {
            arena.push(t, &[v; 4], &[-v; 4]);
        }
        arena
    }

    #[test]
    fn push_and_borrow() {
        let arena = arena_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.tokens(), &[0, 1, 2]);
        assert_eq!(arena.key(1), &[2.0; 4]);
        assert_eq!(arena.value(2), &[-3.0; 4]);
    }

    #[test]
    fn remove_preserves_order() {
        let mut arena = arena_with(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
        arena.remove_at(1);
        assert_eq!(arena.tokens(), &[0, 2, 3]);
        assert_eq!(arena.key(1), &[3.0; 4]);
        assert_eq!(arena.value(2), &[-4.0; 4]);
        assert!(arena.remove_token(3));
        assert!(!arena.remove_token(99));
        assert_eq!(arena.tokens(), &[0, 2]);
    }

    #[test]
    fn bytes_reflect_live_entries_not_capacity() {
        let mut arena = arena_with(&[]);
        for t in 0..100 {
            arena.push(t, &[0.5; 4], &[0.5; 4]);
        }
        while arena.len() > 4 {
            arena.remove_at(0);
        }
        // 4 entries × 2 vectors × 4 elements × 2 bytes, regardless of the
        // capacity the buffers retain from their 100-entry peak.
        assert_eq!(arena.bytes_fp16(), 4 * 2 * 4 * 2);
        assert!(arena.keys.capacity() >= 100 * 4);
    }

    #[test]
    fn grid_lazily_creates() {
        let mut grid = ArenaGrid::new();
        assert!(grid.get(0, 0).is_none());
        grid.get_or_create(0, 0, 4).push(7, &[1.0; 4], &[2.0; 4]);
        assert_eq!(grid.get(0, 0).unwrap().len(), 1);
        assert_eq!(grid.total_entries(), 1);
        assert_eq!(grid.bytes_fp16(), 2 * 4 * 2);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut slab = InputSlab::new(3);
        slab.insert(0, &[1.0, 2.0, 3.0]);
        slab.insert(1, &[4.0, 5.0, 6.0]);
        assert_eq!(slab.get(0), Some(&[1.0, 2.0, 3.0][..]));
        assert!(slab.remove(0));
        assert!(!slab.remove(0));
        let backing = slab.data.len();
        slab.insert(2, &[7.0, 8.0, 9.0]);
        // Token 2 reused token 0's slot; the backing store did not grow.
        assert_eq!(slab.data.len(), backing);
        assert_eq!(slab.get(2), Some(&[7.0, 8.0, 9.0][..]));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.bytes_fp16(), 2 * 3 * 2);
    }

    #[test]
    fn slab_overwrite_keeps_one_slot() {
        let mut slab = InputSlab::new(2);
        slab.insert(5, &[1.0, 1.0]);
        slab.insert(5, &[2.0, 2.0]);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(5), Some(&[2.0, 2.0][..]));
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        KvArena::new(0);
    }
}
