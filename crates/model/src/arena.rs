//! Contiguous arena storage backing the KV-cache policies.
//!
//! The original storage layer kept every cached token as a pair of boxed
//! `Vec<f32>`s inside per-token structs, so each decode step chased pointers
//! all over the heap and every read materialized fresh clones.  The arenas in
//! this module are the replacement: one flat `f32` buffer per `(layer, head)`
//! strided by `head_dim` for KV pairs ([`KvArena`]), and one slot-recycling
//! slab per layer for AERP's recompute-format input vectors ([`InputSlab`]).
//!
//! The allocation discipline is:
//!
//! * **insert** appends to the arena tail (amortized O(1); the buffers warm
//!   up to the policy budget and then stop growing);
//! * **evict** removes the entry while *preserving order* (`copy_within` +
//!   truncate), so entry iteration order — and therefore the floating-point
//!   accumulation order of attention — is identical to the historical
//!   per-token-`Vec` storage; and
//! * **read** hands out borrowed `&[f32]` slices straight into the arena; the
//!   steady-state decode path never clones a key or value.
//!
//! Eq. 1/2 are order-invariant (§2.2), so *correctness* does not depend on
//! the order-preserving eviction; bitwise reproducibility of token streams
//! against the materializing reference adapter (and against the historical
//! entry order) does, which is why the arenas do not use `swap_remove`.
//!
//! # Copy-on-evict sharing
//!
//! Cross-session prefix sharing (the `kelle::prefix` subsystem) hands many
//! sessions the *same* physical KV storage for a common prompt prefix.  An
//! arena can be opened over a refcounted base ([`SharedKv`], an
//! `Arc<ArenaGrid>` published by the prefix store): while the owning policy
//! replays the shared prefix, each [`push`](KvArena::push) whose token and
//! payload are **bit-identical** to the next base entry *adopts* it — the
//! entry is served by reference out of the shared grid, no bytes are copied.
//! The first divergence (a differing payload, e.g. a quantizing policy)
//! simply ends adoption and starts the private tail; an **eviction inside
//! the adopted region privatizes** the arena first (the shared data is
//! copied into the private buffers and the base reference dropped), so the
//! shared copy is immutable for its whole lifetime and every other session
//! keeps reading it untouched.  Sessions that never evict the prefix (the
//! `full` policy, or budgeted policies whose budget covers it) read the
//! shared copy zero-copy forever.

use crate::cache::TokenId;
use crate::hash::FastHashMap;
use std::sync::Arc;

/// Bytes per stored element under the logical FP16 storage format the cache
/// statistics report.
pub const FP16_BYTES: usize = 2;

/// A refcounted, read-only KV base published for cross-session sharing: the
/// per-`(layer, head)` arenas of one prompt prefix, plus the dimensions a
/// backend needs to pre-create its own arenas over them.
///
/// Produced by the prefix-publication machinery (`kelle_model::segment`) and
/// consumed by [`KvCacheBackend::attach_shared_prefix`](crate::cache::KvCacheBackend::attach_shared_prefix)
/// implementations, which open their arenas over the base via
/// [`ArenaGrid::attach_base`].
#[derive(Debug, Clone)]
pub struct SharedKv {
    /// The shared per-`(layer, head)` arenas, in prefix insertion order.
    pub grid: Arc<ArenaGrid>,
    /// Decoder layers covered by the base.
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Per-head vector length (the arena stride).
    pub head_dim: usize,
    /// Number of prefix tokens stored per `(layer, head)`.
    pub tokens: usize,
}

/// A live view into a [`SharedKv`] base held by one arena: which shared
/// `(layer, head)` arena it aliases and how many of its entries have been
/// adopted so far.
#[derive(Debug, Clone)]
struct ArenaBase {
    grid: Arc<ArenaGrid>,
    layer: usize,
    head: usize,
    /// Entries `0..adopted` of the shared arena are served by reference.
    adopted: usize,
}

impl ArenaBase {
    fn arena(&self) -> &KvArena {
        self.grid
            .get(self.layer, self.head)
            .expect("shared base grid holds the attached (layer, head)")
    }
}

/// Bitwise slice equality (`f32::to_bits`), the adoption criterion: adopting
/// a shared entry must be observationally identical to storing the pushed
/// payload privately.
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Contiguous KV storage for one `(layer, head)`: a token list plus two flat
/// `f32` buffers (keys and values) strided by `head_dim`.
///
/// Entry `i` owns `keys[i*head_dim .. (i+1)*head_dim]` and the corresponding
/// `values` range; `tokens[i]` is its sequence position.  Entries stay in
/// insertion order across evictions (see the module docs).
///
/// An arena may additionally alias a shared prefix base (see the
/// [module docs](self) on copy-on-evict sharing): logical entries are then
/// the adopted base entries followed by the private tail, and all accessors
/// dispatch transparently.
#[derive(Debug, Clone, Default)]
pub struct KvArena {
    head_dim: usize,
    tokens: Vec<TokenId>,
    keys: Vec<f32>,
    values: Vec<f32>,
    base: Option<ArenaBase>,
}

impl KvArena {
    /// Creates an empty arena for vectors of length `head_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim == 0`.
    pub fn new(head_dim: usize) -> Self {
        assert!(head_dim > 0, "arena stride must be non-zero");
        KvArena {
            head_dim,
            tokens: Vec::new(),
            keys: Vec::new(),
            values: Vec::new(),
            base: None,
        }
    }

    /// The per-entry stride (elements per key or value vector).
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of adopted shared entries (zero for a purely private arena).
    fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.adopted)
    }

    /// Number of live entries (adopted shared entries + private tail).
    pub fn len(&self) -> usize {
        self.base_len() + self.tokens.len()
    }

    /// Whether the arena holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the stored token ids, in entry order.
    pub fn iter_tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        (0..self.len()).map(|i| self.token_at(i))
    }

    /// The first stored token id, if any.
    pub fn first_token(&self) -> Option<TokenId> {
        if self.is_empty() {
            None
        } else {
            Some(self.token_at(0))
        }
    }

    /// The index of the first entry whose token satisfies `pred`, if any.
    pub fn position_where(&self, mut pred: impl FnMut(TokenId) -> bool) -> Option<usize> {
        (0..self.len()).find(|&i| pred(self.token_at(i)))
    }

    /// The token id of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn token_at(&self, i: usize) -> TokenId {
        let shared = self.base_len();
        if i < shared {
            self.base.as_ref().expect("base checked").arena().tokens[i]
        } else {
            self.tokens[i - shared]
        }
    }

    /// Borrows the key vector of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn key(&self, i: usize) -> &[f32] {
        let shared = self.base_len();
        let d = self.head_dim;
        if i < shared {
            let arena = self.base.as_ref().expect("base checked").arena();
            &arena.keys[i * d..(i + 1) * d]
        } else {
            let i = i - shared;
            &self.keys[i * d..(i + 1) * d]
        }
    }

    /// Borrows the value vector of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn value(&self, i: usize) -> &[f32] {
        let shared = self.base_len();
        let d = self.head_dim;
        if i < shared {
            let arena = self.base.as_ref().expect("base checked").arena();
            &arena.values[i * d..(i + 1) * d]
        } else {
            let i = i - shared;
            &self.values[i * d..(i + 1) * d]
        }
    }

    /// Opens this (empty) arena over a shared prefix base, enabling adoption.
    ///
    /// # Panics
    ///
    /// Panics if the arena already holds entries or a base, or if the base's
    /// `(layer, head)` arena has a different stride.
    pub fn set_base(&mut self, shared: &SharedKv, layer: usize, head: usize) {
        assert!(
            self.tokens.is_empty() && self.base.is_none(),
            "a shared base can only be attached to an empty arena"
        );
        let arena = shared
            .grid
            .get(layer, head)
            .expect("shared base must hold the attached (layer, head)");
        assert_eq!(arena.head_dim, self.head_dim, "base stride must match");
        self.base = Some(ArenaBase {
            grid: Arc::clone(&shared.grid),
            layer,
            head,
            adopted: 0,
        });
    }

    /// Whether any entries are currently served from a shared base.
    pub fn is_shared(&self) -> bool {
        self.base_len() > 0
    }

    /// Copies the adopted shared entries into the private buffers and drops
    /// the base reference.  Idempotent; the logical entry sequence is
    /// unchanged.
    fn privatize(&mut self) {
        let Some(base) = self.base.take() else {
            return;
        };
        if base.adopted == 0 {
            return;
        }
        let shared = base.arena();
        let d = self.head_dim;
        let n = base.adopted;
        let mut tokens = Vec::with_capacity(n + self.tokens.len());
        tokens.extend_from_slice(&shared.tokens[..n]);
        tokens.extend_from_slice(&self.tokens);
        let mut keys = Vec::with_capacity((n + self.tokens.len()) * d);
        keys.extend_from_slice(&shared.keys[..n * d]);
        keys.extend_from_slice(&self.keys);
        let mut values = Vec::with_capacity((n + self.tokens.len()) * d);
        values.extend_from_slice(&shared.values[..n * d]);
        values.extend_from_slice(&self.values);
        self.tokens = tokens;
        self.keys = keys;
        self.values = values;
    }

    /// Appends an entry.
    ///
    /// With a shared base attached and the private tail still empty, a push
    /// whose token and payload are bit-identical to the next base entry
    /// *adopts* it instead of copying (see the [module docs](self)); the
    /// first non-matching push ends adoption and starts the private tail.
    ///
    /// # Panics
    ///
    /// Panics if `key` or `value` length differs from the arena stride.
    pub fn push(&mut self, token: TokenId, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.head_dim, "key length must match stride");
        assert_eq!(value.len(), self.head_dim, "value length must match stride");
        if self.tokens.is_empty() {
            if let Some(base) = self.base.as_ref() {
                let arena = base.arena();
                let i = base.adopted;
                let d = self.head_dim;
                if i < arena.tokens.len()
                    && arena.tokens[i] == token
                    && bits_eq(&arena.keys[i * d..(i + 1) * d], key)
                    && bits_eq(&arena.values[i * d..(i + 1) * d], value)
                {
                    self.base.as_mut().expect("base checked").adopted += 1;
                    return;
                }
            }
        }
        self.tokens.push(token);
        self.keys.extend_from_slice(key);
        self.values.extend_from_slice(value);
    }

    /// The entry index currently holding `token`, if present.
    pub fn position(&self, token: TokenId) -> Option<usize> {
        self.position_where(|t| t == token)
    }

    /// Removes entry `i`, preserving the order of the remaining entries.
    ///
    /// Removing an entry inside the adopted shared region first privatizes
    /// the arena (copy-on-evict): the shared copy is never mutated.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn remove_at(&mut self, i: usize) {
        assert!(i < self.len(), "arena index out of bounds");
        let shared = self.base_len();
        let i = if i < shared {
            self.privatize();
            i
        } else {
            i - shared
        };
        let n = self.tokens.len();
        self.tokens.remove(i);
        let d = self.head_dim;
        self.keys.copy_within((i + 1) * d.., i * d);
        self.keys.truncate((n - 1) * d);
        self.values.copy_within((i + 1) * d.., i * d);
        self.values.truncate((n - 1) * d);
    }

    /// Removes the entry holding `token`, if present.  Returns whether an
    /// entry was removed.
    pub fn remove_token(&mut self, token: TokenId) -> bool {
        match self.position(token) {
            Some(i) => {
                self.remove_at(i);
                true
            }
            None => false,
        }
    }

    /// Drops all entries (private capacity is retained for reuse; a shared
    /// base reference is released).
    pub fn clear(&mut self) {
        self.base = None;
        self.tokens.clear();
        self.keys.clear();
        self.values.clear();
    }

    /// Logical FP16 footprint of the *live* entries: `stride × live entries ×
    /// 2 vectors × 2 bytes`.  Deliberately independent of the buffers'
    /// retained capacity — retired slots cost nothing (the
    /// `CacheStats::bytes_fp16` contract).  Adopted shared entries are
    /// included; use [`shared_bytes_fp16`](KvArena::shared_bytes_fp16) /
    /// [`private_bytes_fp16`](KvArena::private_bytes_fp16) for the split.
    pub fn bytes_fp16(&self) -> usize {
        self.len() * 2 * self.head_dim * FP16_BYTES
    }

    /// FP16 footprint of the adopted shared entries (counted by every
    /// attached session; the dedup accounting happens at the ledger level,
    /// which charges the published copy once).
    pub fn shared_bytes_fp16(&self) -> usize {
        self.base_len() * 2 * self.head_dim * FP16_BYTES
    }

    /// FP16 footprint of the private tail entries.
    pub fn private_bytes_fp16(&self) -> usize {
        self.tokens.len() * 2 * self.head_dim * FP16_BYTES
    }
}

/// A keyed collection of [`KvArena`]s, one per `(layer, head)`, with lazy
/// creation at a fixed stride.  Thin convenience wrapper shared by the cache
/// policies.
#[derive(Debug, Clone, Default)]
pub struct ArenaGrid {
    arenas: FastHashMap<(usize, usize), KvArena>,
}

impl ArenaGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        ArenaGrid::default()
    }

    /// The arena for `(layer, head)`, if any entries were ever inserted.
    pub fn get(&self, layer: usize, head: usize) -> Option<&KvArena> {
        self.arenas.get(&(layer, head))
    }

    /// Mutable access to the arena for `(layer, head)`, if present.
    pub fn get_mut(&mut self, layer: usize, head: usize) -> Option<&mut KvArena> {
        self.arenas.get_mut(&(layer, head))
    }

    /// The arena for `(layer, head)`, created at `head_dim` stride on first
    /// use.
    pub fn get_or_create(&mut self, layer: usize, head: usize, head_dim: usize) -> &mut KvArena {
        self.arenas
            .entry((layer, head))
            .or_insert_with(|| KvArena::new(head_dim))
    }

    /// Iterates over all arenas.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &KvArena)> {
        self.arenas.iter()
    }

    /// The `(layer, head)` keys present in the grid.
    pub fn keys(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.arenas.keys().copied()
    }

    /// Total live entries across all arenas.
    pub fn total_entries(&self) -> usize {
        self.arenas.values().map(KvArena::len).sum()
    }

    /// Total logical FP16 footprint across all arenas (live entries only).
    pub fn bytes_fp16(&self) -> usize {
        self.arenas.values().map(KvArena::bytes_fp16).sum()
    }

    /// FP16 footprint currently served from shared bases across all arenas.
    pub fn shared_bytes_fp16(&self) -> usize {
        self.arenas.values().map(KvArena::shared_bytes_fp16).sum()
    }

    /// FP16 footprint of privately stored entries across all arenas.
    pub fn private_bytes_fp16(&self) -> usize {
        self.arenas.values().map(KvArena::private_bytes_fp16).sum()
    }

    /// Opens this grid over a shared prefix base: for every `(layer, head)`
    /// the base covers, an empty arena is created (at the base stride) and
    /// attached, so the upcoming prefix replay adopts the shared entries
    /// zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if any covered arena already holds entries (sharing can only be
    /// attached to a fresh cache).
    pub fn attach_base(&mut self, shared: &SharedKv) {
        for (layer, head) in shared.grid.keys() {
            let stride = shared
                .grid
                .get(layer, head)
                .expect("key just listed")
                .head_dim();
            self.get_or_create(layer, head, stride)
                .set_base(shared, layer, head);
        }
    }
}

/// Slot-recycling storage for per-layer input vectors (`x`, length
/// `channels`), used by AERP's recomputation format.
///
/// Removing a token pushes its slot onto a free list instead of freeing the
/// backing memory, so steady-state insert/evict churn performs no heap
/// traffic at all once the slab has warmed up to the policy budget.
#[derive(Debug, Clone, Default)]
pub struct InputSlab {
    width: usize,
    data: Vec<f32>,
    index: FastHashMap<TokenId, usize>,
    free: Vec<usize>,
}

impl InputSlab {
    /// Creates an empty slab for vectors of length `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "slab width must be non-zero");
        InputSlab {
            width,
            data: Vec::new(),
            index: FastHashMap::default(),
            free: Vec::new(),
        }
    }

    /// The vector length the slab stores.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `token` is stored.
    pub fn contains(&self, token: TokenId) -> bool {
        self.index.contains_key(&token)
    }

    /// Stores (or overwrites) the vector for `token`.
    ///
    /// # Panics
    ///
    /// Panics if `x` length differs from the slab width.
    pub fn insert(&mut self, token: TokenId, x: &[f32]) {
        assert_eq!(x.len(), self.width, "input length must match slab width");
        let slot = match self.index.get(&token) {
            Some(&slot) => slot,
            None => {
                let slot = self.free.pop().unwrap_or_else(|| {
                    let slot = self.data.len() / self.width;
                    self.data.resize(self.data.len() + self.width, 0.0);
                    slot
                });
                self.index.insert(token, slot);
                slot
            }
        };
        self.data[slot * self.width..(slot + 1) * self.width].copy_from_slice(x);
    }

    /// Borrows the vector stored for `token`, if present.
    pub fn get(&self, token: TokenId) -> Option<&[f32]> {
        self.index
            .get(&token)
            .map(|&slot| &self.data[slot * self.width..(slot + 1) * self.width])
    }

    /// Removes `token`, recycling its slot.  Returns whether it was present.
    pub fn remove(&mut self, token: TokenId) -> bool {
        match self.index.remove(&token) {
            Some(slot) => {
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Logical FP16 footprint of the live entries (`width × live entries × 2
    /// bytes`), independent of recycled-slot capacity.
    pub fn bytes_fp16(&self) -> usize {
        self.len() * self.width * FP16_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with(entries: &[(TokenId, f32)]) -> KvArena {
        let mut arena = KvArena::new(4);
        for &(t, v) in entries {
            arena.push(t, &[v; 4], &[-v; 4]);
        }
        arena
    }

    fn tokens_of(arena: &KvArena) -> Vec<TokenId> {
        arena.iter_tokens().collect()
    }

    /// A shared base holding `entries` at (layer 0, head 0).
    fn shared_base(entries: &[(TokenId, f32)]) -> SharedKv {
        let mut grid = ArenaGrid::new();
        for &(t, v) in entries {
            grid.get_or_create(0, 0, 4).push(t, &[v; 4], &[-v; 4]);
        }
        SharedKv {
            grid: Arc::new(grid),
            layers: 1,
            heads: 1,
            head_dim: 4,
            tokens: entries.len(),
        }
    }

    #[test]
    fn push_and_borrow() {
        let arena = arena_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(arena.len(), 3);
        assert_eq!(tokens_of(&arena), &[0, 1, 2]);
        assert_eq!(arena.key(1), &[2.0; 4]);
        assert_eq!(arena.value(2), &[-3.0; 4]);
    }

    #[test]
    fn remove_preserves_order() {
        let mut arena = arena_with(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
        arena.remove_at(1);
        assert_eq!(tokens_of(&arena), &[0, 2, 3]);
        assert_eq!(arena.key(1), &[3.0; 4]);
        assert_eq!(arena.value(2), &[-4.0; 4]);
        assert!(arena.remove_token(3));
        assert!(!arena.remove_token(99));
        assert_eq!(tokens_of(&arena), &[0, 2]);
    }

    #[test]
    fn adoption_serves_shared_entries_by_reference() {
        let shared = shared_base(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let mut arena = KvArena::new(4);
        arena.set_base(&shared, 0, 0);
        // Replaying identical pushes adopts instead of copying.
        for &(t, v) in &[(0usize, 1.0f32), (1, 2.0), (2, 3.0)] {
            arena.push(t, &[v; 4], &[-v; 4]);
        }
        assert_eq!(arena.len(), 3);
        assert!(arena.is_shared());
        assert_eq!(arena.shared_bytes_fp16(), 3 * 2 * 4 * 2);
        assert_eq!(arena.private_bytes_fp16(), 0);
        // Reads alias the shared grid.
        let base_key = shared.grid.get(0, 0).unwrap().key(1).as_ptr();
        assert_eq!(arena.key(1).as_ptr(), base_key);
        // Fresh pushes after the base is exhausted go to the private tail
        // without ending the sharing.
        arena.push(3, &[9.0; 4], &[-9.0; 4]);
        assert_eq!(tokens_of(&arena), &[0, 1, 2, 3]);
        assert!(arena.is_shared());
        assert_eq!(arena.private_bytes_fp16(), 2 * 4 * 2);
        assert_eq!(
            arena.bytes_fp16(),
            arena.shared_bytes_fp16() + arena.private_bytes_fp16()
        );
    }

    #[test]
    fn diverging_push_ends_adoption_without_copying() {
        let shared = shared_base(&[(0, 1.0), (1, 2.0)]);
        let mut arena = KvArena::new(4);
        arena.set_base(&shared, 0, 0);
        arena.push(0, &[1.0; 4], &[-1.0; 4]);
        // Same token, different payload (e.g. a quantizing policy): the push
        // is stored privately and adoption stops at one entry.
        arena.push(1, &[2.5; 4], &[-2.0; 4]);
        assert_eq!(tokens_of(&arena), &[0, 1]);
        assert_eq!(arena.shared_bytes_fp16(), 2 * 4 * 2);
        assert_eq!(arena.key(1), &[2.5; 4]);
    }

    #[test]
    fn eviction_inside_shared_region_privatizes() {
        let shared = shared_base(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let mut arena = KvArena::new(4);
        arena.set_base(&shared, 0, 0);
        for &(t, v) in &[(0usize, 1.0f32), (1, 2.0), (2, 3.0)] {
            arena.push(t, &[v; 4], &[-v; 4]);
        }
        arena.push(3, &[4.0; 4], &[-4.0; 4]);
        // Copy-on-evict: removing a shared entry privatizes first.
        assert!(arena.remove_token(1));
        assert!(!arena.is_shared());
        assert_eq!(arena.shared_bytes_fp16(), 0);
        assert_eq!(tokens_of(&arena), &[0, 2, 3]);
        assert_eq!(arena.key(1), &[3.0; 4]);
        assert_eq!(arena.value(2), &[-4.0; 4]);
        // The shared copy itself is untouched.
        assert_eq!(shared.grid.get(0, 0).unwrap().len(), 3);
        assert_eq!(shared.grid.get(0, 0).unwrap().key(1), &[2.0; 4]);
    }

    #[test]
    fn tail_eviction_keeps_sharing() {
        let shared = shared_base(&[(0, 1.0), (1, 2.0)]);
        let mut arena = KvArena::new(4);
        arena.set_base(&shared, 0, 0);
        arena.push(0, &[1.0; 4], &[-1.0; 4]);
        arena.push(1, &[2.0; 4], &[-2.0; 4]);
        arena.push(5, &[5.0; 4], &[-5.0; 4]);
        arena.push(6, &[6.0; 4], &[-6.0; 4]);
        // Evicting from the private tail never touches the shared region.
        assert!(arena.remove_token(5));
        assert!(arena.is_shared());
        assert_eq!(tokens_of(&arena), &[0, 1, 6]);
        assert_eq!(arena.shared_bytes_fp16(), 2 * 2 * 4 * 2);
    }

    #[test]
    fn clear_releases_base() {
        let shared = shared_base(&[(0, 1.0)]);
        let mut arena = KvArena::new(4);
        arena.set_base(&shared, 0, 0);
        arena.push(0, &[1.0; 4], &[-1.0; 4]);
        assert_eq!(Arc::strong_count(&shared.grid), 2);
        arena.clear();
        assert_eq!(Arc::strong_count(&shared.grid), 1);
        assert!(arena.is_empty());
    }

    #[test]
    fn grid_attach_base_covers_all_keys() {
        let mut base_grid = ArenaGrid::new();
        base_grid
            .get_or_create(0, 0, 4)
            .push(0, &[1.0; 4], &[2.0; 4]);
        base_grid
            .get_or_create(1, 1, 4)
            .push(0, &[3.0; 4], &[4.0; 4]);
        let shared = SharedKv {
            grid: Arc::new(base_grid),
            layers: 2,
            heads: 2,
            head_dim: 4,
            tokens: 1,
        };
        let mut grid = ArenaGrid::new();
        grid.attach_base(&shared);
        grid.get_mut(0, 0).unwrap().push(0, &[1.0; 4], &[2.0; 4]);
        grid.get_mut(1, 1).unwrap().push(0, &[3.0; 4], &[4.0; 4]);
        assert_eq!(grid.shared_bytes_fp16(), 2 * 2 * 4 * 2);
        assert_eq!(grid.private_bytes_fp16(), 0);
        assert_eq!(grid.total_entries(), 2);
    }

    #[test]
    fn bytes_reflect_live_entries_not_capacity() {
        let mut arena = arena_with(&[]);
        for t in 0..100 {
            arena.push(t, &[0.5; 4], &[0.5; 4]);
        }
        while arena.len() > 4 {
            arena.remove_at(0);
        }
        // 4 entries × 2 vectors × 4 elements × 2 bytes, regardless of the
        // capacity the buffers retain from their 100-entry peak.
        assert_eq!(arena.bytes_fp16(), 4 * 2 * 4 * 2);
        assert!(arena.keys.capacity() >= 100 * 4);
    }

    #[test]
    fn grid_lazily_creates() {
        let mut grid = ArenaGrid::new();
        assert!(grid.get(0, 0).is_none());
        grid.get_or_create(0, 0, 4).push(7, &[1.0; 4], &[2.0; 4]);
        assert_eq!(grid.get(0, 0).unwrap().len(), 1);
        assert_eq!(grid.total_entries(), 1);
        assert_eq!(grid.bytes_fp16(), 2 * 4 * 2);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut slab = InputSlab::new(3);
        slab.insert(0, &[1.0, 2.0, 3.0]);
        slab.insert(1, &[4.0, 5.0, 6.0]);
        assert_eq!(slab.get(0), Some(&[1.0, 2.0, 3.0][..]));
        assert!(slab.remove(0));
        assert!(!slab.remove(0));
        let backing = slab.data.len();
        slab.insert(2, &[7.0, 8.0, 9.0]);
        // Token 2 reused token 0's slot; the backing store did not grow.
        assert_eq!(slab.data.len(), backing);
        assert_eq!(slab.get(2), Some(&[7.0, 8.0, 9.0][..]));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.bytes_fp16(), 2 * 3 * 2);
    }

    #[test]
    fn slab_overwrite_keeps_one_slot() {
        let mut slab = InputSlab::new(2);
        slab.insert(5, &[1.0, 1.0]);
        slab.insert(5, &[2.0, 2.0]);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(5), Some(&[2.0, 2.0][..]));
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        KvArena::new(0);
    }
}
