//! The surrogate decoder stack.
//!
//! [`SurrogateModel`] composes the embedding table, a stack of
//! [`DecoderLayer`]s (pre-norm attention + gated-MLP FFN, the Llama-style
//! block structure described in §2.1) and a tied LM head.  All KV-cache
//! traffic goes through the [`KvCacheBackend`] passed by the caller, and all
//! cache reads pass through the [`FaultInjector`], so accuracy experiments can
//! swap policies and corruption models without touching the model code.
//!
//! The hot entry points ([`DecoderLayer::forward_with`],
//! [`SurrogateModel::forward_token_with`]) mutate the residual stream in
//! place and stage every intermediate in a caller-owned [`DecodeScratch`], so
//! steady-state decoding allocates nothing.  The `*_via_entries` variants
//! preserve the historical allocate-everything implementation as the bitwise
//! reference (see [`crate::attention`]).

use crate::attention::{DecodeScratch, MultiHeadAttention};
use crate::cache::{KvCacheBackend, TokenId};
use crate::config::{ModelConfig, SurrogateDims};
use crate::fault::FaultInjector;
use crate::weights::{LayerWeights, ModelWeights, WeightGenConfig};
use kelle_tensor::ops;

/// A single decoder layer: pre-norm self-attention followed by a pre-norm
/// gated-MLP FFN, both with residual connections.
#[derive(Debug)]
pub struct DecoderLayer<'w> {
    weights: &'w LayerWeights,
    heads: usize,
}

impl<'w> DecoderLayer<'w> {
    /// Binds a layer to its weights.
    pub fn new(weights: &'w LayerWeights, heads: usize) -> Self {
        DecoderLayer { weights, heads }
    }

    /// Runs the layer for one token through the reusable `scratch`, updating
    /// the residual stream `hidden` in place.
    ///
    /// Returns `(recomputed_entries, kv_entries_read)`; the per-head
    /// attention labels of the step remain available in
    /// [`DecodeScratch::attention_labels`].
    #[allow(clippy::too_many_arguments)] // the decode-step contract: position + data + 3 collaborators
    pub fn forward_with(
        &self,
        layer_index: usize,
        token: TokenId,
        position: usize,
        hidden: &mut [f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
        scratch: &mut DecodeScratch,
    ) -> (usize, usize) {
        let attn = MultiHeadAttention::new(self.weights, self.heads);

        // `normed` is taken out of the scratch for the duration of the
        // attention call (which needs `&mut scratch` alongside the normalized
        // input) and restored afterwards; the buffer itself is reused across
        // steps either way.
        let mut normed = std::mem::take(&mut scratch.normed);
        ops::rms_norm_into(hidden, &self.weights.attn_norm, 1e-5, &mut normed);
        let counters = attn.forward_with(
            layer_index,
            token,
            position,
            &normed,
            cache,
            faults,
            scratch,
        );
        for (r, a) in hidden.iter_mut().zip(scratch.attn_out.iter()) {
            *r += a;
        }

        ops::rms_norm_into(hidden, &self.weights.ffn_norm, 1e-5, &mut normed);
        self.weights
            .w_gate
            .matvec_into(&normed, &mut scratch.gate)
            .expect("ffn input matches channel dimension");
        self.weights
            .w_up
            .matvec_into(&normed, &mut scratch.up)
            .expect("ffn input matches channel dimension");
        for (g, u) in scratch.gate.iter_mut().zip(scratch.up.iter()) {
            *g = ops::silu(*g) * u;
        }
        self.weights
            .w_down
            .matvec_into(&scratch.gate, &mut scratch.ffn)
            .expect("gated activation matches ffn dimension");
        for (r, d) in hidden.iter_mut().zip(scratch.ffn.iter()) {
            *r += d;
        }
        scratch.normed = normed;

        counters
    }

    /// [`forward_with`](DecoderLayer::forward_with) with the per-head
    /// attention work and the row space of the FFN projections fanned out
    /// across `runner` — bit-identical by construction (independent output
    /// rows; shared per-head pass; see
    /// [`MultiHeadAttention::forward_with_runner`]).
    #[allow(clippy::too_many_arguments)] // the decode-step contract + the runner
    pub fn forward_with_runner(
        &self,
        layer_index: usize,
        token: TokenId,
        position: usize,
        hidden: &mut [f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
        scratch: &mut DecodeScratch,
        runner: &dyn kelle_tensor::par::ParallelRunner,
    ) -> (usize, usize) {
        let attn = MultiHeadAttention::new(self.weights, self.heads);

        let mut normed = std::mem::take(&mut scratch.normed);
        ops::rms_norm_into(hidden, &self.weights.attn_norm, 1e-5, &mut normed);
        let counters = attn.forward_with_runner(
            layer_index,
            token,
            position,
            &normed,
            cache,
            faults,
            scratch,
            runner,
        );
        for (r, a) in hidden.iter_mut().zip(scratch.attn_out.iter()) {
            *r += a;
        }

        ops::rms_norm_into(hidden, &self.weights.ffn_norm, 1e-5, &mut normed);
        self.weights
            .w_gate
            .matvec_into_par(&normed, &mut scratch.gate, runner)
            .expect("ffn input matches channel dimension");
        self.weights
            .w_up
            .matvec_into_par(&normed, &mut scratch.up, runner)
            .expect("ffn input matches channel dimension");
        for (g, u) in scratch.gate.iter_mut().zip(scratch.up.iter()) {
            *g = ops::silu(*g) * u;
        }
        self.weights
            .w_down
            .matvec_into_par(&scratch.gate, &mut scratch.ffn, runner)
            .expect("gated activation matches ffn dimension");
        for (r, d) in hidden.iter_mut().zip(scratch.ffn.iter()) {
            *r += d;
        }
        scratch.normed = normed;

        counters
    }

    /// Runs the layer for one token, reading and updating the KV cache.
    ///
    /// Returns the residual-stream output and the per-head attention
    /// probabilities (for importance tracking by callers that need them).
    /// Allocating convenience wrapper over
    /// [`forward_with`](DecoderLayer::forward_with).
    pub fn forward(
        &self,
        layer_index: usize,
        token: TokenId,
        position: usize,
        hidden: &[f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
    ) -> LayerStep {
        let mut scratch = DecodeScratch::new();
        let mut out = hidden.to_vec();
        let (recomputed_entries, kv_entries_read) = self.forward_with(
            layer_index,
            token,
            position,
            &mut out,
            cache,
            faults,
            &mut scratch,
        );
        LayerStep {
            hidden: out,
            attention: scratch.attention,
            recomputed_entries,
            kv_entries_read,
        }
    }

    /// The historical allocate-everything layer forward, driving attention
    /// through the materializing [`entries`](KvCacheBackend::entries)
    /// adapter.  Reference implementation for equivalence tests and the
    /// decode benchmark baseline.
    pub fn forward_via_entries(
        &self,
        layer_index: usize,
        token: TokenId,
        position: usize,
        hidden: &[f32],
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
    ) -> LayerStep {
        let normed = ops::rms_norm(hidden, &self.weights.attn_norm, 1e-5);
        let attn = MultiHeadAttention::new(self.weights, self.heads);
        let attn_out =
            attn.forward_via_entries(layer_index, token, position, &normed, cache, faults);

        let mut residual: Vec<f32> = hidden
            .iter()
            .zip(attn_out.output.iter())
            .map(|(h, a)| h + a)
            .collect();

        let ffn_in = ops::rms_norm(&residual, &self.weights.ffn_norm, 1e-5);
        let gate = self
            .weights
            .w_gate
            .matvec(&ffn_in)
            .expect("ffn input matches channel dimension");
        let up = self
            .weights
            .w_up
            .matvec(&ffn_in)
            .expect("ffn input matches channel dimension");
        let gated: Vec<f32> = gate
            .iter()
            .zip(up.iter())
            .map(|(g, u)| ops::silu(*g) * u)
            .collect();
        let down = self
            .weights
            .w_down
            .matvec(&gated)
            .expect("gated activation matches ffn dimension");
        for (r, d) in residual.iter_mut().zip(down.iter()) {
            *r += d;
        }

        LayerStep {
            hidden: residual,
            attention: attn_out.attention,
            recomputed_entries: attn_out.recomputed_entries,
            kv_entries_read: attn_out.kv_entries_read,
        }
    }
}

/// Output of one decoder layer for one token.
#[derive(Debug, Clone)]
pub struct LayerStep {
    /// Residual-stream output.
    pub hidden: Vec<f32>,
    /// Per-head post-softmax attention probabilities.
    pub attention: Vec<Vec<(TokenId, f32)>>,
    /// Cache entries recomputed from stored inputs during this step.
    pub recomputed_entries: usize,
    /// Cache entries read directly as KV vectors during this step.
    pub kv_entries_read: usize,
}

/// Aggregate per-token forward-pass statistics across all layers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardStats {
    /// Total recomputed cache entries across layers.
    pub recomputed_entries: usize,
    /// Total KV entries read across layers.
    pub kv_entries_read: usize,
}

/// The complete surrogate model.
#[derive(Debug)]
pub struct SurrogateModel {
    config: ModelConfig,
    weights: ModelWeights,
}

impl SurrogateModel {
    /// Builds a surrogate model for the given configuration, generating
    /// deterministic structured weights from `seed`.
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        let weights = ModelWeights::generate(&config.surrogate, &WeightGenConfig::default(), seed);
        SurrogateModel { config, weights }
    }

    /// Builds a surrogate model with explicit weight-generation options.
    pub fn with_weight_config(config: ModelConfig, gen: &WeightGenConfig, seed: u64) -> Self {
        let weights = ModelWeights::generate(&config.surrogate, gen, seed);
        SurrogateModel { config, weights }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The surrogate dimensions actually simulated.
    pub fn dims(&self) -> &SurrogateDims {
        &self.config.surrogate
    }

    /// Access to the generated weights (used by tests and by policies that
    /// need the projection matrices for recomputation-cost accounting).
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Runs the full decoder stack for one token through the reusable
    /// `scratch`, leaving the logits over the surrogate vocabulary in
    /// [`DecodeScratch::logits`] and returning the forward-pass statistics.
    ///
    /// `token` is the vocabulary id of the input token, `position` its
    /// sequence position (which doubles as the [`TokenId`] used by caches).
    /// This is the allocation-free hot path; steady-state decoding performs
    /// no heap allocation inside this call.
    pub fn forward_token_with(
        &self,
        token: usize,
        position: usize,
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
        scratch: &mut DecodeScratch,
    ) -> ForwardStats {
        let dims = &self.config.surrogate;
        let mut hidden = std::mem::take(&mut scratch.hidden);
        self.weights
            .embed_into(token % dims.vocab, position, &mut hidden);
        let mut stats = ForwardStats::default();
        for (layer_index, layer_weights) in self.weights.layers.iter().enumerate() {
            let layer = DecoderLayer::new(layer_weights, dims.heads);
            let (recomputed, read) = layer.forward_with(
                layer_index,
                position,
                position,
                &mut hidden,
                cache,
                faults,
                scratch,
            );
            stats.recomputed_entries += recomputed;
            stats.kv_entries_read += read;
        }
        let mut normed = std::mem::take(&mut scratch.normed);
        ops::rms_norm_into(&hidden, &self.weights.final_norm, 1e-5, &mut normed);
        self.weights
            .embedding
            .matvec_into(&normed, &mut scratch.logits)
            .expect("hidden state matches channel dimension");
        scratch.normed = normed;
        scratch.hidden = hidden;
        stats
    }

    /// [`forward_token_with`](SurrogateModel::forward_token_with) with every
    /// layer's attention heads and projection rows (including the LM head)
    /// fanned out across `runner`.
    ///
    /// Logits, cache state and fault statistics are bit-identical to the
    /// sequential pass for any lane count: output rows are independent dot
    /// products, heads run the shared per-head sequence against per-`(layer,
    /// head)` fault lanes, and observes replay in head order.  Unlike the
    /// sequential path this allocates per call (job boxes); single-lane
    /// runners fall through to the allocation-free sequential code.
    pub fn forward_token_with_runner(
        &self,
        token: usize,
        position: usize,
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
        scratch: &mut DecodeScratch,
        runner: &dyn kelle_tensor::par::ParallelRunner,
    ) -> ForwardStats {
        let dims = &self.config.surrogate;
        let mut hidden = std::mem::take(&mut scratch.hidden);
        self.weights
            .embed_into(token % dims.vocab, position, &mut hidden);
        let mut stats = ForwardStats::default();
        for (layer_index, layer_weights) in self.weights.layers.iter().enumerate() {
            let layer = DecoderLayer::new(layer_weights, dims.heads);
            let (recomputed, read) = layer.forward_with_runner(
                layer_index,
                position,
                position,
                &mut hidden,
                cache,
                faults,
                scratch,
                runner,
            );
            stats.recomputed_entries += recomputed;
            stats.kv_entries_read += read;
        }
        let mut normed = std::mem::take(&mut scratch.normed);
        ops::rms_norm_into(&hidden, &self.weights.final_norm, 1e-5, &mut normed);
        self.weights
            .embedding
            .matvec_into_par(&normed, &mut scratch.logits, runner)
            .expect("hidden state matches channel dimension");
        scratch.normed = normed;
        scratch.hidden = hidden;
        stats
    }

    /// Runs the full decoder stack for one token and returns the logits over
    /// the surrogate vocabulary plus forward-pass statistics.
    ///
    /// Allocating convenience wrapper over
    /// [`forward_token_with`](SurrogateModel::forward_token_with); resumable
    /// callers hold a [`DecodeScratch`] (via
    /// [`GenerationState`](crate::generation::GenerationState)) instead.
    pub fn forward_token(
        &self,
        token: usize,
        position: usize,
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
    ) -> (Vec<f32>, ForwardStats) {
        let mut scratch = DecodeScratch::new();
        let stats = self.forward_token_with(token, position, cache, faults, &mut scratch);
        (scratch.logits, stats)
    }

    /// The historical allocate-everything forward pass through the
    /// materializing entries adapter; reference for equivalence tests and the
    /// decode benchmark baseline.
    pub fn forward_token_via_entries(
        &self,
        token: usize,
        position: usize,
        cache: &mut dyn KvCacheBackend,
        faults: &mut dyn FaultInjector,
    ) -> (Vec<f32>, ForwardStats) {
        let dims = &self.config.surrogate;
        let mut hidden = self.weights.embed(token % dims.vocab, position);
        let mut stats = ForwardStats::default();
        for (layer_index, layer_weights) in self.weights.layers.iter().enumerate() {
            let layer = DecoderLayer::new(layer_weights, dims.heads);
            let step =
                layer.forward_via_entries(layer_index, position, position, &hidden, cache, faults);
            hidden = step.hidden;
            stats.recomputed_entries += step.recomputed_entries;
            stats.kv_entries_read += step.kv_entries_read;
        }
        let final_hidden = ops::rms_norm(&hidden, &self.weights.final_norm, 1e-5);
        let logits = self
            .weights
            .embedding
            .matvec(&final_hidden)
            .expect("hidden state matches channel dimension");
        (logits, stats)
    }

    /// Greedy next-token choice from logits.
    pub fn argmax(logits: &[f32]) -> usize {
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Softmax distribution over the vocabulary from logits.
    pub fn probabilities(logits: &[f32]) -> Vec<f32> {
        ops::softmax(logits)
    }

    /// [`probabilities`](SurrogateModel::probabilities) into a caller-owned
    /// buffer (cleared and refilled), for callers that consume the
    /// distribution in place — e.g. throughput measurement loops that would
    /// otherwise pay one vocabulary-sized allocation per decoded token.
    pub fn probabilities_into(logits: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(logits);
        ops::softmax_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::FullKvCache;
    use crate::config::{ModelKind, SurrogateDims};
    use crate::fault::NoFaults;

    fn small_config() -> ModelConfig {
        ModelConfig::for_kind(ModelKind::Llama2_7b).with_surrogate(SurrogateDims {
            layers: 2,
            heads: 4,
            channels: 32,
            ffn_dim: 64,
            vocab: 96,
        })
    }

    #[test]
    fn forward_produces_vocab_sized_logits() {
        let model = SurrogateModel::new(small_config(), 9);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let (logits, stats) = model.forward_token(5, 0, &mut cache, &mut faults);
        assert_eq!(logits.len(), 96);
        assert_eq!(stats.kv_entries_read, 2 * 4); // layers * heads, one token each
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn forward_is_deterministic() {
        let model = SurrogateModel::new(small_config(), 9);
        let run = || {
            let mut cache = FullKvCache::new();
            let mut faults = NoFaults;
            let mut last = Vec::new();
            for (pos, tok) in [3usize, 17, 42, 8].iter().enumerate() {
                let (logits, _) = model.forward_token(*tok, pos, &mut cache, &mut faults);
                last = logits;
            }
            last
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_prefixes_give_different_logits() {
        let model = SurrogateModel::new(small_config(), 9);
        let run = |prefix: &[usize]| {
            let mut cache = FullKvCache::new();
            let mut faults = NoFaults;
            let mut last = Vec::new();
            for (pos, tok) in prefix.iter().enumerate() {
                let (logits, _) = model.forward_token(*tok, pos, &mut cache, &mut faults);
                last = logits;
            }
            last
        };
        let a = run(&[1, 2, 3, 4]);
        let b = run(&[9, 8, 7, 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn cache_grows_with_sequence() {
        let model = SurrogateModel::new(small_config(), 9);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        for pos in 0..6 {
            model.forward_token(pos, pos, &mut cache, &mut faults);
        }
        // 2 layers * 4 heads * 6 tokens
        assert_eq!(cache.stats().kv_entries, 48);
    }

    #[test]
    fn scratch_path_matches_via_entries_bitwise() {
        let model = SurrogateModel::new(small_config(), 9);
        let tokens = [3usize, 17, 42, 8, 61];
        let run = |fused: bool| -> Vec<u32> {
            let mut cache = FullKvCache::new();
            let mut faults = NoFaults;
            let mut scratch = DecodeScratch::new();
            let mut last = Vec::new();
            for (pos, tok) in tokens.iter().enumerate() {
                if fused {
                    model.forward_token_with(*tok, pos, &mut cache, &mut faults, &mut scratch);
                    last = scratch.logits().to_vec();
                } else {
                    last = model
                        .forward_token_via_entries(*tok, pos, &mut cache, &mut faults)
                        .0;
                }
            }
            last.iter().map(|f| f.to_bits()).collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn argmax_and_probabilities() {
        let logits = vec![0.1, 2.0, -1.0];
        assert_eq!(SurrogateModel::argmax(&logits), 1);
        let probs = SurrogateModel::probabilities(&logits);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
