//! Surrogate weight generation.
//!
//! The surrogate model's weights are synthetic but *structured*: they are
//! drawn so that the resulting attention-score distributions exhibit the two
//! empirical properties the paper's algorithms rely on:
//!
//! 1. **Heavy-hitter concentration** — a small subset of tokens accumulates a
//!    disproportionate share of attention mass (the basis of H2O and of AERP's
//!    importance-score eviction).  This is achieved by sharpening the query/key
//!    projections (larger singular values → peakier softmax) and by embedding a
//!    low-rank "topic" component shared across positions.
//! 2. **Attention sinks** — the first few tokens receive consistently high
//!    attention (the basis of StreamingLLM's sink-token retention).  This is
//!    achieved with a learned-looking bias added to the key projection of
//!    early positions via a dedicated sink direction in embedding space.
//!
//! Weight generation is fully deterministic given a seed.

use crate::config::SurrogateDims;
use kelle_tensor::rng::{self, fill_xavier};
use kelle_tensor::Matrix;

/// Weights of a single decoder layer of the surrogate model.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection, `channels x channels`.
    pub wq: Matrix,
    /// Key projection, `channels x channels`.
    pub wk: Matrix,
    /// Value projection, `channels x channels`.
    pub wv: Matrix,
    /// Output projection, `channels x channels`.
    pub wo: Matrix,
    /// FFN gate projection, `ffn_dim x channels`.
    pub w_gate: Matrix,
    /// FFN up projection, `ffn_dim x channels`.
    pub w_up: Matrix,
    /// FFN down projection, `channels x ffn_dim`.
    pub w_down: Matrix,
    /// RMSNorm gain before attention, length `channels`.
    pub attn_norm: Vec<f32>,
    /// RMSNorm gain before the FFN, length `channels`.
    pub ffn_norm: Vec<f32>,
}

/// All weights of the surrogate model.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Token embedding table, `vocab x channels` (also used, transposed, as the
    /// LM head — weight tying).
    pub embedding: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// The "sink" direction in embedding space: token 0's embedding is pushed
    /// along this direction so that keys of early tokens align with all queries.
    pub sink_direction: Vec<f32>,
}

/// Controls the statistical structure of generated weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightGenConfig {
    /// Multiplier on the key projection that sharpens attention score spread.
    /// 1.0 gives near-uniform attention; 2.5–4.0 gives realistic heavy tails.
    pub attention_sharpness: f32,
    /// Strength of the attention-sink component added to early-token keys.
    pub sink_strength: f32,
    /// Rank of the shared low-rank "topic" component in `W_K`/`W_Q`.
    pub topic_rank: usize,
}

impl Default for WeightGenConfig {
    fn default() -> Self {
        WeightGenConfig {
            attention_sharpness: 3.0,
            sink_strength: 2.0,
            topic_rank: 4,
        }
    }
}

fn random_matrix(rows: usize, cols: usize, rng: &mut rng::DetRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols).expect("surrogate dims are non-zero");
    fill_xavier(rng, m.as_mut_slice(), cols);
    m
}

/// Adds a shared low-rank component `scale * U V^T` to `target`, where `U` and
/// `V` are sampled from `rng`.  This correlates query and key spaces so that a
/// few directions dominate the score computation, producing heavy-tailed
/// attention distributions.
fn add_low_rank(target: &mut Matrix, rank: usize, scale: f32, rng: &mut rng::DetRng) {
    let (rows, cols) = target.shape();
    for _ in 0..rank {
        let u: Vec<f32> = (0..rows).map(|_| rng::standard_normal(rng)).collect();
        let v: Vec<f32> = (0..cols).map(|_| rng::standard_normal(rng)).collect();
        let norm = (rows as f32).sqrt() * (cols as f32).sqrt();
        for (r, &u_r) in u.iter().enumerate() {
            for (c, &v_c) in v.iter().enumerate() {
                let val = target.get(r, c) + scale * u_r * v_c / norm;
                target.set(r, c, val);
            }
        }
    }
}

impl ModelWeights {
    /// Generates surrogate weights deterministically from `seed`.
    pub fn generate(dims: &SurrogateDims, config: &WeightGenConfig, seed: u64) -> Self {
        let mut layers = Vec::with_capacity(dims.layers);
        for layer in 0..dims.layers {
            let mut lrng = rng::substream(seed, &format!("layer-{layer}"));
            let wq_base = random_matrix(dims.channels, dims.channels, &mut lrng);
            let mut wq = wq_base.scaled(config.attention_sharpness.sqrt());
            let mut wk = random_matrix(dims.channels, dims.channels, &mut lrng)
                .scaled(config.attention_sharpness.sqrt());
            // Shared low-rank topic component correlates Q and K spaces.
            let mut topic_rng = rng::substream(seed, &format!("topic-{layer}"));
            add_low_rank(
                &mut wq,
                config.topic_rank,
                config.attention_sharpness,
                &mut topic_rng,
            );
            let mut topic_rng2 = rng::substream(seed, &format!("topic-{layer}"));
            add_low_rank(
                &mut wk,
                config.topic_rank,
                config.attention_sharpness,
                &mut topic_rng2,
            );
            let wv = random_matrix(dims.channels, dims.channels, &mut lrng);
            let wo = random_matrix(dims.channels, dims.channels, &mut lrng);
            let w_gate = random_matrix(dims.ffn_dim, dims.channels, &mut lrng);
            let w_up = random_matrix(dims.ffn_dim, dims.channels, &mut lrng);
            let w_down = random_matrix(dims.channels, dims.ffn_dim, &mut lrng);
            layers.push(LayerWeights {
                wq,
                wk,
                wv,
                wo,
                w_gate,
                w_up,
                w_down,
                attn_norm: vec![1.0; dims.channels],
                ffn_norm: vec![1.0; dims.channels],
            });
        }

        let mut erng = rng::substream(seed, "embedding");
        let embedding = random_matrix(dims.vocab, dims.channels, &mut erng);
        let mut srng = rng::substream(seed, "sink");
        let sink_direction: Vec<f32> = (0..dims.channels)
            .map(|_| rng::standard_normal(&mut srng) * config.sink_strength)
            .collect();

        ModelWeights {
            embedding,
            layers,
            final_norm: vec![1.0; dims.channels],
            sink_direction,
        }
    }

    /// The embedding of a token, with the sink component applied to position 0.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn embed(&self, token: usize, position: usize) -> Vec<f32> {
        let mut x = Vec::new();
        self.embed_into(token, position, &mut x);
        x
    }

    /// [`embed`](ModelWeights::embed) into a caller-owned buffer (cleared and
    /// refilled), so the decode hot path can reuse its allocation.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn embed_into(&self, token: usize, position: usize, out: &mut Vec<f32>) {
        let row = self
            .embedding
            .row(token)
            .expect("token id within surrogate vocabulary");
        out.clear();
        out.extend_from_slice(row);
        if position == 0 {
            for (xi, s) in out.iter_mut().zip(self.sink_direction.iter()) {
                *xi += s;
            }
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> SurrogateDims {
        SurrogateDims {
            layers: 2,
            heads: 4,
            channels: 32,
            ffn_dim: 64,
            vocab: 128,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = dims();
        let a = ModelWeights::generate(&d, &WeightGenConfig::default(), 5);
        let b = ModelWeights::generate(&d, &WeightGenConfig::default(), 5);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
        assert_eq!(a.embedding, b.embedding);
    }

    #[test]
    fn different_seeds_differ() {
        let d = dims();
        let a = ModelWeights::generate(&d, &WeightGenConfig::default(), 5);
        let b = ModelWeights::generate(&d, &WeightGenConfig::default(), 6);
        assert_ne!(a.layers[0].wq, b.layers[0].wq);
    }

    #[test]
    fn layers_have_expected_shapes() {
        let d = dims();
        let w = ModelWeights::generate(&d, &WeightGenConfig::default(), 1);
        assert_eq!(w.layers.len(), 2);
        assert_eq!(w.layers[0].wq.shape(), (32, 32));
        assert_eq!(w.layers[0].w_gate.shape(), (64, 32));
        assert_eq!(w.layers[0].w_down.shape(), (32, 64));
        assert_eq!(w.embedding.shape(), (128, 32));
    }

    #[test]
    fn sink_applies_only_to_position_zero() {
        let d = dims();
        let w = ModelWeights::generate(&d, &WeightGenConfig::default(), 1);
        let at0 = w.embed(3, 0);
        let at5 = w.embed(3, 5);
        assert_ne!(at0, at5);
        let at6 = w.embed(3, 6);
        assert_eq!(at5, at6);
    }

    #[test]
    fn sharpness_increases_weight_magnitude() {
        let d = dims();
        let soft = ModelWeights::generate(
            &d,
            &WeightGenConfig {
                attention_sharpness: 1.0,
                ..WeightGenConfig::default()
            },
            1,
        );
        let sharp = ModelWeights::generate(
            &d,
            &WeightGenConfig {
                attention_sharpness: 4.0,
                ..WeightGenConfig::default()
            },
            1,
        );
        assert!(sharp.layers[0].wk.frobenius_norm() > soft.layers[0].wk.frobenius_norm());
    }
}
