//! Model architecture configurations.
//!
//! [`ModelConfig`] carries two sets of dimensions:
//!
//! * the **published** architecture of the evaluated model (layers, heads,
//!   channel size, FFN width, vocabulary) — consumed by the *hardware* model in
//!   `kelle-arch` to compute weight sizes, KV-cache footprints, MAC counts and
//!   memory traffic exactly as the real model would generate them;
//! * the **surrogate** dimensions used by the *functional* model in this crate —
//!   a scaled-down decoder whose per-head attention statistics are shaped to
//!   match the published model's behaviour (heavy-tailed scores, attention
//!   sinks), used for accuracy-style experiments (Tables 2–6, Fig. 8).
//!
//! Keeping both in one struct guarantees that the accuracy and the performance
//! experiments agree about which model they are talking about.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the LLM architectures used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModelKind {
    /// LLaMA-2 7B.
    Llama2_7b,
    /// LLaMA-2 13B.
    Llama2_13b,
    /// LLaMA-2 70B (used in the motivation study, Fig. 4 context).
    Llama2_70b,
    /// LLaMA-3 8B.
    Llama3_8b,
    /// LLaMA-3.2 3B.
    Llama3_2_3b,
    /// Mistral 7B.
    Mistral7b,
    /// Qwen2 7B.
    Qwen2_7b,
    /// OPT 6.7B.
    Opt6_7b,
}

impl ModelKind {
    /// All model kinds evaluated in Table 2.
    pub fn all() -> &'static [ModelKind] {
        &[
            ModelKind::Llama2_7b,
            ModelKind::Llama2_13b,
            ModelKind::Llama2_70b,
            ModelKind::Llama3_8b,
            ModelKind::Llama3_2_3b,
            ModelKind::Mistral7b,
            ModelKind::Qwen2_7b,
            ModelKind::Opt6_7b,
        ]
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Llama2_7b => "LLaMA2-7B",
            ModelKind::Llama2_13b => "LLaMA2-13B",
            ModelKind::Llama2_70b => "LLaMA2-70B",
            ModelKind::Llama3_8b => "LLaMA3-8B",
            ModelKind::Llama3_2_3b => "LLaMA3.2-3B",
            ModelKind::Mistral7b => "Mistral-7B",
            ModelKind::Qwen2_7b => "QWEN2-7B",
            ModelKind::Opt6_7b => "OPT-6.7B",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scaled-down dimensions used by the functional surrogate model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SurrogateDims {
    /// Number of decoder layers simulated functionally.
    pub layers: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Channel (model) dimension; must be divisible by `heads`.
    pub channels: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Vocabulary size of the surrogate token space.
    pub vocab: usize,
}

impl SurrogateDims {
    /// Per-head channel dimension.
    pub fn head_dim(&self) -> usize {
        self.channels / self.heads
    }
}

impl Default for SurrogateDims {
    fn default() -> Self {
        SurrogateDims {
            layers: 4,
            heads: 8,
            channels: 64,
            ffn_dim: 172,
            vocab: 512,
        }
    }
}

/// Which FFN flavour the model family uses (affects MAC counts and weight size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FfnKind {
    /// Standard two-matrix MLP (`up`, `down`) as in GPT/OPT.
    Mlp,
    /// Gated MLP with three matrices (`gate`, `up`, `down`) as in Llama/Mistral.
    GatedMlp,
}

/// The full architecture description of an evaluated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which published model this configuration corresponds to.
    pub kind: ModelKind,
    /// Number of transformer decoder layers.
    pub layers: usize,
    /// Number of attention (query) heads.
    pub heads: usize,
    /// Number of key/value heads (grouped-query attention when < `heads`).
    pub kv_heads: usize,
    /// Model (channel) dimension `C`.
    pub channels: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// FFN flavour.
    pub ffn_kind: FfnKind,
    /// Number of parameters, in billions (for reporting only).
    pub params_billion: f64,
    /// Surrogate dimensions used by the functional model.
    pub surrogate: SurrogateDims,
}

impl ModelConfig {
    /// Returns the configuration for a published model.
    pub fn for_kind(kind: ModelKind) -> Self {
        let surrogate = SurrogateDims::default();
        match kind {
            ModelKind::Llama2_7b => ModelConfig {
                kind,
                layers: 32,
                heads: 32,
                kv_heads: 32,
                channels: 4096,
                ffn_dim: 11_008,
                vocab: 32_000,
                ffn_kind: FfnKind::GatedMlp,
                params_billion: 6.7,
                surrogate,
            },
            ModelKind::Llama2_13b => ModelConfig {
                kind,
                layers: 40,
                heads: 40,
                kv_heads: 40,
                channels: 5120,
                ffn_dim: 13_824,
                vocab: 32_000,
                ffn_kind: FfnKind::GatedMlp,
                params_billion: 13.0,
                surrogate,
            },
            ModelKind::Llama2_70b => ModelConfig {
                kind,
                layers: 80,
                heads: 64,
                kv_heads: 8,
                channels: 8192,
                ffn_dim: 28_672,
                vocab: 32_000,
                ffn_kind: FfnKind::GatedMlp,
                params_billion: 69.0,
                surrogate,
            },
            ModelKind::Llama3_8b => ModelConfig {
                kind,
                layers: 32,
                heads: 32,
                kv_heads: 8,
                channels: 4096,
                ffn_dim: 14_336,
                vocab: 128_256,
                ffn_kind: FfnKind::GatedMlp,
                params_billion: 8.0,
                surrogate,
            },
            ModelKind::Llama3_2_3b => ModelConfig {
                kind,
                layers: 28,
                heads: 24,
                kv_heads: 8,
                channels: 3072,
                ffn_dim: 8192,
                vocab: 128_256,
                ffn_kind: FfnKind::GatedMlp,
                params_billion: 3.2,
                surrogate,
            },
            ModelKind::Mistral7b => ModelConfig {
                kind,
                layers: 32,
                heads: 32,
                kv_heads: 8,
                channels: 4096,
                ffn_dim: 14_336,
                vocab: 32_000,
                ffn_kind: FfnKind::GatedMlp,
                params_billion: 7.2,
                surrogate,
            },
            ModelKind::Qwen2_7b => ModelConfig {
                kind,
                layers: 28,
                heads: 28,
                kv_heads: 4,
                channels: 3584,
                ffn_dim: 18_944,
                vocab: 152_064,
                ffn_kind: FfnKind::GatedMlp,
                params_billion: 7.6,
                surrogate,
            },
            ModelKind::Opt6_7b => ModelConfig {
                kind,
                layers: 32,
                heads: 32,
                kv_heads: 32,
                channels: 4096,
                ffn_dim: 16_384,
                vocab: 50_272,
                ffn_kind: FfnKind::Mlp,
                params_billion: 6.7,
                surrogate,
            },
        }
    }

    /// Overrides the surrogate dimensions (builder style).
    pub fn with_surrogate(mut self, surrogate: SurrogateDims) -> Self {
        self.surrogate = surrogate;
        self
    }

    /// Per-head channel dimension `C / H` of the published model.
    pub fn head_dim(&self) -> usize {
        self.channels / self.heads
    }

    /// Bytes of KV cache added per generated token per layer, for a given
    /// per-element size in bits (e.g. 16 for FP16, 4 for QuaRot KV4).
    ///
    /// One token contributes a key and a value vector of `kv_heads * head_dim`
    /// elements each.
    pub fn kv_bytes_per_token_per_layer(&self, bits_per_element: u32) -> usize {
        let elements = 2 * self.kv_heads * self.head_dim();
        (elements * bits_per_element as usize).div_ceil(8)
    }

    /// Bytes of KV cache for `tokens` tokens across all layers.
    pub fn kv_bytes_total(&self, tokens: usize, bits_per_element: u32) -> usize {
        self.kv_bytes_per_token_per_layer(bits_per_element) * self.layers * tokens
    }

    /// Total number of weight parameters in the decoder stack (excluding
    /// embeddings), used for weight-traffic modelling.
    pub fn decoder_weight_params(&self) -> u64 {
        let c = self.channels as u64;
        let head_dim = self.head_dim() as u64;
        let kv_c = self.kv_heads as u64 * head_dim;
        let attn = c * c /* W_Q */ + c * kv_c /* W_K */ + c * kv_c /* W_V */ + c * c /* W_O */;
        let ffn = match self.ffn_kind {
            FfnKind::Mlp => 2 * c * self.ffn_dim as u64,
            FfnKind::GatedMlp => 3 * c * self.ffn_dim as u64,
        };
        (attn + ffn) * self.layers as u64
    }

    /// Total weight parameters including the embedding and LM head.
    pub fn total_weight_params(&self) -> u64 {
        self.decoder_weight_params() + 2 * self.vocab as u64 * self.channels as u64
    }

    /// Weight storage in bytes for the given weight bit width.
    pub fn weight_bytes(&self, bits_per_weight: u32) -> u64 {
        self.total_weight_params() * u64::from(bits_per_weight) / 8
    }

    /// MAC operations for a single decoding step at sequence position `n`
    /// (context of `n` cached tokens), counting the attention projections,
    /// the score/value products against the cache and the FFN.
    pub fn decode_macs(&self, cached_tokens: usize) -> u64 {
        let c = self.channels as u64;
        let head_dim = self.head_dim() as u64;
        let kv_c = self.kv_heads as u64 * head_dim;
        let proj = c * c + 2 * c * kv_c + c * c;
        let attn = 2 * self.heads as u64 * head_dim * cached_tokens as u64;
        let ffn = match self.ffn_kind {
            FfnKind::Mlp => 2 * c * self.ffn_dim as u64,
            FfnKind::GatedMlp => 3 * c * self.ffn_dim as u64,
        };
        (proj + attn + ffn) * self.layers as u64
    }

    /// MAC operations for pre-filling `context` tokens (processed in parallel).
    pub fn prefill_macs(&self, context: usize) -> u64 {
        let c = self.channels as u64;
        let head_dim = self.head_dim() as u64;
        let kv_c = self.kv_heads as u64 * head_dim;
        let n = context as u64;
        let proj = n * (2 * c * c + 2 * c * kv_c);
        // Causal attention: ~n^2/2 score and value MACs per head.
        let attn = self.heads as u64 * head_dim * n * n;
        let ffn = match self.ffn_kind {
            FfnKind::Mlp => 2 * n * c * self.ffn_dim as u64,
            FfnKind::GatedMlp => 3 * n * c * self.ffn_dim as u64,
        };
        (proj + attn + ffn) * self.layers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_kv_footprint_matches_paper() {
        // §1: LLaMA2-7B with sequence length 8192 in FP16 has a 4 GB KV cache.
        let cfg = ModelConfig::for_kind(ModelKind::Llama2_7b);
        let bytes = cfg.kv_bytes_total(8192, 16);
        let gib = bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((gib - 4.0).abs() < 0.1, "got {gib} GiB");
    }

    #[test]
    fn llama2_7b_weight_count_is_about_7b() {
        let cfg = ModelConfig::for_kind(ModelKind::Llama2_7b);
        let params = cfg.total_weight_params() as f64 / 1e9;
        assert!(params > 6.0 && params < 7.5, "got {params}B params");
    }

    #[test]
    fn weight_bytes_8bit_fits_claim() {
        // §8.4.1: 8-bit weights occupy ~6.5 GB of DRAM for LLaMA2-7B.
        let cfg = ModelConfig::for_kind(ModelKind::Llama2_7b);
        let gib = cfg.weight_bytes(8) as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!(gib > 5.5 && gib < 7.0, "got {gib} GiB");
    }

    #[test]
    fn gqa_models_have_smaller_kv() {
        let llama2 = ModelConfig::for_kind(ModelKind::Llama2_7b);
        let llama3 = ModelConfig::for_kind(ModelKind::Llama3_8b);
        assert!(llama3.kv_bytes_per_token_per_layer(16) < llama2.kv_bytes_per_token_per_layer(16));
    }

    #[test]
    fn decode_macs_grow_with_context() {
        let cfg = ModelConfig::for_kind(ModelKind::Llama2_7b);
        assert!(cfg.decode_macs(4096) > cfg.decode_macs(128));
    }

    #[test]
    fn prefill_macs_superlinear_in_context() {
        let cfg = ModelConfig::for_kind(ModelKind::Llama2_7b);
        let m1 = cfg.prefill_macs(512) as f64;
        let m2 = cfg.prefill_macs(1024) as f64;
        assert!(m2 > 2.0 * m1);
    }

    #[test]
    fn all_models_have_consistent_head_dims() {
        for &kind in ModelKind::all() {
            let cfg = ModelConfig::for_kind(kind);
            assert_eq!(cfg.channels % cfg.heads, 0, "{kind}");
            assert_eq!(cfg.heads % cfg.kv_heads, 0, "{kind}");
            assert_eq!(cfg.surrogate.channels % cfg.surrogate.heads, 0, "{kind}");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelKind::Llama2_7b.to_string(), "LLaMA2-7B");
        assert_eq!(ModelKind::Qwen2_7b.to_string(), "QWEN2-7B");
    }

    #[test]
    fn surrogate_head_dim() {
        let d = SurrogateDims::default();
        assert_eq!(d.head_dim() * d.heads, d.channels);
    }
}
