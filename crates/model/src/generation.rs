//! Generation driver: pre-fill + auto-regressive decode, reference runs and
//! side-by-side fidelity evaluation.
//!
//! Accuracy-style experiments (Tables 2–6, Fig. 8) compare a *test*
//! configuration (some cache policy + fault model) against the *reference*
//! configuration (full cache, no faults) on the same prompt.  To keep the two
//! runs comparable, decoding is *teacher-forced on the reference trajectory*:
//! both runs see the token the reference model generated at each step, and the
//! metric is how much the test run's output distribution drifts (see
//! [`crate::metrics`]).

use crate::cache::{CacheStats, FullKvCache, KvCacheBackend, TokenId};
use crate::decoder::SurrogateModel;
use crate::fault::{FaultInjector, NoFaults};
use crate::metrics::{FidelityAccumulator, FidelityMetrics};
use serde::{Deserialize, Serialize};

/// How a generation run is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationConfig {
    /// Number of decode steps to run after the prompt.
    pub decode_len: usize,
    /// Whether decoding is greedy (always true for the reproduction; kept as a
    /// field so sampling strategies can be added without API breakage).
    pub greedy: bool,
}

impl GenerationConfig {
    /// A configuration decoding `decode_len` tokens greedily.
    pub fn greedy(decode_len: usize) -> Self {
        GenerationConfig {
            decode_len,
            greedy: true,
        }
    }
}

/// Per-step bookkeeping captured during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Sequence position of the generated token.
    pub position: usize,
    /// Token chosen at this step.
    pub token: TokenId,
    /// Cache occupancy after the step.
    pub cache_stats: CacheStats,
    /// Number of cache entries recomputed from stored inputs in this step.
    pub recomputed_entries: usize,
    /// Number of cache entries read as stored KV in this step.
    pub kv_entries_read: usize,
}

/// The full decode-time trace of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecodeTrace {
    /// One record per decode step.
    pub steps: Vec<StepRecord>,
}

impl DecodeTrace {
    /// Total evictions observed at the end of the run.
    pub fn final_evictions(&self) -> u64 {
        self.steps.last().map(|s| s.cache_stats.evictions).unwrap_or(0)
    }

    /// Peak number of stored entries (KV + recompute) across the run.
    pub fn peak_entries(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.cache_stats.total_entries())
            .max()
            .unwrap_or(0)
    }

    /// Mean fraction of attended entries that required recomputation.
    pub fn recompute_fraction(&self) -> f64 {
        let (rec, total): (usize, usize) = self.steps.iter().fold((0, 0), |(r, t), s| {
            (r + s.recomputed_entries, t + s.recomputed_entries + s.kv_entries_read)
        });
        if total == 0 {
            0.0
        } else {
            rec as f64 / total as f64
        }
    }
}

/// Output of a generation run.
#[derive(Debug, Clone)]
pub struct GenerationOutput {
    /// Tokens produced during decoding (vocabulary ids).
    pub generated: Vec<usize>,
    /// Per-step next-token probability distributions.
    pub step_probs: Vec<Vec<f32>>,
    /// Decode trace.
    pub trace: DecodeTrace,
}

/// Runs the reference configuration (full cache, no faults) on `prompt`,
/// decoding `config.decode_len` tokens greedily.
pub fn run_reference(
    model: &SurrogateModel,
    prompt: &[usize],
    config: GenerationConfig,
) -> GenerationOutput {
    let mut cache = FullKvCache::new();
    let mut faults = NoFaults;
    run_with(model, prompt, config, None, &mut cache, &mut faults)
}

/// Runs a test configuration with the given cache backend and fault injector.
///
/// If `forced_tokens` is provided (typically the reference run's generated
/// tokens), decoding is teacher-forced on that trajectory; otherwise the run
/// decodes greedily from its own predictions.
pub fn run_with(
    model: &SurrogateModel,
    prompt: &[usize],
    config: GenerationConfig,
    forced_tokens: Option<&[usize]>,
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> GenerationOutput {
    assert!(!prompt.is_empty(), "prompt must contain at least one token");
    let vocab = model.dims().vocab;

    // Pre-filling: process the context tokens one by one (the functional model
    // has no batched path; the hardware model accounts for prefill parallelism
    // separately).
    let mut last_logits = Vec::new();
    for (pos, tok) in prompt.iter().enumerate() {
        let (logits, _) = model.forward_token(*tok % vocab, pos, cache, faults);
        last_logits = logits;
    }
    cache.finish_prefill(prompt.len());

    let mut generated = Vec::with_capacity(config.decode_len);
    let mut step_probs = Vec::with_capacity(config.decode_len);
    let mut trace = DecodeTrace::default();

    let mut next_input = SurrogateModel::argmax(&last_logits);
    for step in 0..config.decode_len {
        let position = prompt.len() + step;
        let input_token = match forced_tokens {
            Some(forced) if step > 0 => forced[step - 1] % vocab,
            _ => next_input,
        };
        let (logits, stats) = model.forward_token(input_token, position, cache, faults);
        let probs = SurrogateModel::probabilities(&logits);
        let choice = SurrogateModel::argmax(&logits);
        generated.push(choice);
        step_probs.push(probs);
        trace.steps.push(StepRecord {
            position,
            token: choice,
            cache_stats: cache.stats(),
            recomputed_entries: stats.recomputed_entries,
            kv_entries_read: stats.kv_entries_read,
        });
        next_input = choice;
    }

    GenerationOutput {
        generated,
        step_probs,
        trace,
    }
}

/// Runs a test configuration against a pre-computed reference and returns the
/// fidelity metrics together with the test run's trace.
pub fn evaluate_against_reference(
    model: &SurrogateModel,
    prompt: &[usize],
    config: GenerationConfig,
    reference: &GenerationOutput,
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> (FidelityMetrics, DecodeTrace) {
    let test = run_with(
        model,
        prompt,
        config,
        Some(&reference.generated),
        cache,
        faults,
    );
    let mut acc = FidelityAccumulator::new();
    for (ref_probs, test_probs) in reference.step_probs.iter().zip(test.step_probs.iter()) {
        acc.record(ref_probs, test_probs);
    }
    (acc.finish(), test.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind, SurrogateDims};

    fn model() -> SurrogateModel {
        let config = ModelConfig::for_kind(ModelKind::Llama2_7b).with_surrogate(SurrogateDims {
            layers: 2,
            heads: 4,
            channels: 32,
            ffn_dim: 64,
            vocab: 64,
        });
        SurrogateModel::new(config, 21)
    }

    #[test]
    fn reference_run_produces_requested_tokens() {
        let m = model();
        let out = run_reference(&m, &[1, 2, 3, 4], GenerationConfig::greedy(6));
        assert_eq!(out.generated.len(), 6);
        assert_eq!(out.step_probs.len(), 6);
        assert_eq!(out.trace.steps.len(), 6);
        assert!(out.generated.iter().all(|&t| t < 64));
    }

    #[test]
    fn reference_vs_itself_is_perfect() {
        let m = model();
        let prompt = vec![5, 9, 13, 2];
        let config = GenerationConfig::greedy(5);
        let reference = run_reference(&m, &prompt, config);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let (metrics, _) =
            evaluate_against_reference(&m, &prompt, config, &reference, &mut cache, &mut faults);
        assert_eq!(metrics.top1_agreement, 1.0);
        assert!(metrics.mean_kl < 1e-6);
    }

    #[test]
    fn trace_statistics_are_consistent() {
        let m = model();
        let out = run_reference(&m, &[1, 2, 3], GenerationConfig::greedy(4));
        assert_eq!(out.trace.final_evictions(), 0);
        assert!(out.trace.peak_entries() > 0);
        assert_eq!(out.trace.recompute_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "prompt must contain at least one token")]
    fn empty_prompt_panics() {
        let m = model();
        run_reference(&m, &[], GenerationConfig::greedy(1));
    }
}
