//! Generation driver: pre-fill + auto-regressive decode, reference runs and
//! side-by-side fidelity evaluation.
//!
//! The driver is built from two *resumable* entry points — [`prefill`] and
//! [`decode_step`] operating on a [`GenerationState`] — so callers that keep a
//! cache alive across requests (multi-turn sessions, continuous batching in
//! `kelle-core`) can append context and decode incrementally without
//! re-processing earlier tokens.  [`run_with`] composes the two into the
//! classic one-shot run.
//!
//! Accuracy-style experiments (Tables 2–6, Fig. 8) compare a *test*
//! configuration (some cache policy + fault model) against the *reference*
//! configuration (full cache, no faults) on the same prompt.  To keep the two
//! runs comparable, decoding is *teacher-forced on the reference trajectory*:
//! both runs see the token the reference model generated at each step, and the
//! metric is how much the test run's output distribution drifts (see
//! [`crate::metrics`]).

use crate::attention::DecodeScratch;
use crate::cache::{CacheStats, FullKvCache, KvCacheBackend, TokenId};
use crate::decoder::SurrogateModel;
use crate::fault::{FaultInjector, NoFaults};
use crate::metrics::{FidelityAccumulator, FidelityMetrics};
use serde::{Deserialize, Serialize};

/// How a generation run is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationConfig {
    /// Number of decode steps to run after the prompt.
    pub decode_len: usize,
    /// Whether decoding is greedy (always true for the reproduction; kept as a
    /// field so sampling strategies can be added without API breakage).
    pub greedy: bool,
}

impl GenerationConfig {
    /// A configuration decoding `decode_len` tokens greedily.
    pub fn greedy(decode_len: usize) -> Self {
        GenerationConfig {
            decode_len,
            greedy: true,
        }
    }
}

/// Per-step bookkeeping captured during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Sequence position of the generated token.
    pub position: usize,
    /// Token chosen at this step.
    pub token: TokenId,
    /// Cache occupancy after the step.
    pub cache_stats: CacheStats,
    /// Number of cache entries recomputed from stored inputs in this step.
    pub recomputed_entries: usize,
    /// Number of cache entries read as stored KV in this step.
    pub kv_entries_read: usize,
}

/// The full decode-time trace of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecodeTrace {
    /// One record per decode step.
    pub steps: Vec<StepRecord>,
}

impl DecodeTrace {
    /// Total evictions observed at the end of the run.
    pub fn final_evictions(&self) -> u64 {
        self.steps
            .last()
            .map(|s| s.cache_stats.evictions)
            .unwrap_or(0)
    }

    /// Peak number of stored entries (KV + recompute) across the run.
    pub fn peak_entries(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.cache_stats.total_entries())
            .max()
            .unwrap_or(0)
    }

    /// Mean fraction of attended entries that required recomputation.
    pub fn recompute_fraction(&self) -> f64 {
        let (rec, total): (usize, usize) = self.steps.iter().fold((0, 0), |(r, t), s| {
            (
                r + s.recomputed_entries,
                t + s.recomputed_entries + s.kv_entries_read,
            )
        });
        if total == 0 {
            0.0
        } else {
            rec as f64 / total as f64
        }
    }
}

/// Output of a generation run.
#[derive(Debug, Clone)]
pub struct GenerationOutput {
    /// Tokens produced during decoding (vocabulary ids).
    pub generated: Vec<usize>,
    /// Per-step next-token probability distributions.
    pub step_probs: Vec<Vec<f32>>,
    /// Decode trace.
    pub trace: DecodeTrace,
}

/// Cursor of a resumable generation: the next sequence position, the logits of
/// the most recently processed token, and cumulative pre-fill/decode counters.
///
/// A state always travels with one cache backend and one fault injector; the
/// caller owns all three and threads them through [`prefill`] and
/// [`decode_step`].  Positions are global across turns, so a state that
/// pre-filled 8 tokens and decoded 4 resumes at position 12.
///
/// The state also owns the [`DecodeScratch`] its forward passes run through:
/// the scratch buffers warm up during pre-fill and the first decode steps and
/// are reused verbatim afterwards, which is what makes steady-state decoding
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct GenerationState {
    position: usize,
    last_logits: Vec<f32>,
    prefilled_tokens: usize,
    decoded_tokens: usize,
    scratch: DecodeScratch,
}

impl GenerationState {
    /// A fresh state at position zero.
    pub fn new() -> Self {
        GenerationState::default()
    }

    /// The next sequence position (total tokens processed so far).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Total prompt tokens processed through [`prefill`] across all turns.
    pub fn prefilled_tokens(&self) -> usize {
        self.prefilled_tokens
    }

    /// Total decode steps taken through [`decode_step`].
    pub fn decoded_tokens(&self) -> usize {
        self.decoded_tokens
    }

    /// Whether any token has been processed yet.
    pub fn has_context(&self) -> bool {
        !self.last_logits.is_empty()
    }

    /// The greedy next-token prediction from the current logits, or `None`
    /// before any token was processed.
    pub fn next_token(&self) -> Option<usize> {
        if self.last_logits.is_empty() {
            None
        } else {
            Some(SurrogateModel::argmax(&self.last_logits))
        }
    }

    /// The reusable scratch the state's forward passes run through.
    pub fn scratch_mut(&mut self) -> &mut DecodeScratch {
        &mut self.scratch
    }

    /// The logits of the most recently processed token (empty before any
    /// token was processed).
    pub fn last_logits(&self) -> &[f32] {
        &self.last_logits
    }

    /// Restores the cursor of a fresh state to the end of a replayed shared
    /// prefix: `tokens` positions are marked processed and `logits` become
    /// the last-token logits, exactly as if the prefix had been pre-filled
    /// through the model.  The replayed tokens are **not** counted as
    /// pre-fill work ([`prefilled_tokens`](GenerationState::prefilled_tokens)
    /// reports computed tokens only — the compute was paid once, at
    /// publication).
    ///
    /// # Panics
    ///
    /// Panics if the state has already processed tokens, or if `tokens` is
    /// zero / `logits` is empty (a prefix snapshot always has both).
    pub fn adopt_prefix(&mut self, tokens: usize, logits: &[f32]) {
        assert_eq!(
            self.position, 0,
            "a prefix can only be adopted by a fresh state"
        );
        assert!(tokens > 0, "a shared prefix holds at least one token");
        assert!(!logits.is_empty(), "a prefix snapshot carries logits");
        self.position = tokens;
        self.last_logits.clear();
        self.last_logits.extend_from_slice(logits);
    }
}

/// Everything produced by one [`decode_step`].
#[derive(Debug, Clone)]
pub struct DecodeStep {
    /// Token chosen greedily at this step.
    pub token: usize,
    /// Post-softmax next-token distribution.
    pub probs: Vec<f32>,
    /// Trace record for this step.
    pub record: StepRecord,
}

/// Processes `tokens` as additional context at the state's current position,
/// inserting their KV pairs into `cache`, and signals the end of pre-filling
/// so budgeted policies can apply their prefill retention rule.
///
/// Returns the number of tokens processed (i.e. `tokens.len()`), which is the
/// *only* pre-fill work performed — earlier turns' context is reused from the
/// cache, not re-processed.
///
/// # Panics
///
/// Panics if the state has no context yet and `tokens` is empty (the first
/// turn must provide at least one token).
pub fn prefill(
    model: &SurrogateModel,
    state: &mut GenerationState,
    tokens: &[usize],
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> usize {
    let count = prefill_extend(model, state, tokens, cache, faults);
    if !tokens.is_empty() {
        cache.finish_prefill(state.position);
    }
    count
}

/// Like [`prefill`], but **without** signalling
/// [`finish_prefill`](KvCacheBackend::finish_prefill) — the context tokens
/// are processed and inserted, and the cache stays in its pre-fill phase.
///
/// This is the building block of prefix sharing: a published prefix is
/// recorded through `prefill_extend` (the snapshot captures the cache
/// *mid-prefill*, before any prefill-retention rule fires), and a cache-hit
/// session replays the prefix, `prefill_extend`s its remaining prompt tokens
/// and only then finishes pre-fill once — the exact call sequence of a cold
/// single-call prefill, which is what makes the resulting backend state
/// bit-identical.
///
/// # Panics
///
/// Panics if the state has no context yet and `tokens` is empty.
pub fn prefill_extend(
    model: &SurrogateModel,
    state: &mut GenerationState,
    tokens: &[usize],
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> usize {
    assert!(
        state.has_context() || !tokens.is_empty(),
        "prompt must contain at least one token"
    );
    let vocab = model.dims().vocab;
    for tok in tokens {
        model.forward_token_with(
            *tok % vocab,
            state.position,
            cache,
            faults,
            &mut state.scratch,
        );
        state.last_logits.clear();
        state.last_logits.extend_from_slice(&state.scratch.logits);
        state.position += 1;
    }
    state.prefilled_tokens += tokens.len();
    tokens.len()
}

/// Runs one auto-regressive decode step.
///
/// The input token is `forced_input` when given (teacher forcing), otherwise
/// the state's own greedy prediction.  The chosen token, its distribution and
/// the per-step trace record are returned; the state advances by one position.
///
/// # Panics
///
/// Panics if nothing has been pre-filled yet.
pub fn decode_step(
    model: &SurrogateModel,
    state: &mut GenerationState,
    forced_input: Option<usize>,
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> DecodeStep {
    let next = state
        .next_token()
        .expect("decode_step requires pre-filled context");
    let vocab = model.dims().vocab;
    let input_token = forced_input.map(|t| t % vocab).unwrap_or(next);
    let position = state.position;
    let stats = model.forward_token_with(input_token, position, cache, faults, &mut state.scratch);
    let probs = SurrogateModel::probabilities(&state.scratch.logits);
    let choice = SurrogateModel::argmax(&state.scratch.logits);
    state.last_logits.clear();
    state.last_logits.extend_from_slice(&state.scratch.logits);
    state.position += 1;
    state.decoded_tokens += 1;
    DecodeStep {
        token: choice,
        probs,
        record: StepRecord {
            position,
            token: choice,
            cache_stats: cache.stats(),
            recomputed_entries: stats.recomputed_entries,
            kv_entries_read: stats.kv_entries_read,
        },
    }
}

/// [`decode_step`] with the forward pass fanned out across `runner`
/// (per-head attention, row-partitioned projections; see
/// [`SurrogateModel::forward_token_with_runner`]).
///
/// Token choice, probability bits, trace record and fault statistics are
/// bit-identical to [`decode_step`] for any lane count.  Pre-fill stays
/// sequential by design: it is a one-off cost per session and the
/// session-axis parallelism of `kelle::parallel` already covers it.
pub fn decode_step_with_runner(
    model: &SurrogateModel,
    state: &mut GenerationState,
    forced_input: Option<usize>,
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
    runner: &dyn kelle_tensor::par::ParallelRunner,
) -> DecodeStep {
    let next = state
        .next_token()
        .expect("decode_step requires pre-filled context");
    let vocab = model.dims().vocab;
    let input_token = forced_input.map(|t| t % vocab).unwrap_or(next);
    let position = state.position;
    let stats = model.forward_token_with_runner(
        input_token,
        position,
        cache,
        faults,
        &mut state.scratch,
        runner,
    );
    let probs = SurrogateModel::probabilities(&state.scratch.logits);
    let choice = SurrogateModel::argmax(&state.scratch.logits);
    state.last_logits.clear();
    state.last_logits.extend_from_slice(&state.scratch.logits);
    state.position += 1;
    state.decoded_tokens += 1;
    DecodeStep {
        token: choice,
        probs,
        record: StepRecord {
            position,
            token: choice,
            cache_stats: cache.stats(),
            recomputed_entries: stats.recomputed_entries,
            kv_entries_read: stats.kv_entries_read,
        },
    }
}

/// Runs the reference configuration (full cache, no faults) on `prompt`,
/// decoding `config.decode_len` tokens greedily.
pub fn run_reference(
    model: &SurrogateModel,
    prompt: &[usize],
    config: GenerationConfig,
) -> GenerationOutput {
    let mut cache = FullKvCache::new();
    let mut faults = NoFaults;
    run_with(model, prompt, config, None, &mut cache, &mut faults)
}

/// Runs a test configuration with the given cache backend and fault injector.
///
/// If `forced_tokens` is provided (typically the reference run's generated
/// tokens), decoding is teacher-forced on that trajectory; otherwise the run
/// decodes greedily from its own predictions.
///
/// This is the one-shot composition of [`prefill`] and [`decode_step`]; it
/// assumes a fresh cache and state.
pub fn run_with(
    model: &SurrogateModel,
    prompt: &[usize],
    config: GenerationConfig,
    forced_tokens: Option<&[usize]>,
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> GenerationOutput {
    assert!(!prompt.is_empty(), "prompt must contain at least one token");
    let mut state = GenerationState::new();
    prefill(model, &mut state, prompt, cache, faults);

    let mut generated = Vec::with_capacity(config.decode_len);
    let mut step_probs = Vec::with_capacity(config.decode_len);
    let mut trace = DecodeTrace::default();

    for step in 0..config.decode_len {
        // Teacher forcing replays the reference trajectory from step 1 on;
        // step 0's input is always the model's own prediction from the prompt.
        let forced_input = match forced_tokens {
            Some(forced) if step > 0 => Some(forced[step - 1]),
            _ => None,
        };
        let step_out = decode_step(model, &mut state, forced_input, cache, faults);
        generated.push(step_out.token);
        step_probs.push(step_out.probs);
        trace.steps.push(step_out.record);
    }

    GenerationOutput {
        generated,
        step_probs,
        trace,
    }
}

/// [`run_with`], driven through the historical materialize-then-compute
/// forward pass ([`SurrogateModel::forward_token_via_entries`]).
///
/// Every cached key/value is deep-cloned on every read and every intermediate
/// is freshly allocated — the storage layer's behaviour before the arena
/// rewrite.  The equivalence suite asserts its outputs (tokens *and*
/// per-step probability bits) are identical to [`run_with`]; the decode
/// benchmark reports the hot path's throughput win over it as the in-run
/// pre-arena baseline.
pub fn run_with_via_entries(
    model: &SurrogateModel,
    prompt: &[usize],
    config: GenerationConfig,
    forced_tokens: Option<&[usize]>,
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> GenerationOutput {
    assert!(!prompt.is_empty(), "prompt must contain at least one token");
    let vocab = model.dims().vocab;
    let mut position = 0usize;
    let mut last_logits = Vec::new();
    for tok in prompt {
        let (logits, _) = model.forward_token_via_entries(*tok % vocab, position, cache, faults);
        last_logits = logits;
        position += 1;
    }
    cache.finish_prefill(position);

    let mut generated = Vec::with_capacity(config.decode_len);
    let mut step_probs = Vec::with_capacity(config.decode_len);
    let mut trace = DecodeTrace::default();

    for step in 0..config.decode_len {
        let forced_input = match forced_tokens {
            Some(forced) if step > 0 => Some(forced[step - 1] % vocab),
            _ => None,
        };
        let input_token = forced_input.unwrap_or_else(|| SurrogateModel::argmax(&last_logits));
        let (logits, stats) = model.forward_token_via_entries(input_token, position, cache, faults);
        let probs = SurrogateModel::probabilities(&logits);
        let choice = SurrogateModel::argmax(&logits);
        generated.push(choice);
        step_probs.push(probs);
        trace.steps.push(StepRecord {
            position,
            token: choice,
            cache_stats: cache.stats(),
            recomputed_entries: stats.recomputed_entries,
            kv_entries_read: stats.kv_entries_read,
        });
        last_logits = logits;
        position += 1;
    }

    GenerationOutput {
        generated,
        step_probs,
        trace,
    }
}

/// Runs a test configuration against a pre-computed reference and returns the
/// fidelity metrics together with the test run's trace.
pub fn evaluate_against_reference(
    model: &SurrogateModel,
    prompt: &[usize],
    config: GenerationConfig,
    reference: &GenerationOutput,
    cache: &mut dyn KvCacheBackend,
    faults: &mut dyn FaultInjector,
) -> (FidelityMetrics, DecodeTrace) {
    let test = run_with(
        model,
        prompt,
        config,
        Some(&reference.generated),
        cache,
        faults,
    );
    let mut acc = FidelityAccumulator::new();
    for (ref_probs, test_probs) in reference.step_probs.iter().zip(test.step_probs.iter()) {
        acc.record(ref_probs, test_probs);
    }
    (acc.finish(), test.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind, SurrogateDims};

    fn model() -> SurrogateModel {
        let config = ModelConfig::for_kind(ModelKind::Llama2_7b).with_surrogate(SurrogateDims {
            layers: 2,
            heads: 4,
            channels: 32,
            ffn_dim: 64,
            vocab: 64,
        });
        SurrogateModel::new(config, 21)
    }

    #[test]
    fn reference_run_produces_requested_tokens() {
        let m = model();
        let out = run_reference(&m, &[1, 2, 3, 4], GenerationConfig::greedy(6));
        assert_eq!(out.generated.len(), 6);
        assert_eq!(out.step_probs.len(), 6);
        assert_eq!(out.trace.steps.len(), 6);
        assert!(out.generated.iter().all(|&t| t < 64));
    }

    #[test]
    fn reference_vs_itself_is_perfect() {
        let m = model();
        let prompt = vec![5, 9, 13, 2];
        let config = GenerationConfig::greedy(5);
        let reference = run_reference(&m, &prompt, config);
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let (metrics, _) =
            evaluate_against_reference(&m, &prompt, config, &reference, &mut cache, &mut faults);
        assert_eq!(metrics.top1_agreement, 1.0);
        assert!(metrics.mean_kl < 1e-6);
    }

    #[test]
    fn trace_statistics_are_consistent() {
        let m = model();
        let out = run_reference(&m, &[1, 2, 3], GenerationConfig::greedy(4));
        assert_eq!(out.trace.final_evictions(), 0);
        assert!(out.trace.peak_entries() > 0);
        assert_eq!(out.trace.recompute_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "prompt must contain at least one token")]
    fn empty_prompt_panics() {
        let m = model();
        run_reference(&m, &[], GenerationConfig::greedy(1));
    }

    #[test]
    fn chained_prefill_decode_matches_one_shot() {
        let m = model();
        let config = GenerationConfig::greedy(6);
        let one_shot = run_reference(&m, &[7, 3, 11, 2, 9, 30], config);

        // Same run, driven incrementally: prompt split across two prefills.
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let mut state = GenerationState::new();
        prefill(&m, &mut state, &[7, 3, 11], &mut cache, &mut faults);
        prefill(&m, &mut state, &[2, 9, 30], &mut cache, &mut faults);
        assert_eq!(state.prefilled_tokens(), 6);
        let mut generated = Vec::new();
        for _ in 0..6 {
            generated.push(decode_step(&m, &mut state, None, &mut cache, &mut faults).token);
        }
        assert_eq!(generated, one_shot.generated);
        assert_eq!(state.decoded_tokens(), 6);
        assert_eq!(state.position(), 12);
    }

    #[test]
    fn state_reports_next_token_after_prefill() {
        let m = model();
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let mut state = GenerationState::new();
        assert_eq!(state.next_token(), None);
        assert!(!state.has_context());
        prefill(&m, &mut state, &[1, 2, 3], &mut cache, &mut faults);
        assert!(state.has_context());
        assert!(state.next_token().unwrap() < 64);
    }

    #[test]
    #[should_panic(expected = "requires pre-filled context")]
    fn decode_without_prefill_panics() {
        let m = model();
        let mut cache = FullKvCache::new();
        let mut faults = NoFaults;
        let mut state = GenerationState::new();
        decode_step(&m, &mut state, None, &mut cache, &mut faults);
    }
}
