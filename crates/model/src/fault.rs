//! Bit-level retention-fault injection at KV-cache read time.
//!
//! eDRAM cells lose charge over time; if the refresh interval exceeds a cell's
//! retention time the stored bit flips (§2.3, Fig. 4).  Kelle's 2DRP assigns
//! different refresh intervals — and therefore different bit-flip
//! probabilities — along two dimensions (§4.2):
//!
//! * **token importance**: high-score tokens (HST) are refreshed more often
//!   than low-score tokens (LST);
//! * **bit significance**: the most significant byte of each 16-bit word
//!   (bits 15–8) is refreshed more often than the least significant byte
//!   (bits 7–0).
//!
//! The [`FaultInjector`] trait lets the functional model apply this corruption
//! when reading cached values, without knowing where the probabilities come
//! from; `kelle-edram` computes them from retention physics and the configured
//! refresh intervals, and `kelle-core` wires the two together.

use kelle_tensor::fp16;
use kelle_tensor::rng::{self, DetRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Importance group of a token, as classified by the cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenGroup {
    /// High-score token (heavy hitter): refreshed frequently under 2DRP.
    HighScore,
    /// Low-score token: refreshed rarely under 2DRP.
    LowScore,
}

/// Bit-significance group within a 16-bit storage word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignificanceGroup {
    /// Bits 15–8 (sign, exponent and high mantissa bits of FP16).
    Msb,
    /// Bits 7–0 (low mantissa bits of FP16).
    Lsb,
}

impl SignificanceGroup {
    /// The significance group of a bit position within a 16-bit word.
    pub fn of_bit(bit: u8) -> Self {
        if bit >= 8 {
            SignificanceGroup::Msb
        } else {
            SignificanceGroup::Lsb
        }
    }
}

/// Counters describing how much corruption an injector has applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Number of 16-bit words examined.
    pub words_examined: u64,
    /// Number of individual bits flipped.
    pub bits_flipped: u64,
}

impl FaultStats {
    /// Observed bit-error rate (flipped bits / examined bits).
    pub fn bit_error_rate(&self) -> f64 {
        if self.words_examined == 0 {
            0.0
        } else {
            self.bits_flipped as f64 / (self.words_examined as f64 * 16.0)
        }
    }
}

/// Applies retention-failure corruption to values read from the KV cache.
pub trait FaultInjector: std::fmt::Debug {
    /// Possibly corrupts one value belonging to a token of the given group.
    ///
    /// The value is conceptually stored as a 16-bit FP16 word; implementations
    /// flip stored bits according to their model and return the resulting
    /// value.
    fn corrupt(&mut self, value: f32, group: TokenGroup) -> f32;

    /// Corrupts a whole vector in place (convenience wrapper over
    /// [`corrupt`](FaultInjector::corrupt)).
    fn corrupt_slice(&mut self, values: &mut [f32], group: TokenGroup) {
        for v in values.iter_mut() {
            *v = self.corrupt(*v, group);
        }
    }

    /// Selects the deterministic substream that subsequent
    /// [`corrupt`](FaultInjector::corrupt) calls draw from.
    ///
    /// The attention pass calls this at the start of every `(layer, head)`
    /// iteration — in both the fused and the reference path — so that the
    /// random draws consumed for one head never shift the stream seen by
    /// another.  That per-head partitioning is what lets heads run on
    /// different workers while producing exactly the bits of the sequential
    /// order.  Stateless injectors ignore it (the default is a no-op).
    fn begin_lane(&mut self, layer: usize, head: usize) {
        let _ = (layer, head);
    }

    /// Splits the injector into one independently-usable handle per head of
    /// `layer`, in head order, for parallel attention.
    ///
    /// Each returned handle owns the same substream that
    /// [`begin_lane`](FaultInjector::begin_lane)`(layer, head)` would select,
    /// so corrupting head `h`'s reads through handle `h` on any thread is
    /// bit-identical to the sequential pass.  Counters accumulated through
    /// the handles must be reflected in [`stats`](FaultInjector::stats)
    /// afterwards.  Returns `None` when the injector cannot be partitioned
    /// (the default); callers must then fall back to the sequential pass.
    fn split_lanes(
        &mut self,
        layer: usize,
        heads: usize,
    ) -> Option<Vec<&mut (dyn FaultInjector + Send)>> {
        let _ = (layer, heads);
        None
    }

    /// Whether this injector is guaranteed to never change a value *and*
    /// never update its counters, for any input.
    ///
    /// The decode hot path consults this once per attention pass: when it
    /// returns `true`, cached keys and values are read by reference straight
    /// out of the storage arenas with zero copies; otherwise each read is
    /// staged through scratch buffers so the stored bits stay pristine while
    /// the attention math sees the corrupted view.  Defaults to `false`
    /// (conservative: the staging path is always correct, merely slower).
    ///
    /// Implementations must not return `true` if skipping `corrupt` calls
    /// would be observable — e.g. [`ProbabilisticFaults`] keeps returning
    /// `false` even for all-zero rates because it counts examined words.
    fn is_noop(&self) -> bool {
        false
    }

    /// Corruption counters accumulated so far.
    fn stats(&self) -> FaultStats;
}

/// A fault injector that never corrupts anything (the FP16 reference setting).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn corrupt(&mut self, value: f32, _group: TokenGroup) -> f32 {
        value
    }

    fn is_noop(&self) -> bool {
        true
    }

    fn stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// Per-(token-group, bit-group) bit-flip probabilities.
///
/// This is the interface point between the refresh policy (which knows refresh
/// intervals and retention physics) and the functional model (which knows
/// values and token groups).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitFlipRates {
    /// Flip probability per bit for MSBs of high-score tokens.
    pub hst_msb: f64,
    /// Flip probability per bit for LSBs of high-score tokens.
    pub hst_lsb: f64,
    /// Flip probability per bit for MSBs of low-score tokens.
    pub lst_msb: f64,
    /// Flip probability per bit for LSBs of low-score tokens.
    pub lst_lsb: f64,
}

impl BitFlipRates {
    /// A uniform rate across all groups (the "Uniform" ablation in Table 4).
    pub fn uniform(rate: f64) -> Self {
        BitFlipRates {
            hst_msb: rate,
            hst_lsb: rate,
            lst_msb: rate,
            lst_lsb: rate,
        }
    }

    /// No corruption at all.
    pub fn zero() -> Self {
        Self::uniform(0.0)
    }

    /// The rate for a given token group and bit significance.
    pub fn rate(&self, group: TokenGroup, sig: SignificanceGroup) -> f64 {
        match (group, sig) {
            (TokenGroup::HighScore, SignificanceGroup::Msb) => self.hst_msb,
            (TokenGroup::HighScore, SignificanceGroup::Lsb) => self.hst_lsb,
            (TokenGroup::LowScore, SignificanceGroup::Msb) => self.lst_msb,
            (TokenGroup::LowScore, SignificanceGroup::Lsb) => self.lst_lsb,
        }
    }

    /// Average per-bit flip rate across the four groups (equal weighting).
    pub fn average(&self) -> f64 {
        (self.hst_msb + self.hst_lsb + self.lst_msb + self.lst_lsb) / 4.0
    }
}

/// One deterministic substream of a [`ProbabilisticFaults`] injector.
///
/// A lane owns its own RNG (seeded from the parent seed and the lane's
/// `(layer, head)` label via [`rng::lane`]) and its own counters, so the
/// draws consumed for one attention head never shift the stream of another.
#[derive(Debug, Clone)]
struct FaultLane {
    rates: BitFlipRates,
    rng: DetRng,
    stats: FaultStats,
}

impl FaultLane {
    fn new(rates: BitFlipRates, seed: u64, layer: usize, head: usize) -> Self {
        FaultLane {
            rates,
            rng: rng::lane(seed, layer as u64, head as u64),
            stats: FaultStats::default(),
        }
    }
}

impl FaultInjector for FaultLane {
    fn corrupt(&mut self, value: f32, group: TokenGroup) -> f32 {
        self.stats.words_examined += 1;
        let msb_rate = self.rates.rate(group, SignificanceGroup::Msb);
        let lsb_rate = self.rates.rate(group, SignificanceGroup::Lsb);
        if msb_rate <= 0.0 && lsb_rate <= 0.0 {
            return value;
        }
        let mut bits = fp16::f32_to_f16_bits(value);
        let mut flipped_any = false;
        for bit in 0u8..16 {
            let rate = self.rates.rate(group, SignificanceGroup::of_bit(bit));
            if rate > 0.0 && self.rng.gen::<f64>() < rate {
                bits ^= 1u16 << bit;
                self.stats.bits_flipped += 1;
                flipped_any = true;
            }
        }
        if flipped_any {
            let corrupted = fp16::f16_bits_to_f32(bits);
            // A flipped exponent bit can produce Inf/NaN; physical systems would
            // read the garbage value, but propagating NaN through softmax makes
            // the divergence metric saturate instantly and hides the relative
            // ordering the experiments measure.  Clamp to the FP16 finite range.
            if corrupted.is_finite() {
                corrupted
            } else {
                fp16::f16_bits_to_f32(0x7BFF) * corrupted.signum().max(-1.0)
            }
        } else {
            value
        }
    }

    fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// A probabilistic fault injector driven by per-group bit-flip rates.
///
/// Random draws are partitioned into deterministic per-`(layer, head)` lanes
/// (created on demand; direct [`corrupt`](FaultInjector::corrupt) calls with
/// no preceding [`begin_lane`](FaultInjector::begin_lane) use lane `(0, 0)`).
/// Each lane's RNG is seeded from the injector seed and the lane label alone,
/// so the bits a head's reads see depend only on the per-head corruption
/// history — never on how heads interleave across layers, steps or worker
/// threads.  [`stats`](FaultInjector::stats) sums the lane counters.
///
/// `Clone` snapshots the full injector state (rates, every lane's RNG
/// position and counters); the prefix-sharing machinery uses this to capture
/// the exact post-prefix fault stream so a cache-hit session resumes the
/// stream bit-identically to a cold one.
#[derive(Debug, Clone)]
pub struct ProbabilisticFaults {
    rates: BitFlipRates,
    seed: u64,
    lanes: Vec<FaultLane>,
    index: crate::hash::FastHashMap<(u32, u32), usize>,
    active: usize,
}

impl ProbabilisticFaults {
    /// Creates an injector with the given rates and RNG seed.
    pub fn new(rates: BitFlipRates, seed: u64) -> Self {
        ProbabilisticFaults {
            rates,
            seed,
            lanes: Vec::new(),
            index: crate::hash::FastHashMap::default(),
            active: 0,
        }
    }

    /// The configured rates.
    pub fn rates(&self) -> BitFlipRates {
        self.rates
    }

    /// Index of the lane for `(layer, head)`, creating it if needed.
    fn lane_slot(&mut self, layer: usize, head: usize) -> usize {
        let key = (layer as u32, head as u32);
        if let Some(&slot) = self.index.get(&key) {
            return slot;
        }
        let slot = self.lanes.len();
        self.lanes
            .push(FaultLane::new(self.rates, self.seed, layer, head));
        self.index.insert(key, slot);
        slot
    }
}

impl FaultInjector for ProbabilisticFaults {
    fn corrupt(&mut self, value: f32, group: TokenGroup) -> f32 {
        let slot = if self.lanes.is_empty() {
            self.lane_slot(0, 0)
        } else {
            self.active
        };
        self.lanes[slot].corrupt(value, group)
    }

    fn begin_lane(&mut self, layer: usize, head: usize) {
        self.active = self.lane_slot(layer, head);
    }

    fn split_lanes(
        &mut self,
        layer: usize,
        heads: usize,
    ) -> Option<Vec<&mut (dyn FaultInjector + Send)>> {
        for head in 0..heads {
            self.lane_slot(layer, head);
        }
        // Map each storage slot back to its head position so one pass over
        // `lanes` can hand out disjoint `&mut`s in head order.
        let mut head_of_slot = vec![usize::MAX; self.lanes.len()];
        for head in 0..heads {
            head_of_slot[self.index[&(layer as u32, head as u32)]] = head;
        }
        let mut out: Vec<Option<&mut (dyn FaultInjector + Send)>> =
            (0..heads).map(|_| None).collect();
        for (slot, fault_lane) in self.lanes.iter_mut().enumerate() {
            if head_of_slot[slot] != usize::MAX {
                out[head_of_slot[slot]] = Some(fault_lane);
            }
        }
        Some(
            out.into_iter()
                .map(|lane| lane.expect("lane created above"))
                .collect(),
        )
    }

    fn stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for lane in &self.lanes {
            total.words_examined += lane.stats.words_examined;
            total.bits_flipped += lane.stats.bits_flipped;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_identity() {
        let mut inj = NoFaults;
        assert_eq!(inj.corrupt(1.25, TokenGroup::HighScore), 1.25);
        assert_eq!(inj.stats().bits_flipped, 0);
    }

    #[test]
    fn zero_rate_never_flips() {
        let mut inj = ProbabilisticFaults::new(BitFlipRates::zero(), 1);
        for i in 0..100 {
            let v = i as f32 * 0.01;
            assert_eq!(inj.corrupt(v, TokenGroup::LowScore), v);
        }
        assert_eq!(inj.stats().bits_flipped, 0);
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let rate = 0.02;
        let mut inj = ProbabilisticFaults::new(BitFlipRates::uniform(rate), 7);
        let mut values = vec![0.5f32; 20_000];
        inj.corrupt_slice(&mut values, TokenGroup::HighScore);
        let observed = inj.stats().bit_error_rate();
        assert!((observed - rate).abs() < 0.005, "observed {observed}");
    }

    #[test]
    fn asymmetric_rates_hit_only_configured_group() {
        let rates = BitFlipRates {
            hst_msb: 0.5,
            hst_lsb: 0.5,
            lst_msb: 0.0,
            lst_lsb: 0.0,
        };
        let mut inj = ProbabilisticFaults::new(rates, 3);
        let mut lst = vec![0.25f32; 1000];
        inj.corrupt_slice(&mut lst, TokenGroup::LowScore);
        assert!(lst.iter().all(|&v| v == 0.25));
        let mut hst = vec![0.25f32; 1000];
        inj.corrupt_slice(&mut hst, TokenGroup::HighScore);
        assert!(hst.iter().any(|&v| v != 0.25));
    }

    #[test]
    fn msb_errors_cause_larger_value_changes_than_lsb() {
        let msb_only = BitFlipRates {
            hst_msb: 0.05,
            hst_lsb: 0.0,
            lst_msb: 0.05,
            lst_lsb: 0.0,
        };
        let lsb_only = BitFlipRates {
            hst_msb: 0.0,
            hst_lsb: 0.05,
            lst_msb: 0.0,
            lst_lsb: 0.05,
        };
        let mean_abs_err = |rates: BitFlipRates| {
            let mut inj = ProbabilisticFaults::new(rates, 11);
            let mut total = 0.0f64;
            let n = 5000;
            for i in 0..n {
                let v = 0.3 + (i as f32 % 7.0) * 0.1;
                let c = inj.corrupt(v, TokenGroup::HighScore);
                total += f64::from((c - v).abs());
            }
            total / n as f64
        };
        assert!(mean_abs_err(msb_only) > 10.0 * mean_abs_err(lsb_only));
    }

    #[test]
    fn corrupted_values_stay_finite() {
        let mut inj = ProbabilisticFaults::new(BitFlipRates::uniform(0.2), 13);
        for i in 0..2000 {
            let v = (i as f32 - 1000.0) * 0.05;
            assert!(inj.corrupt(v, TokenGroup::HighScore).is_finite());
        }
    }

    #[test]
    fn lane_streams_are_independent_of_visit_order() {
        let rates = BitFlipRates::uniform(0.3);
        let run = |head_order: &[usize]| -> (Vec<Vec<u32>>, FaultStats) {
            let mut inj = ProbabilisticFaults::new(rates, 5);
            let mut per_head = vec![Vec::new(); 3];
            for &h in head_order {
                inj.begin_lane(0, h);
                for i in 0..16 {
                    let v = 0.1 + i as f32 * 0.05;
                    per_head[h].push(inj.corrupt(v, TokenGroup::LowScore).to_bits());
                }
            }
            (per_head, inj.stats())
        };
        assert_eq!(run(&[0, 1, 2]), run(&[2, 0, 1]));
    }

    #[test]
    fn split_lanes_matches_begin_lane_streams() {
        let rates = BitFlipRates::uniform(0.25);
        let draw = |inj: &mut dyn FaultInjector| -> Vec<u32> {
            (0..8)
                .map(|i| inj.corrupt(i as f32 * 0.1, TokenGroup::HighScore).to_bits())
                .collect()
        };
        let sequential = {
            let mut inj = ProbabilisticFaults::new(rates, 9);
            let mut outs = Vec::new();
            for h in 0..4 {
                inj.begin_lane(1, h);
                outs.push(draw(&mut inj));
            }
            (outs, inj.stats())
        };
        let split = {
            let mut inj = ProbabilisticFaults::new(rates, 9);
            let mut outs = vec![Vec::new(); 4];
            // Visit the split handles in reverse to prove order irrelevance.
            for (h, lane) in inj.split_lanes(1, 4).unwrap().into_iter().enumerate().rev() {
                outs[h] = draw(lane);
            }
            (outs, inj.stats())
        };
        assert_eq!(sequential, split);
    }

    #[test]
    fn default_split_lanes_is_none() {
        let mut inj = NoFaults;
        assert!(inj.split_lanes(0, 4).is_none());
    }

    #[test]
    fn significance_of_bit_boundaries() {
        assert_eq!(SignificanceGroup::of_bit(0), SignificanceGroup::Lsb);
        assert_eq!(SignificanceGroup::of_bit(7), SignificanceGroup::Lsb);
        assert_eq!(SignificanceGroup::of_bit(8), SignificanceGroup::Msb);
        assert_eq!(SignificanceGroup::of_bit(15), SignificanceGroup::Msb);
    }

    #[test]
    fn rates_accessors() {
        let r = BitFlipRates {
            hst_msb: 0.1,
            hst_lsb: 0.2,
            lst_msb: 0.3,
            lst_lsb: 0.4,
        };
        assert_eq!(r.rate(TokenGroup::HighScore, SignificanceGroup::Msb), 0.1);
        assert_eq!(r.rate(TokenGroup::LowScore, SignificanceGroup::Lsb), 0.4);
        assert!((r.average() - 0.25).abs() < 1e-9);
    }
}
