//! # kelle-model
//!
//! A functional transformer-decoder **surrogate LLM** with pluggable KV-cache
//! backends and fault injection.
//!
//! The Kelle paper evaluates its KV-cache management algorithms (AERP) and its
//! eDRAM refresh policy (2DRP) on LLaMA-2/3, Mistral, Qwen2 and OPT checkpoints.
//! Those checkpoints (and the GPU hours to run them) are not available in this
//! environment, so this crate provides the closest synthetic equivalent that
//! exercises the same code paths:
//!
//! * a real multi-head self-attention decoder operating on per-head KV caches,
//!   with the exact computation of the paper's Eq. 1 and Eq. 2 (including the
//!   permutation invariance of KV pairs that AERP exploits);
//! * architectural shapes taken from the real models ([`ModelConfig`]) and a
//!   documented `surrogate` scale-down used for functional simulation;
//! * synthetically structured weights producing heavy-tailed, sink-biased
//!   attention-score distributions (the empirical property behind H2O,
//!   StreamingLLM and AERP);
//! * hooks for KV-cache policies ([`KvCacheBackend`]) and for bit-level
//!   retention-fault injection ([`FaultInjector`]) at cache-read time;
//! * fidelity metrics (perplexity proxy, divergence, top-1 agreement) computed
//!   against the full-cache, fault-free reference run.
//!
//! See `DESIGN.md` §2 for the substitution rationale.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod attention;
pub mod cache;
pub mod config;
pub mod decoder;
pub mod fault;
pub mod generation;
pub mod hash;
pub mod metrics;
pub mod segment;
pub mod weights;

pub use arena::{ArenaGrid, InputSlab, KvArena, SharedKv};
pub use attention::{AttentionOutput, DecodeScratch, MultiHeadAttention};
pub use cache::{
    CacheEntry, CacheStats, EntryPayload, EntryRef, FullKvCache, KvCacheBackend, PayloadRef,
    TokenId,
};
pub use config::{ModelConfig, ModelKind, SurrogateDims};
pub use decoder::{DecoderLayer, SurrogateModel};
pub use fault::{
    FaultInjector, FaultStats, NoFaults, ProbabilisticFaults, SignificanceGroup, TokenGroup,
};
pub use generation::{
    DecodeStep, DecodeTrace, GenerationConfig, GenerationOutput, GenerationState, StepRecord,
};
pub use hash::{FastHashMap, FastHashSet};
pub use metrics::{FidelityAccumulator, FidelityMetrics};
pub use segment::{SegmentRecorder, SharedSegment};

/// Crate-wide result alias (errors are tensor-shaped failures from the substrate).
pub type Result<T> = std::result::Result<T, kelle_tensor::TensorError>;

// ---------------------------------------------------------------------------
// Send/Sync audit
// ---------------------------------------------------------------------------
//
// The threaded serving front-end (`kelle::parallel`) moves per-session state
// (cache backends over arenas, the fault-RNG stream, the generation cursor)
// onto worker threads and shares published prefix segments across them
// through `Arc`s.  These compile-time assertions pin the thread-safety
// contract of every type that crosses that boundary, so an accidental
// `Rc`/`Cell` in a future refactor fails the build here — with a comment —
// instead of surfacing as an inscrutable auto-trait error in `kelle-core`.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    // Arena storage: owned flat buffers; shared prefix bases are reached
    // through `Arc<ArenaGrid>`, which needs `ArenaGrid: Send + Sync`.
    assert_send_sync::<arena::KvArena>();
    assert_send_sync::<arena::ArenaGrid>();
    assert_send_sync::<arena::SharedKv>();
    assert_send_sync::<arena::InputSlab>();
    // Published prefix segments are read concurrently by hit sessions.
    assert_send_sync::<segment::SharedSegment>();
    // The model itself is shared by reference across all workers.
    assert_send_sync::<decoder::SurrogateModel>();
    // Per-session state is owned by (and moves between) worker shards.
    assert_send::<fault::ProbabilisticFaults>();
    assert_send::<fault::NoFaults>();
    assert_send::<generation::GenerationState>();
    // Cache backends additionally share `&self` across workers during the
    // intra-session per-head fan-out (the `KvCacheBackend: Sync` bound).
    assert_send_sync::<cache::FullKvCache>();
};
