//! Fast, deterministic hashing for the cache bookkeeping maps.
//!
//! The decode hot path performs thousands of map lookups per step — token →
//! importance score, `(layer, head)` → arena, token → input-slab slot — all
//! keyed by small integers.  `std`'s default SipHash is DoS-resistant but
//! costs tens of nanoseconds per lookup, which measurably dominates the
//! per-entry arithmetic (a `head_dim`-wide dot product).  The maps here are
//! keyed by internal sequence positions, never attacker-controlled data, so
//! the policies use a Fibonacci-multiplicative hasher instead: one
//! `wrapping_mul` per word, deterministic across runs (which also keeps map
//! iteration order reproducible between builds).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for small integer keys (Fibonacci hashing with an
/// xor fold per word).  Not DoS-resistant — use only for maps keyed by
/// internal ids.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

/// 2^64 / φ, the classic Fibonacci-hashing multiplier.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (composite keys hash their parts through the
        // word-sized fast paths below; this handles anything else).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PHI);
        }
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(PHI);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }
}

/// `HashMap` with the deterministic [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the deterministic [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_and_are_deterministic() {
        let mut a: FastHashMap<(usize, usize), usize> = FastHashMap::default();
        let mut b: FastHashMap<(usize, usize), usize> = FastHashMap::default();
        for i in 0..1000 {
            a.insert((i % 7, i), i);
            b.insert((i % 7, i), i);
        }
        assert_eq!(a.len(), 1000);
        assert_eq!(a.get(&(3, 3)), Some(&3));
        // Deterministic hasher: identical insertion sequences iterate
        // identically.
        let ka: Vec<_> = a.keys().copied().collect();
        let kb: Vec<_> = b.keys().copied().collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn set_basics() {
        let mut s: FastHashSet<usize> = FastHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(&42));
        assert!(s.remove(&42));
        assert!(s.is_empty());
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let build: BuildHasherDefault<FastHasher> = BuildHasherDefault::default();
        let mut hashes: Vec<u64> = (0..4096usize).map(|i| build.hash_one(i)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(
            hashes.len(),
            4096,
            "multiplicative hash must be injective here"
        );
    }
}
