//! Fidelity metrics against the full-cache, fault-free reference.
//!
//! Real perplexity and task accuracy require the actual model checkpoints and
//! datasets.  The reproduction instead measures how much a configuration
//! (eviction policy, quantization, retention faults) perturbs the surrogate
//! model's output distribution relative to an exact reference run, and reports
//! three quantities:
//!
//! * **PPL proxy** — `exp(mean cross-entropy)` of the test configuration's
//!   next-token distribution evaluated at the token the *reference* predicts.
//!   The reference's own PPL proxy plays the role of the FP16 row of Table 2;
//!   corruption can only increase it.
//! * **mean KL divergence** between reference and test distributions.
//! * **top-1 agreement** — the fraction of steps where both configurations
//!   predict the same next token; used to derive task-accuracy proxies
//!   (a configuration that always agrees with the uncompressed model would get
//!   the same answers on a downstream task).

use kelle_tensor::ops;
use serde::{Deserialize, Serialize};

/// Final fidelity numbers for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityMetrics {
    /// `exp(mean cross-entropy)` against the reference-predicted tokens.
    pub ppl_proxy: f64,
    /// Mean KL divergence `KL(reference || test)` per decoding step.
    pub mean_kl: f64,
    /// Fraction of steps where the test configuration's top-1 prediction
    /// matches the reference.
    pub top1_agreement: f64,
    /// Number of decoding steps accumulated.
    pub steps: usize,
}

impl FidelityMetrics {
    /// Derives a task-accuracy proxy by scaling a published baseline accuracy
    /// with the top-1 agreement of this run.
    ///
    /// The rationale: on a discriminative task, the compressed model can only
    /// change the answer on steps where its prediction diverges from the
    /// reference, so `baseline * agreement + chance * (1 - agreement)` bounds
    /// the expected accuracy (with `chance` the random-guess accuracy).
    pub fn accuracy_proxy(&self, baseline_accuracy: f64, chance_accuracy: f64) -> f64 {
        baseline_accuracy * self.top1_agreement + chance_accuracy * (1.0 - self.top1_agreement)
    }

    /// Derives a generative-quality proxy (e.g. ROUGE-like score) from the
    /// baseline score, degraded by the average distributional drift.
    pub fn quality_proxy(&self, baseline_score: f64) -> f64 {
        let drift_penalty = (self.mean_kl).min(1.0);
        baseline_score * (1.0 - 0.25 * drift_penalty) * self.top1_agreement.max(0.5)
    }
}

/// Accumulates fidelity statistics step by step.
#[derive(Debug, Clone, Default)]
pub struct FidelityAccumulator {
    sum_ce: f64,
    sum_kl: f64,
    top1_matches: usize,
    steps: usize,
}

impl FidelityAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decoding step.
    ///
    /// `reference_probs` is the reference configuration's next-token
    /// distribution, `test_probs` the distribution under the configuration
    /// being evaluated.
    ///
    /// # Panics
    ///
    /// Panics if the two distributions have different lengths or are empty.
    pub fn record(&mut self, reference_probs: &[f32], test_probs: &[f32]) {
        assert_eq!(reference_probs.len(), test_probs.len());
        assert!(!reference_probs.is_empty());
        let ref_top1 = argmax(reference_probs);
        let test_top1 = argmax(test_probs);
        self.sum_ce += f64::from(ops::cross_entropy(test_probs, ref_top1));
        self.sum_kl += f64::from(ops::kl_divergence(reference_probs, test_probs));
        if ref_top1 == test_top1 {
            self.top1_matches += 1;
        }
        self.steps += 1;
    }

    /// Number of steps recorded so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Finalizes the metrics.
    ///
    /// Returns conservative defaults (`ppl_proxy = inf`) if no steps were
    /// recorded.
    pub fn finish(&self) -> FidelityMetrics {
        if self.steps == 0 {
            return FidelityMetrics {
                ppl_proxy: f64::INFINITY,
                mean_kl: f64::INFINITY,
                top1_agreement: 0.0,
                steps: 0,
            };
        }
        let n = self.steps as f64;
        FidelityMetrics {
            ppl_proxy: (self.sum_ce / n).exp(),
            mean_kl: self.sum_kl / n,
            top1_agreement: self.top1_matches as f64 / n,
            steps: self.steps,
        }
    }
}

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_runs_have_perfect_agreement() {
        let mut acc = FidelityAccumulator::new();
        let probs = ops::softmax(&[0.2, 1.5, -0.3, 0.9]);
        for _ in 0..10 {
            acc.record(&probs, &probs);
        }
        let m = acc.finish();
        assert_eq!(m.top1_agreement, 1.0);
        assert!(m.mean_kl < 1e-6);
        assert_eq!(m.steps, 10);
    }

    #[test]
    fn corrupted_runs_have_higher_ppl() {
        let reference = ops::softmax(&[3.0, 0.0, 0.0, 0.0]);
        let good = ops::softmax(&[2.8, 0.1, 0.0, 0.0]);
        let bad = ops::softmax(&[0.0, 0.0, 3.0, 0.0]);

        let mut acc_good = FidelityAccumulator::new();
        let mut acc_bad = FidelityAccumulator::new();
        for _ in 0..5 {
            acc_good.record(&reference, &good);
            acc_bad.record(&reference, &bad);
        }
        let mg = acc_good.finish();
        let mb = acc_bad.finish();
        assert!(mb.ppl_proxy > mg.ppl_proxy);
        assert!(mb.mean_kl > mg.mean_kl);
        assert!(mb.top1_agreement < mg.top1_agreement);
    }

    #[test]
    fn empty_accumulator_is_conservative() {
        let m = FidelityAccumulator::new().finish();
        assert!(m.ppl_proxy.is_infinite());
        assert_eq!(m.top1_agreement, 0.0);
    }

    #[test]
    fn accuracy_proxy_interpolates() {
        let m = FidelityMetrics {
            ppl_proxy: 6.0,
            mean_kl: 0.1,
            top1_agreement: 0.9,
            steps: 100,
        };
        let acc = m.accuracy_proxy(80.0, 25.0);
        assert!(acc < 80.0 && acc > 70.0);
        let perfect = FidelityMetrics {
            top1_agreement: 1.0,
            ..m
        };
        assert!((perfect.accuracy_proxy(80.0, 25.0) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn quality_proxy_degrades_with_divergence() {
        let good = FidelityMetrics {
            ppl_proxy: 5.0,
            mean_kl: 0.01,
            top1_agreement: 0.98,
            steps: 10,
        };
        let bad = FidelityMetrics {
            ppl_proxy: 30.0,
            mean_kl: 2.0,
            top1_agreement: 0.6,
            steps: 10,
        };
        assert!(good.quality_proxy(40.0) > bad.quality_proxy(40.0));
    }
}
