//! QuaRot-style low-bit KV-cache quantization baseline.
//!
//! QuaRot (Ashkboos et al., cited as \[6\] in the paper) removes activation
//! outliers with Hadamard rotations and quantizes the KV cache to 4 bits.  The
//! paper uses it as the *quantization* point of comparison against eviction
//! policies, configured so that the storage budgets match (§7.1: eviction
//! baselines keep `N'` tokens at 16 bits, QuaRot keeps all tokens at 4 bits).
//!
//! The reproduction keeps the essential mechanism — per-vector symmetric
//! quantization of stored keys/values to a configurable bit width, with
//! dequantization on every read — and omits the Hadamard rotation (the
//! surrogate model has no outlier structure to remove; the quantization error
//! itself is what drives the accuracy comparison).

use kelle_model::{CacheEntry, CacheStats, EntryPayload, KvCacheBackend, TokenId};
use kelle_tensor::{QuantFormat, QuantizedVector};
use std::collections::HashMap;

/// Quantized (token, key, value) entries stored for one `(layer, head)`.
type QuantizedEntries = Vec<(TokenId, QuantizedVector, QuantizedVector)>;

/// A full-retention KV cache that stores keys and values in a low-bit format.
#[derive(Debug)]
pub struct QuaRotKvCache {
    format: QuantFormat,
    store: HashMap<(usize, usize), QuantizedEntries>,
    insertions: u64,
}

impl QuaRotKvCache {
    /// Creates a cache storing KV vectors in the given format (the paper's
    /// baseline uses [`QuantFormat::Int4`]).
    pub fn new(format: QuantFormat) -> Self {
        QuaRotKvCache {
            format,
            store: HashMap::new(),
            insertions: 0,
        }
    }

    /// Convenience constructor for the 4-bit configuration used in Table 2.
    pub fn int4() -> Self {
        Self::new(QuantFormat::Int4)
    }

    /// Convenience constructor for the 8-bit configuration used in Table 6
    /// (W4A8: activations and KV at 8 bits).
    pub fn int8() -> Self {
        Self::new(QuantFormat::Int8)
    }

    /// The storage format used for KV vectors.
    pub fn format(&self) -> QuantFormat {
        self.format
    }
}

impl KvCacheBackend for QuaRotKvCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        _x: &[f32],
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
    ) {
        for (head, (k, v)) in keys.iter().zip(values.iter()).enumerate() {
            let qk = QuantizedVector::quantize(k, self.format)
                .expect("key vectors are non-empty by construction");
            let qv = QuantizedVector::quantize(v, self.format)
                .expect("value vectors are non-empty by construction");
            self.store
                .entry((layer, head))
                .or_default()
                .push((token, qk, qv));
        }
        self.insertions += 1;
    }

    fn entries(&self, layer: usize, head: usize) -> Vec<CacheEntry> {
        self.store
            .get(&(layer, head))
            .map(|entries| {
                entries
                    .iter()
                    .map(|(token, qk, qv)| CacheEntry {
                        token: *token,
                        payload: EntryPayload::Kv {
                            key: qk.dequantize(),
                            value: qv.dequantize(),
                        },
                        high_score: true,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn observe_attention(&mut self, _layer: usize, _head: usize, _scores: &[(TokenId, f32)]) {
        // Quantization-only baseline: no score bookkeeping.
    }

    fn stats(&self) -> CacheStats {
        let kv_entries: usize = self.store.values().map(Vec::len).sum();
        let bytes: usize = self
            .store
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, qk, qv)| qk.storage_bytes() + qv.storage_bytes())
            .sum();
        CacheStats {
            kv_entries,
            recompute_entries: 0,
            evictions: 0,
            insertions: self.insertions,
            bytes_fp16: bytes,
        }
    }

    fn name(&self) -> &'static str {
        match self.format {
            QuantFormat::Int4 => "quarot-kv4",
            QuantFormat::Int8 => "quarot-kv8",
            _ => "quarot-kv16",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_token(cache: &mut QuaRotKvCache, token: usize) {
        let key = vec![0.31 * (token as f32 + 1.0); 8];
        let value = vec![-0.17 * (token as f32 + 1.0); 8];
        cache.insert(0, token, &[0.0; 8], &[key], &[value]);
    }

    #[test]
    fn retains_all_tokens() {
        let mut cache = QuaRotKvCache::int4();
        for t in 0..20 {
            insert_token(&mut cache, t);
        }
        assert_eq!(cache.entries(0, 0).len(), 20);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn dequantized_values_are_close_to_original() {
        let mut cache = QuaRotKvCache::int8();
        insert_token(&mut cache, 3);
        let entries = cache.entries(0, 0);
        let EntryPayload::Kv { key, .. } = &entries[0].payload else {
            panic!("expected KV payload");
        };
        for k in key {
            assert!((k - 0.31 * 4.0).abs() < 0.02);
        }
    }

    #[test]
    fn int4_uses_quarter_the_storage_of_fp16() {
        let mut cache4 = QuaRotKvCache::int4();
        let mut cache16 = QuaRotKvCache::new(QuantFormat::Fp16);
        for t in 0..8 {
            insert_token(&mut cache4, t);
            insert_token(&mut cache16, t);
        }
        assert_eq!(cache4.stats().bytes_fp16 * 4, cache16.stats().bytes_fp16);
    }

    #[test]
    fn names_reflect_format() {
        assert_eq!(QuaRotKvCache::int4().name(), "quarot-kv4");
        assert_eq!(QuaRotKvCache::int8().name(), "quarot-kv8");
    }
}
