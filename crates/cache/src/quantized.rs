//! QuaRot-style low-bit KV-cache quantization baseline.
//!
//! QuaRot (Ashkboos et al., cited as \[6\] in the paper) removes activation
//! outliers with Hadamard rotations and quantizes the KV cache to 4 bits.  The
//! paper uses it as the *quantization* point of comparison against eviction
//! policies, configured so that the storage budgets match (§7.1: eviction
//! baselines keep `N'` tokens at 16 bits, QuaRot keeps all tokens at 4 bits).
//!
//! The reproduction keeps the essential mechanism — per-vector symmetric
//! quantization of stored keys/values to a configurable bit width, with the
//! quantization error visible to every read — and omits the Hadamard rotation
//! (the surrogate model has no outlier structure to remove; the quantization
//! error itself is what drives the accuracy comparison).
//!
//! Storage-wise the backend keeps the *dequantized image* of every vector in
//! a contiguous [`KvArena`](kelle_model::KvArena) per `(layer, head)`: quantize-then-dequantize is
//! deterministic, so materializing it once at insert time yields bit-for-bit
//! the values the old dequantize-on-every-read implementation produced, while
//! reads become borrowed slices.  [`CacheStats::bytes_fp16`] still reports
//! the *quantized* footprint (`bytes_for(head_dim)` per stored vector) — the
//! quantity the eDRAM capacity model consumes.

use kelle_model::{ArenaGrid, CacheStats, EntryRef, KvCacheBackend, PayloadRef, TokenId};
use kelle_tensor::{QuantFormat, QuantizedVector};

/// A full-retention KV cache that stores keys and values in a low-bit format.
#[derive(Debug, Clone)]
pub struct QuaRotKvCache {
    format: QuantFormat,
    /// Dequantized image of the stored vectors, contiguous per (layer, head).
    store: ArenaGrid,
    insertions: u64,
}

impl QuaRotKvCache {
    /// Creates a cache storing KV vectors in the given format (the paper's
    /// baseline uses [`QuantFormat::Int4`]).
    pub fn new(format: QuantFormat) -> Self {
        QuaRotKvCache {
            format,
            store: ArenaGrid::new(),
            insertions: 0,
        }
    }

    /// Convenience constructor for the 4-bit configuration used in Table 2.
    pub fn int4() -> Self {
        Self::new(QuantFormat::Int4)
    }

    /// Convenience constructor for the 8-bit configuration used in Table 6
    /// (W4A8: activations and KV at 8 bits).
    pub fn int8() -> Self {
        Self::new(QuantFormat::Int8)
    }

    /// The storage format used for KV vectors.
    pub fn format(&self) -> QuantFormat {
        self.format
    }
}

impl KvCacheBackend for QuaRotKvCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        _x: &[f32],
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) {
        for (head, (k, v)) in keys
            .chunks_exact(head_dim)
            .zip(values.chunks_exact(head_dim))
            .enumerate()
        {
            let qk = QuantizedVector::quantize(k, self.format)
                .expect("key vectors are non-empty by construction");
            let qv = QuantizedVector::quantize(v, self.format)
                .expect("value vectors are non-empty by construction");
            self.store.get_or_create(layer, head, head_dim).push(
                token,
                &qk.dequantize(),
                &qv.dequantize(),
            );
        }
        self.insertions += 1;
    }

    fn for_each_entry(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(EntryRef<'e>),
    ) {
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        for i in 0..arena.len() {
            visit(EntryRef {
                token: arena.token_at(i),
                payload: PayloadRef::Kv {
                    key: arena.key(i),
                    value: arena.value(i),
                },
                high_score: true,
            });
        }
    }

    fn for_each_payload(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(PayloadRef<'e>),
    ) {
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        for i in 0..arena.len() {
            visit(PayloadRef::Kv {
                key: arena.key(i),
                value: arena.value(i),
            });
        }
    }

    fn entry_count(&self, layer: usize, head: usize) -> usize {
        self.store.get(layer, head).map_or(0, |a| a.len())
    }

    fn observe_attention(&mut self, _layer: usize, _head: usize, _scores: &[(TokenId, f32)]) {
        // Quantization-only baseline: no score bookkeeping.
    }

    fn stats(&self) -> CacheStats {
        let kv_entries = self.store.total_entries();
        // Quantized footprint of the live entries: two vectors of `head_dim`
        // codes each, at the format's bit width.  Always private: the stored
        // dequantized image differs from the raw projections a shared prefix
        // publishes, so this backend keeps the default (no-op)
        // `attach_shared_prefix` and replays prefix hits into private
        // storage — the prefill *compute* is still skipped.
        let bytes: usize = self
            .store
            .iter()
            .map(|(_, arena)| arena.len() * 2 * self.format.bytes_for(arena.head_dim()))
            .sum();
        CacheStats::with_split(kv_entries, 0, 0, self.insertions, 0, bytes)
    }

    fn name(&self) -> &'static str {
        match self.format {
            QuantFormat::Int4 => "quarot-kv4",
            QuantFormat::Int8 => "quarot-kv8",
            _ => "quarot-kv16",
        }
    }

    fn clone_box(&self) -> Box<dyn KvCacheBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle_model::EntryPayload;

    fn insert_token(cache: &mut QuaRotKvCache, token: usize) {
        let key = vec![0.31 * (token as f32 + 1.0); 8];
        let value = vec![-0.17 * (token as f32 + 1.0); 8];
        cache.insert(0, token, &[0.0; 8], &key, &value, 8);
    }

    #[test]
    fn retains_all_tokens() {
        let mut cache = QuaRotKvCache::int4();
        for t in 0..20 {
            insert_token(&mut cache, t);
        }
        assert_eq!(cache.entries(0, 0).len(), 20);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn dequantized_values_are_close_to_original() {
        let mut cache = QuaRotKvCache::int8();
        insert_token(&mut cache, 3);
        let entries = cache.entries(0, 0);
        let EntryPayload::Kv { key, .. } = &entries[0].payload else {
            panic!("expected KV payload");
        };
        for k in key {
            assert!((k - 0.31 * 4.0).abs() < 0.02);
        }
    }

    #[test]
    fn stored_image_matches_fresh_dequantization() {
        // The arena keeps dequantize(quantize(x)); a fresh round trip must
        // reproduce it bit for bit (determinism of the quantizer).
        let mut cache = QuaRotKvCache::int4();
        let key = vec![0.9, -0.4, 0.12, 0.7];
        let value = vec![-0.2, 0.33, 0.5, -0.9];
        cache.insert(0, 0, &[0.0; 4], &key, &value, 4);
        let fresh = QuantizedVector::quantize(&key, QuantFormat::Int4)
            .unwrap()
            .dequantize();
        let entries = cache.entries(0, 0);
        let EntryPayload::Kv { key: stored, .. } = &entries[0].payload else {
            panic!("expected KV payload");
        };
        assert_eq!(
            stored.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            fresh.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn int4_uses_quarter_the_storage_of_fp16() {
        let mut cache4 = QuaRotKvCache::int4();
        let mut cache16 = QuaRotKvCache::new(QuantFormat::Fp16);
        for t in 0..8 {
            insert_token(&mut cache4, t);
            insert_token(&mut cache16, t);
        }
        assert_eq!(cache4.stats().bytes_fp16 * 4, cache16.stats().bytes_fp16);
    }

    #[test]
    fn names_reflect_format() {
        assert_eq!(QuaRotKvCache::int4().name(), "quarot-kv4");
        assert_eq!(QuaRotKvCache::int8().name(), "quarot-kv8");
    }
}
