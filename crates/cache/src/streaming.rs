//! StreamingLLM-style cache: attention sinks + a sliding recent window.
//!
//! StreamingLLM (Xiao et al., cited as \[83\] in the paper) observes that the
//! first few tokens of a sequence act as *attention sinks* and must be kept,
//! and otherwise retains only the most recent tokens.  It requires no score
//! bookkeeping, which makes it cheap but lossy on tasks that need long-range
//! retrieval — exactly the behaviour Table 2 shows (large WK2/A-e degradation
//! relative to H2O and Kelle).
//!
//! Storage is one contiguous [`KvArena`](kelle_model::KvArena) per `(layer, head)`; evictions
//! splice the arena in place (order-preserving), so reads are borrowed slices
//! and steady-state decoding allocates nothing.

use crate::budget::CacheBudget;
use kelle_model::{ArenaGrid, CacheStats, EntryRef, KvCacheBackend, PayloadRef, TokenId};

/// The StreamingLLM cache policy.
#[derive(Debug, Clone)]
pub struct StreamingLlmCache {
    budget: CacheBudget,
    /// (layer, head) -> retained entries in insertion order.
    store: ArenaGrid,
    evictions: u64,
    insertions: u64,
}

impl StreamingLlmCache {
    /// Creates a StreamingLLM cache with the given budget.  The effective
    /// retained set is `sink_tokens` + the most recent tokens up to
    /// `max_tokens` total.
    pub fn new(budget: CacheBudget) -> Self {
        StreamingLlmCache {
            budget,
            store: ArenaGrid::new(),
            evictions: 0,
            insertions: 0,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    fn enforce(&mut self, layer: usize, head: usize) {
        let sink = self.budget.sink_tokens;
        let max = self.budget.max_tokens;
        if let Some(arena) = self.store.get_mut(layer, head) {
            while arena.len() > max {
                // Evict the oldest non-sink entry.  (Under prefix sharing,
                // an eviction inside the shared region privatizes the arena
                // first — copy-on-evict — so the shared copy never mutates.)
                let victim_index = arena.position_where(|t| t >= sink).unwrap_or(0);
                arena.remove_at(victim_index);
                self.evictions += 1;
            }
        }
    }
}

impl KvCacheBackend for StreamingLlmCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        _x: &[f32],
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) {
        for (head, (k, v)) in keys
            .chunks_exact(head_dim)
            .zip(values.chunks_exact(head_dim))
            .enumerate()
        {
            self.store
                .get_or_create(layer, head, head_dim)
                .push(token, k, v);
            self.enforce(layer, head);
        }
        self.insertions += 1;
    }

    fn for_each_entry(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(EntryRef<'e>),
    ) {
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        for i in 0..arena.len() {
            let token = arena.token_at(i);
            visit(EntryRef {
                token,
                payload: PayloadRef::Kv {
                    key: arena.key(i),
                    value: arena.value(i),
                },
                // StreamingLLM keeps no score state; sinks and recent
                // tokens are its notion of "important".
                high_score: token < self.budget.sink_tokens,
            });
        }
    }

    fn for_each_payload(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(PayloadRef<'e>),
    ) {
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        for i in 0..arena.len() {
            visit(PayloadRef::Kv {
                key: arena.key(i),
                value: arena.value(i),
            });
        }
    }

    fn entry_count(&self, layer: usize, head: usize) -> usize {
        self.store.get(layer, head).map_or(0, |a| a.len())
    }

    fn observe_attention(&mut self, _layer: usize, _head: usize, _scores: &[(TokenId, f32)]) {
        // StreamingLLM ignores attention scores by design.
    }

    fn attach_shared_prefix(&mut self, prefix: &kelle_model::SharedKv) {
        // Raw KV in insertion order: replayed prefix inserts adopt the
        // shared entries.  When the budget covers the prefix, sharing
        // survives until a later eviction reaches into it (copy-on-evict);
        // with a budget below the prefix length the replay itself evicts and
        // the arena privatizes immediately.
        self.store.attach_base(prefix);
    }

    fn stats(&self) -> CacheStats {
        CacheStats::with_split(
            self.store.total_entries(),
            0,
            self.evictions,
            self.insertions,
            self.store.shared_bytes_fp16(),
            self.store.private_bytes_fp16(),
        )
    }

    fn name(&self) -> &'static str {
        "streaming-llm"
    }

    fn clone_box(&self) -> Box<dyn KvCacheBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_token(cache: &mut StreamingLlmCache, token: usize, heads: usize) {
        let keys: Vec<f32> = (0..heads)
            .flat_map(|h| vec![token as f32 + h as f32; 4])
            .collect();
        let values = keys.clone();
        cache.insert(0, token, &[0.0; 8], &keys, &values, 4);
    }

    #[test]
    fn respects_budget() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(4).with_sink_tokens(1));
        for t in 0..10 {
            insert_token(&mut cache, t, 2);
        }
        for head in 0..2 {
            let entries = cache.entries(0, head);
            assert_eq!(entries.len(), 4);
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn keeps_sinks_and_recent() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(4).with_sink_tokens(2));
        for t in 0..12 {
            insert_token(&mut cache, t, 1);
        }
        let tokens: Vec<usize> = cache.entries(0, 0).iter().map(|e| e.token).collect();
        // The two sinks plus the two most recent tokens.
        assert!(tokens.contains(&0));
        assert!(tokens.contains(&1));
        assert!(tokens.contains(&11));
        assert!(tokens.contains(&10));
        assert!(!tokens.contains(&5));
    }

    #[test]
    fn under_budget_keeps_everything() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(16));
        for t in 0..8 {
            insert_token(&mut cache, t, 1);
        }
        assert_eq!(cache.entries(0, 0).len(), 8);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn sink_entries_marked_high_score() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(8).with_sink_tokens(1));
        for t in 0..4 {
            insert_token(&mut cache, t, 1);
        }
        let entries = cache.entries(0, 0);
        assert!(entries.iter().find(|e| e.token == 0).unwrap().high_score);
        assert!(!entries.iter().find(|e| e.token == 3).unwrap().high_score);
    }

    #[test]
    fn bytes_reflect_live_entries_not_retired_capacity() {
        // Regression for the stats contract: after heavy eviction churn the
        // reported footprint must be stride × live entries, not the peak the
        // arena buffers grew to.
        let mut cache = StreamingLlmCache::new(CacheBudget::new(4).with_sink_tokens(1));
        for t in 0..64 {
            insert_token(&mut cache, t, 1);
        }
        let stats = cache.stats();
        assert_eq!(stats.kv_entries, 4);
        // 4 entries × 2 vectors × 4 elements × 2 bytes.
        assert_eq!(stats.bytes_fp16, 4 * 2 * 4 * 2);
    }

    #[test]
    fn name_and_stats() {
        let cache = StreamingLlmCache::new(CacheBudget::new(4));
        assert_eq!(cache.name(), "streaming-llm");
        assert_eq!(cache.stats().kv_entries, 0);
    }
}
