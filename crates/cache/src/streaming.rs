//! StreamingLLM-style cache: attention sinks + a sliding recent window.
//!
//! StreamingLLM (Xiao et al., cited as \[83\] in the paper) observes that the
//! first few tokens of a sequence act as *attention sinks* and must be kept,
//! and otherwise retains only the most recent tokens.  It requires no score
//! bookkeeping, which makes it cheap but lossy on tasks that need long-range
//! retrieval — exactly the behaviour Table 2 shows (large WK2/A-e degradation
//! relative to H2O and Kelle).

use crate::budget::CacheBudget;
use kelle_model::{CacheEntry, CacheStats, EntryPayload, KvCacheBackend, TokenId};
use std::collections::HashMap;

/// Per-head stored KV pair.
#[derive(Debug, Clone)]
struct Stored {
    token: TokenId,
    key: Vec<f32>,
    value: Vec<f32>,
}

/// The StreamingLLM cache policy.
#[derive(Debug)]
pub struct StreamingLlmCache {
    budget: CacheBudget,
    /// (layer, head) -> retained entries ordered by insertion.
    store: HashMap<(usize, usize), Vec<Stored>>,
    evictions: u64,
    insertions: u64,
}

impl StreamingLlmCache {
    /// Creates a StreamingLLM cache with the given budget.  The effective
    /// retained set is `sink_tokens` + the most recent tokens up to
    /// `max_tokens` total.
    pub fn new(budget: CacheBudget) -> Self {
        StreamingLlmCache {
            budget,
            store: HashMap::new(),
            evictions: 0,
            insertions: 0,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    fn enforce(&mut self, layer: usize, head: usize) {
        let sink = self.budget.sink_tokens;
        let max = self.budget.max_tokens;
        if let Some(entries) = self.store.get_mut(&(layer, head)) {
            while entries.len() > max {
                // Evict the oldest non-sink entry.
                let victim_index = entries.iter().position(|e| e.token >= sink).unwrap_or(0);
                entries.remove(victim_index);
                self.evictions += 1;
            }
        }
    }
}

impl KvCacheBackend for StreamingLlmCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        _x: &[f32],
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
    ) {
        for (head, (k, v)) in keys.iter().zip(values.iter()).enumerate() {
            self.store.entry((layer, head)).or_default().push(Stored {
                token,
                key: k.clone(),
                value: v.clone(),
            });
            self.enforce(layer, head);
        }
        self.insertions += 1;
    }

    fn entries(&self, layer: usize, head: usize) -> Vec<CacheEntry> {
        self.store
            .get(&(layer, head))
            .map(|entries| {
                entries
                    .iter()
                    .map(|e| CacheEntry {
                        token: e.token,
                        payload: EntryPayload::Kv {
                            key: e.key.clone(),
                            value: e.value.clone(),
                        },
                        // StreamingLLM keeps no score state; sinks and recent
                        // tokens are its notion of "important".
                        high_score: e.token < self.budget.sink_tokens,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn observe_attention(&mut self, _layer: usize, _head: usize, _scores: &[(TokenId, f32)]) {
        // StreamingLLM ignores attention scores by design.
    }

    fn stats(&self) -> CacheStats {
        let kv_entries: usize = self.store.values().map(Vec::len).sum();
        let bytes: usize = self
            .store
            .values()
            .flat_map(|v| v.iter())
            .map(|e| 2 * (e.key.len() + e.value.len()))
            .sum();
        CacheStats {
            kv_entries,
            recompute_entries: 0,
            evictions: self.evictions,
            insertions: self.insertions,
            bytes_fp16: bytes,
        }
    }

    fn name(&self) -> &'static str {
        "streaming-llm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_token(cache: &mut StreamingLlmCache, token: usize, heads: usize) {
        let keys: Vec<Vec<f32>> = (0..heads)
            .map(|h| vec![token as f32 + h as f32; 4])
            .collect();
        let values = keys.clone();
        cache.insert(0, token, &[0.0; 8], &keys, &values);
    }

    #[test]
    fn respects_budget() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(4).with_sink_tokens(1));
        for t in 0..10 {
            insert_token(&mut cache, t, 2);
        }
        for head in 0..2 {
            let entries = cache.entries(0, head);
            assert_eq!(entries.len(), 4);
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn keeps_sinks_and_recent() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(4).with_sink_tokens(2));
        for t in 0..12 {
            insert_token(&mut cache, t, 1);
        }
        let tokens: Vec<usize> = cache.entries(0, 0).iter().map(|e| e.token).collect();
        // The two sinks plus the two most recent tokens.
        assert!(tokens.contains(&0));
        assert!(tokens.contains(&1));
        assert!(tokens.contains(&11));
        assert!(tokens.contains(&10));
        assert!(!tokens.contains(&5));
    }

    #[test]
    fn under_budget_keeps_everything() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(16));
        for t in 0..8 {
            insert_token(&mut cache, t, 1);
        }
        assert_eq!(cache.entries(0, 0).len(), 8);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn sink_entries_marked_high_score() {
        let mut cache = StreamingLlmCache::new(CacheBudget::new(8).with_sink_tokens(1));
        for t in 0..4 {
            insert_token(&mut cache, t, 1);
        }
        let entries = cache.entries(0, 0);
        assert!(entries.iter().find(|e| e.token == 0).unwrap().high_score);
        assert!(!entries.iter().find(|e| e.token == 3).unwrap().high_score);
    }

    #[test]
    fn name_and_stats() {
        let cache = StreamingLlmCache::new(CacheBudget::new(4));
        assert_eq!(cache.name(), "streaming-llm");
        assert_eq!(cache.stats().kv_entries, 0);
    }
}
