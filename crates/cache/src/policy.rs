//! The KV-cache policy registry.
//!
//! Every serving-time consumer of a cache backend — the engine, sessions, the
//! accuracy experiments, downstream tools — used to hand-roll its own
//! `Box::new(...)` match over the five policies.  [`CachePolicy`] centralises
//! that: it is a cheap, copyable description of *which* policy to run, and
//! [`CachePolicy::build`] is the single factory that turns a description plus
//! a [`CacheBudget`] into a ready [`KvCacheBackend`] trait object.

use crate::aerp::{AerpCache, AerpConfig};
use crate::budget::CacheBudget;
use crate::h2o::H2oCache;
use crate::quantized::QuaRotKvCache;
use crate::streaming::StreamingLlmCache;
use kelle_model::{FullKvCache, KvCacheBackend};
use serde::{Deserialize, Serialize};

/// A KV-cache management policy, by name.
///
/// The variants mirror the methods compared in the paper's Table 2; see the
/// backend types in this crate for the algorithmic details.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePolicy {
    /// Full FP16 KV retention (the reference; ignores the budget).
    Full,
    /// StreamingLLM: attention sinks + recent window.
    StreamingLlm,
    /// H2O: accumulated-attention heavy hitters + recent window.
    H2o,
    /// QuaRot-style 4-bit KV quantization with full token retention (ignores
    /// the budget).
    QuaRotInt4,
    /// Kelle's AERP: per-head eviction + popularity-driven recomputation.
    Aerp,
}

impl CachePolicy {
    /// All policies in the paper's Table 2 column order.
    pub fn all() -> [CachePolicy; 5] {
        [
            CachePolicy::Full,
            CachePolicy::StreamingLlm,
            CachePolicy::H2o,
            CachePolicy::QuaRotInt4,
            CachePolicy::Aerp,
        ]
    }

    /// Short display name (matches the backend's `name()`).
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::Full => "full",
            CachePolicy::StreamingLlm => "streaming-llm",
            CachePolicy::H2o => "h2o",
            CachePolicy::QuaRotInt4 => "quarot-kv4",
            CachePolicy::Aerp => "aerp",
        }
    }

    /// Whether the policy enforces a token budget (and therefore evicts).
    pub fn is_budgeted(self) -> bool {
        matches!(
            self,
            CachePolicy::StreamingLlm | CachePolicy::H2o | CachePolicy::Aerp
        )
    }

    /// Builds a ready-to-use backend for this policy.
    ///
    /// `budget` is consumed by the budgeted policies and ignored by `Full` /
    /// `QuaRotInt4`; `heads` is the surrogate attention-head count, needed by
    /// AERP's per-head bookkeeping.
    pub fn build(self, budget: CacheBudget, heads: usize) -> Box<dyn KvCacheBackend> {
        // Defensive normalisation: `CacheBudget`'s fields are public, so a
        // hand-assembled budget may over-protect; every backend built through
        // the registry gets a valid one.
        let budget = budget.clamped();
        match self {
            CachePolicy::Full => Box::new(FullKvCache::new()),
            CachePolicy::StreamingLlm => Box::new(StreamingLlmCache::new(budget)),
            CachePolicy::H2o => Box::new(H2oCache::new(budget)),
            CachePolicy::QuaRotInt4 => Box::new(QuaRotKvCache::int4()),
            CachePolicy::Aerp => Box::new(AerpCache::with_config(AerpConfig::new(budget), heads)),
        }
    }

    /// Builds a backend from a full AERP configuration when the policy is
    /// [`CachePolicy::Aerp`] (the ablation knobs only exist there); other
    /// policies fall back to [`CachePolicy::build`] with the config's budget.
    pub fn build_with_aerp_config(
        self,
        config: AerpConfig,
        heads: usize,
    ) -> Box<dyn KvCacheBackend> {
        match self {
            CachePolicy::Aerp => Box::new(AerpCache::with_config(config, heads)),
            other => other.build(config.budget, heads),
        }
    }
}

impl std::fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> CacheBudget {
        CacheBudget::new(8)
            .with_recent_window(2)
            .with_sink_tokens(1)
    }

    #[test]
    fn factory_names_match_backend_names() {
        for policy in CachePolicy::all() {
            let backend = policy.build(budget(), 4);
            assert_eq!(backend.name(), policy.name(), "{policy:?}");
        }
    }

    #[test]
    fn budgeted_policies_enforce_the_budget() {
        for policy in CachePolicy::all() {
            let mut backend = policy.build(budget(), 2);
            backend.finish_prefill(0);
            for t in 0..40 {
                let k: Vec<f32> = vec![t as f32; 8];
                backend.insert(0, t, &[t as f32; 8], &k, &k.clone(), 4);
                let scores: Vec<(usize, f32)> = backend
                    .entries(0, 0)
                    .iter()
                    .map(|e| (e.token, 0.1))
                    .collect();
                backend.observe_attention(0, 0, &scores);
            }
            let len = backend.entries(0, 0).len();
            if policy.is_budgeted() {
                assert!(len <= budget().max_tokens, "{policy:?} holds {len}");
            } else {
                assert_eq!(len, 40, "{policy:?}");
            }
        }
    }

    #[test]
    fn aerp_config_passthrough_disables_recompute() {
        let config = AerpConfig::new(budget()).without_recompute();
        let backend = CachePolicy::Aerp.build_with_aerp_config(config, 4);
        // Recomputation off is the AEP ablation baseline, and the backend
        // reports itself accordingly.
        assert_eq!(backend.name(), "aep");
        let other = CachePolicy::H2o.build_with_aerp_config(config, 4);
        assert_eq!(other.name(), "h2o");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CachePolicy::Aerp.to_string(), "aerp");
        assert_eq!(CachePolicy::QuaRotInt4.to_string(), "quarot-kv4");
    }
}
