//! H2O-style cache: accumulated-attention heavy hitters + a recent window.
//!
//! H2O (Zhang et al., cited as \[98\] in the paper) keeps the tokens with the
//! highest *accumulated* attention scores ("heavy hitters") alongside the most
//! recent tokens.  It is the closest prior policy to AERP: the difference is
//! that H2O neither stores input vectors for recomputation nor exploits
//! per-head popularity (§4.1.2), and in Kelle the score accumulation and
//! minimum search are offloaded to the systolic evictor rather than recomputed
//! on the host.
//!
//! Storage is one contiguous [`KvArena`](kelle_model::KvArena) per `(layer, head)` in insertion
//! order; evictions splice in place, reads are borrowed slices.

use crate::budget::CacheBudget;
use crate::importance::ImportanceTracker;
use kelle_model::{ArenaGrid, CacheStats, EntryRef, KvCacheBackend, PayloadRef, TokenId};

/// The H2O (heavy-hitter oracle) cache policy.
#[derive(Debug, Clone)]
pub struct H2oCache {
    budget: CacheBudget,
    store: ArenaGrid,
    importance: ImportanceTracker,
    current_len: usize,
    /// While true, insertions do not trigger evictions (prefill keeps all
    /// tokens until the whole context has been scored).
    in_prefill: bool,
    evictions: u64,
    insertions: u64,
}

impl H2oCache {
    /// Creates an H2O cache with the given budget.
    pub fn new(budget: CacheBudget) -> Self {
        H2oCache {
            budget,
            store: ArenaGrid::new(),
            importance: ImportanceTracker::new(),
            current_len: 0,
            in_prefill: true,
            evictions: 0,
            insertions: 0,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Evicts minimum-importance tokens until the head fits the budget.
    ///
    /// The freshly arrived token (`incoming`), protected sinks and the recent
    /// window are never chosen as victims (matching §4.1.1: the arrival of the
    /// `(N'+1)`-th token evicts one of the *previous* `N'` tokens).
    fn enforce(&mut self, layer: usize, head: usize, incoming: Option<TokenId>) {
        loop {
            let Some(arena) = self.store.get(layer, head) else {
                return;
            };
            if arena.len() <= self.budget.max_tokens {
                return;
            }
            let candidates = arena
                .iter_tokens()
                .filter(|&t| Some(t) != incoming && !self.budget.is_protected(t, self.current_len));
            let victim = self
                .importance
                .min_score_token(layer, head, candidates)
                .or_else(|| arena.first_token());
            let Some(victim) = victim else { return };
            if let Some(arena) = self.store.get_mut(layer, head) {
                if arena.remove_token(victim) {
                    self.importance.remove(layer, head, victim);
                    self.evictions += 1;
                } else {
                    return;
                }
            }
        }
    }
}

impl KvCacheBackend for H2oCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        _x: &[f32],
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) {
        self.current_len = self.current_len.max(token + 1);
        let heads = keys.len() / head_dim;
        for (head, (k, v)) in keys
            .chunks_exact(head_dim)
            .zip(values.chunks_exact(head_dim))
            .enumerate()
        {
            self.store
                .get_or_create(layer, head, head_dim)
                .push(token, k, v);
        }
        for head in 0..heads {
            self.importance.register(layer, head, token);
            if !self.in_prefill {
                self.enforce(layer, head, Some(token));
            }
        }
        self.insertions += 1;
    }

    fn for_each_entry(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(EntryRef<'e>),
    ) {
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        // One median computation per traversal (not per token).
        let median = self.importance.median_threshold(layer, head);
        for i in 0..arena.len() {
            let token = arena.token_at(i);
            visit(EntryRef {
                token,
                payload: PayloadRef::Kv {
                    key: arena.key(i),
                    value: arena.value(i),
                },
                high_score: median.is_none_or(|m| self.importance.score(layer, head, token) >= m),
            });
        }
    }

    fn for_each_payload(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(PayloadRef<'e>),
    ) {
        // Value-accumulation traversal: no importance labelling (and so no
        // median computation) needed.
        let Some(arena) = self.store.get(layer, head) else {
            return;
        };
        for i in 0..arena.len() {
            visit(PayloadRef::Kv {
                key: arena.key(i),
                value: arena.value(i),
            });
        }
    }

    fn entry_count(&self, layer: usize, head: usize) -> usize {
        self.store.get(layer, head).map_or(0, |a| a.len())
    }

    fn observe_attention(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]) {
        self.importance.accumulate(layer, head, scores);
    }

    fn finish_prefill(&mut self, context_len: usize) {
        self.in_prefill = false;
        self.current_len = self.current_len.max(context_len);
        // Retain only the top-N' tokens (plus protected ones) per head.
        let keys: Vec<(usize, usize)> = self.store.keys().collect();
        for (layer, head) in keys {
            self.enforce(layer, head, None);
        }
    }

    fn attach_shared_prefix(&mut self, prefix: &kelle_model::SharedKv) {
        // H2O stores raw KV and defers evictions until `finish_prefill`, so
        // the replayed prefix is adopted zero-copy; the prefill-retention
        // pass (or a later decode eviction) reaching into the shared region
        // privatizes it (copy-on-evict).
        self.store.attach_base(prefix);
    }

    fn stats(&self) -> CacheStats {
        CacheStats::with_split(
            self.store.total_entries(),
            0,
            self.evictions,
            self.insertions,
            self.store.shared_bytes_fp16(),
            self.store.private_bytes_fp16(),
        )
    }

    fn name(&self) -> &'static str {
        "h2o"
    }

    fn clone_box(&self) -> Box<dyn KvCacheBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_token(cache: &mut H2oCache, token: usize, heads: usize) {
        let keys: Vec<f32> = (0..heads).flat_map(|_| vec![token as f32; 4]).collect();
        let values = keys.clone();
        cache.insert(0, token, &[0.0; 8], &keys, &values, 4);
    }

    #[test]
    fn respects_budget() {
        let mut cache = H2oCache::new(CacheBudget::new(4).with_recent_window(1));
        cache.finish_prefill(0);
        for t in 0..12 {
            insert_token(&mut cache, t, 2);
            let obs: Vec<(usize, f32)> = cache
                .entries(0, 0)
                .iter()
                .map(|e| (e.token, 1.0 / (e.token + 1) as f32))
                .collect();
            cache.observe_attention(0, 0, &obs);
        }
        assert_eq!(cache.entries(0, 0).len(), 4);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn keeps_heavy_hitters() {
        let mut cache = H2oCache::new(CacheBudget::new(3).with_recent_window(1));
        cache.finish_prefill(0);
        for t in 0..8 {
            insert_token(&mut cache, t, 1);
            // Token 2 always gets massive attention once present.
            let obs: Vec<(usize, f32)> = cache
                .entries(0, 0)
                .iter()
                .map(|e| {
                    if e.token == 2 {
                        (2, 0.9)
                    } else {
                        (e.token, 0.01)
                    }
                })
                .collect();
            cache.observe_attention(0, 0, &obs);
        }
        let tokens: Vec<usize> = cache.entries(0, 0).iter().map(|e| e.token).collect();
        assert!(tokens.contains(&2), "heavy hitter retained: {tokens:?}");
        assert!(tokens.contains(&7), "most recent retained: {tokens:?}");
    }

    #[test]
    fn prefill_truncates_to_budget() {
        let mut cache = H2oCache::new(CacheBudget::new(4));
        for t in 0..16 {
            insert_token(&mut cache, t, 1);
        }
        cache.finish_prefill(16);
        assert!(cache.entries(0, 0).len() <= 4);
    }

    #[test]
    fn eviction_prefers_low_score() {
        let mut cache = H2oCache::new(CacheBudget::new(2));
        cache.finish_prefill(0);
        insert_token(&mut cache, 0, 1);
        insert_token(&mut cache, 1, 1);
        cache.observe_attention(0, 0, &[(0, 0.9), (1, 0.01)]);
        insert_token(&mut cache, 2, 1);
        let tokens: Vec<usize> = cache.entries(0, 0).iter().map(|e| e.token).collect();
        assert!(tokens.contains(&0));
        assert!(!tokens.contains(&1));
    }

    #[test]
    fn bytes_track_live_arena_footprint() {
        let mut cache = H2oCache::new(CacheBudget::new(2));
        cache.finish_prefill(0);
        for t in 0..20 {
            insert_token(&mut cache, t, 1);
        }
        // 2 live entries × 2 vectors × 4 elements × 2 bytes.
        assert_eq!(cache.stats().bytes_fp16, 2 * 2 * 4 * 2);
    }

    #[test]
    fn name_is_h2o() {
        assert_eq!(H2oCache::new(CacheBudget::new(2)).name(), "h2o");
    }
}
