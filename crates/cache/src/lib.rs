//! # kelle-cache
//!
//! KV-cache management policies for the Kelle reproduction.
//!
//! All policies implement [`kelle_model::KvCacheBackend`] and can therefore be
//! plugged into the surrogate model unchanged:
//!
//! * [`FullKvCache`] (re-exported) — the uncompressed FP16 reference;
//! * [`StreamingLlmCache`] — StreamingLLM: attention-sink tokens + a recent
//!   window (Xiao et al.);
//! * [`H2oCache`] — H2O: accumulated-attention heavy hitters + a recent window
//!   (Zhang et al.);
//! * [`QuaRotKvCache`] — QuaRot-style low-bit KV quantization with full token
//!   retention (Ashkboos et al.);
//! * [`AerpCache`] — **Kelle's AERP** (§4.1): per-head attention-based
//!   eviction, token-popularity-driven recomputation storage, sink and recent
//!   retention.
//!
//! The shared importance-score bookkeeping lives in [`importance`], the
//! cache-capacity description shared by all budgeted policies in [`budget`],
//! and the [`CachePolicy`] registry in [`policy`] builds any of the above as
//! a `Box<dyn KvCacheBackend>` from a budget — the single factory the serving
//! engine, sessions and accuracy experiments all construct backends through.
//! When many sessions share one device, [`partition`] derives each admitted
//! session's effective `N'` share of a common budget (equal-split or
//! proportional-to-context).
//!
//! ## Example
//!
//! ```rust
//! use kelle_cache::{AerpCache, CacheBudget};
//! use kelle_model::KvCacheBackend;
//!
//! let budget = CacheBudget::new(128).with_recent_window(64).with_sink_tokens(10);
//! let cache = AerpCache::new(budget, 8);
//! assert_eq!(cache.name(), "aerp");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aerp;
pub mod budget;
pub mod h2o;
pub mod importance;
pub mod partition;
pub mod policy;
pub mod quantized;
pub mod streaming;

pub use aerp::{AerpCache, AerpConfig};
pub use budget::CacheBudget;
pub use h2o::H2oCache;
pub use importance::ImportanceTracker;
pub use partition::{BudgetPartitioner, PartitionMode};
pub use policy::CachePolicy;
pub use quantized::QuaRotKvCache;
pub use streaming::StreamingLlmCache;

pub use kelle_model::{
    ArenaGrid, CacheEntry, CacheStats, EntryPayload, EntryRef, FullKvCache, InputSlab, KvArena,
    KvCacheBackend, PayloadRef, TokenId,
};
