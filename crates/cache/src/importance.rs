//! Accumulated attention-score bookkeeping (paper Eq. 3).
//!
//! Both H2O and Kelle's AERP rank cached tokens by the attention mass they
//! have *received* since entering the cache: every decoding step adds the
//! post-softmax probability assigned to each cached token to that token's
//! importance score `s^h_n` (§4.1.1).  The hardware realisation of this
//! bookkeeping is the systolic evictor (§5.3); the functional realisation is
//! this tracker.

use kelle_model::{FastHashMap, TokenId};

/// Per-`(layer, head)` accumulated attention scores.
#[derive(Debug, Clone, Default)]
pub struct ImportanceTracker {
    scores: FastHashMap<(usize, usize), FastHashMap<TokenId, f32>>,
}

impl ImportanceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates the attention probabilities observed for `(layer, head)`.
    pub fn accumulate(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]) {
        let acc = self.scores.entry((layer, head)).or_default();
        for (token, p) in scores {
            *acc.entry(*token).or_insert(0.0) += *p;
        }
    }

    /// Registers a token with zero initial score (so freshly inserted tokens
    /// participate in ranking before their first observation).
    pub fn register(&mut self, layer: usize, head: usize, token: TokenId) {
        self.scores
            .entry((layer, head))
            .or_default()
            .entry(token)
            .or_insert(0.0);
    }

    /// Removes a token's score (after eviction).
    pub fn remove(&mut self, layer: usize, head: usize, token: TokenId) {
        if let Some(acc) = self.scores.get_mut(&(layer, head)) {
            acc.remove(&token);
        }
    }

    /// The accumulated score of a token (0 if never observed).
    pub fn score(&self, layer: usize, head: usize, token: TokenId) -> f32 {
        self.scores
            .get(&(layer, head))
            .and_then(|acc| acc.get(&token))
            .copied()
            .unwrap_or(0.0)
    }

    /// The token with the minimum score among `candidates`, breaking ties by
    /// preferring the *oldest* (smallest id) token.  Returns `None` if
    /// `candidates` is empty.
    pub fn min_score_token(
        &self,
        layer: usize,
        head: usize,
        candidates: impl IntoIterator<Item = TokenId>,
    ) -> Option<TokenId> {
        candidates
            .into_iter()
            .map(|t| (t, self.score(layer, head, t)))
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .map(|(t, _)| t)
    }

    /// The `n` highest-scoring tokens among `candidates` (descending score,
    /// ties broken toward newer tokens as the paper keeps recent tokens).
    pub fn top_n(
        &self,
        layer: usize,
        head: usize,
        candidates: impl IntoIterator<Item = TokenId>,
        n: usize,
    ) -> Vec<TokenId> {
        let mut scored: Vec<(TokenId, f32)> = candidates
            .into_iter()
            .map(|t| (t, self.score(layer, head, t)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(&a.0))
        });
        scored.into_iter().take(n).map(|(t, _)| t).collect()
    }

    /// The median accumulated score for `(layer, head)` — the HST/LST split
    /// point of 2DRP (§4.2) — or `None` when nothing is tracked (every token
    /// then classifies as high-score, the conservative refresh default).
    ///
    /// Entry-visitation hot paths compute this **once per traversal** and
    /// compare each token's score against it, instead of paying the
    /// sort-per-token cost of [`is_high_score`](ImportanceTracker::is_high_score).
    pub fn median_threshold(&self, layer: usize, head: usize) -> Option<f32> {
        let acc = self.scores.get(&(layer, head))?;
        if acc.is_empty() {
            return None;
        }
        let mut values: Vec<f32> = acc.values().copied().collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(values[values.len() / 2])
    }

    /// Whether a token ranks in the upper half of scores for `(layer, head)` —
    /// the HST/LST classification used by 2DRP (§4.2).
    pub fn is_high_score(&self, layer: usize, head: usize, token: TokenId) -> bool {
        match self.median_threshold(layer, head) {
            Some(median) => self.score(layer, head, token) >= median,
            None => true,
        }
    }

    /// Number of tracked tokens for `(layer, head)`.
    pub fn tracked(&self, layer: usize, head: usize) -> usize {
        self.scores.get(&(layer, head)).map_or(0, FastHashMap::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_adds_up() {
        let mut t = ImportanceTracker::new();
        t.accumulate(0, 0, &[(1, 0.5), (2, 0.25)]);
        t.accumulate(0, 0, &[(1, 0.25), (2, 0.25)]);
        assert!((t.score(0, 0, 1) - 0.75).abs() < 1e-6);
        assert!((t.score(0, 0, 2) - 0.5).abs() < 1e-6);
        assert_eq!(t.score(0, 0, 3), 0.0);
        assert_eq!(t.score(1, 0, 1), 0.0);
    }

    #[test]
    fn min_score_token_finds_least_important() {
        let mut t = ImportanceTracker::new();
        t.accumulate(0, 0, &[(0, 0.9), (1, 0.05), (2, 0.05)]);
        t.accumulate(0, 0, &[(0, 0.8), (1, 0.02), (2, 0.18)]);
        assert_eq!(t.min_score_token(0, 0, [0, 1, 2]), Some(1));
        assert_eq!(t.min_score_token(0, 0, []), None);
    }

    #[test]
    fn min_score_token_breaks_ties_by_age() {
        let mut t = ImportanceTracker::new();
        t.register(0, 0, 5);
        t.register(0, 0, 3);
        assert_eq!(t.min_score_token(0, 0, [5, 3]), Some(3));
    }

    #[test]
    fn top_n_orders_by_score() {
        let mut t = ImportanceTracker::new();
        t.accumulate(0, 1, &[(0, 0.1), (1, 0.9), (2, 0.4), (3, 0.2)]);
        assert_eq!(t.top_n(0, 1, [0, 1, 2, 3], 2), vec![1, 2]);
    }

    #[test]
    fn removal_clears_score() {
        let mut t = ImportanceTracker::new();
        t.accumulate(0, 0, &[(7, 0.4)]);
        t.remove(0, 0, 7);
        assert_eq!(t.score(0, 0, 7), 0.0);
        assert_eq!(t.tracked(0, 0), 0);
    }

    #[test]
    fn high_score_classification_is_median_split() {
        let mut t = ImportanceTracker::new();
        t.accumulate(0, 0, &[(0, 1.0), (1, 0.8), (2, 0.1), (3, 0.05)]);
        assert!(t.is_high_score(0, 0, 0));
        assert!(t.is_high_score(0, 0, 1));
        assert!(!t.is_high_score(0, 0, 3));
        // Unknown (layer, head) defaults to high-score (conservative refresh).
        assert!(t.is_high_score(3, 3, 0));
    }
}
