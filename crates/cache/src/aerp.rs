//! AERP — Kelle's attention-based eviction and recomputation policy (§4.1).
//!
//! AERP manages the KV cache per attention head with three mechanisms:
//!
//! 1. **Attention-based eviction** (§4.1.1): each head keeps at most `N'`
//!    tokens; when a new token arrives at a full head, the cached token with
//!    the smallest accumulated attention score is evicted (Eq. 3).  Sink tokens
//!    and the recent window are never evicted.  Because eviction decisions are
//!    per head, the retained token set *differs across heads*.
//! 2. **Popularity-driven recomputation storage** (§4.1.2): a token whose KV
//!    vectors are retained in at least a fraction `θ` (default 50 %) of the
//!    heads is *popular*; instead of keeping `2 × C/H` values in every
//!    retaining head (total `2 · C/H · θH > C`), only the `1 × C` input vector
//!    `x` is stored once per layer, and K/V are recomputed through `W_K`/`W_V`
//!    when needed.  Once a token switches to input-vector storage its format
//!    stays fixed until it is evicted from every head.
//! 3. **Prefill retention** (§4.1.1): after pre-filling, each head keeps the
//!    top-`N'` tokens by importance (plus sinks and the recent window).
//!
//! Storage layout: each head owns a [`KvArena`] holding the KV-format tokens
//! in retained order; input vectors live once per layer in an [`InputSlab`]
//! (slot-recycling, so eviction churn is allocation-free).  The per-head
//! `retained` list is the single source of entry order; because the arena
//! holds exactly the retained KV-format tokens in that same order, entry
//! visitation walks the list with a monotone arena cursor — no per-token map
//! lookups on the hot path, and popular tokens borrow their `x` straight from
//! the slab.
//!
//! The storage-footprint accounting (`CacheStats::bytes_fp16`) reflects the
//! policy's *declared* storage: popular tokens cost `C` elements **once per
//! layer** (the input vector is shared across heads), unpopular retained
//! tokens cost `2 × C/H` elements per retaining head — live entries only,
//! never retired arena capacity — the quantity the eDRAM capacity/refresh
//! model consumes downstream.

use crate::budget::CacheBudget;
use crate::importance::ImportanceTracker;
use kelle_model::{
    CacheStats, EntryRef, FastHashMap, FastHashSet, InputSlab, KvArena, KvCacheBackend, PayloadRef,
    TokenId,
};
use serde::{Deserialize, Serialize};

/// Configuration of the AERP policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AerpConfig {
    /// Cache budget (per head).
    pub budget: CacheBudget,
    /// Fraction of heads that must retain a token for it to be considered
    /// *popular* and switched to input-vector storage.  The paper uses 0.5.
    pub popularity_threshold: f64,
    /// Whether recomputation storage is enabled.  Disabling it yields the
    /// "AEP" ablation baseline of §8.1 (eviction only, no recomputation).
    pub recompute: bool,
}

impl AerpConfig {
    /// The default AERP configuration for a given budget (θ = 0.5,
    /// recomputation on).
    pub fn new(budget: CacheBudget) -> Self {
        AerpConfig {
            budget,
            popularity_threshold: 0.5,
            recompute: true,
        }
    }

    /// Disables recomputation (the AEP baseline).
    pub fn without_recompute(mut self) -> Self {
        self.recompute = false;
        self
    }

    /// Overrides the popularity threshold θ.
    pub fn with_popularity_threshold(mut self, theta: f64) -> Self {
        self.popularity_threshold = theta;
        self
    }
}

/// Per-layer state.
#[derive(Debug, Clone)]
struct LayerState {
    /// Which tokens each head currently retains (insertion-ordered; the
    /// single source of entry order).
    retained: Vec<Vec<TokenId>>,
    /// Per-head contiguous KV storage, holding exactly the retained
    /// KV-format (non-popular) tokens in retained order.
    kv: Vec<KvArena>,
    /// Input vectors of all currently retained tokens (needed both for
    /// recomputation storage and for potential later conversion).
    inputs: InputSlab,
    /// Tokens currently stored in input-vector (recompute) format.
    popular: FastHashSet<TokenId>,
}

impl LayerState {
    fn new(heads: usize, head_dim: usize, channels: usize) -> Self {
        LayerState {
            retained: vec![Vec::new(); heads],
            kv: (0..heads).map(|_| KvArena::new(head_dim)).collect(),
            inputs: InputSlab::new(channels),
            popular: FastHashSet::default(),
        }
    }

    fn retaining_heads(&self, token: TokenId) -> usize {
        self.retained.iter().filter(|r| r.contains(&token)).count()
    }

    fn drop_token_everywhere(&mut self, token: TokenId) {
        self.inputs.remove(token);
        self.popular.remove(&token);
        for kv in &mut self.kv {
            kv.remove_token(token);
        }
    }
}

/// Kelle's attention-based eviction and recomputation policy.
#[derive(Debug, Clone)]
pub struct AerpCache {
    config: AerpConfig,
    heads: usize,
    layers: FastHashMap<usize, LayerState>,
    importance: ImportanceTracker,
    current_len: usize,
    /// While true (until [`KvCacheBackend::finish_prefill`]), insertions do not
    /// trigger evictions: the paper's prefill rule retains the top-`N'` tokens
    /// only once the whole context has been scored (§4.1.1).
    in_prefill: bool,
    evictions: u64,
    insertions: u64,
}

impl AerpCache {
    /// Creates an AERP cache with the default configuration for `budget`.
    pub fn new(budget: CacheBudget, heads: usize) -> Self {
        Self::with_config(AerpConfig::new(budget), heads)
    }

    /// Creates an AERP cache with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `heads == 0` or the popularity threshold is outside `(0, 1]`.
    pub fn with_config(config: AerpConfig, heads: usize) -> Self {
        assert!(heads > 0, "AERP requires at least one attention head");
        assert!(
            config.popularity_threshold > 0.0 && config.popularity_threshold <= 1.0,
            "popularity threshold must be within (0, 1]"
        );
        AerpCache {
            config,
            heads,
            layers: FastHashMap::default(),
            importance: ImportanceTracker::new(),
            current_len: 0,
            in_prefill: true,
            evictions: 0,
            insertions: 0,
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &AerpConfig {
        &self.config
    }

    /// Number of tokens currently stored in recompute (input-vector) format in
    /// `layer`.
    pub fn popular_tokens(&self, layer: usize) -> usize {
        self.layers.get(&layer).map_or(0, |l| l.popular.len())
    }

    fn layer_mut(&mut self, layer: usize, head_dim: usize) -> &mut LayerState {
        let heads = self.heads;
        self.layers
            .entry(layer)
            .or_insert_with(|| LayerState::new(heads, head_dim, heads * head_dim))
    }

    /// Evicts the minimum-importance unprotected token from a full head.
    fn enforce_head(&mut self, layer: usize, head: usize, incoming: Option<TokenId>) {
        loop {
            let budget = self.config.budget;
            let current_len = self.current_len;
            let Some(state) = self.layers.get(&layer) else {
                return;
            };
            if state.retained[head].len() <= budget.max_tokens {
                return;
            }
            let candidates = state.retained[head]
                .iter()
                .copied()
                .filter(|&t| Some(t) != incoming && !budget.is_protected(t, current_len));
            let victim = self
                .importance
                .min_score_token(layer, head, candidates)
                .or_else(|| {
                    state.retained[head]
                        .iter()
                        .copied()
                        .find(|&t| Some(t) != incoming)
                });
            let Some(victim) = victim else { return };

            let state = self
                .layers
                .get_mut(&layer)
                .expect("layer state existence checked above");
            state.retained[head].retain(|&t| t != victim);
            state.kv[head].remove_token(victim);
            if state.retaining_heads(victim) == 0 {
                state.drop_token_everywhere(victim);
            }
            self.importance.remove(layer, head, victim);
            self.evictions += 1;
        }
    }

    /// Re-evaluates popularity-based storage formats for a layer (§4.1.2).
    ///
    /// Tokens retained in at least `θ` of the heads are converted to
    /// input-vector storage; the conversion is one-way (the format stays fixed
    /// until full eviction), matching the paper's observation that popular
    /// tokens rarely become unpopular.
    fn update_popularity(&mut self, layer: usize) {
        if !self.config.recompute {
            return;
        }
        let threshold = (self.config.popularity_threshold * self.heads as f64).ceil() as usize;
        let Some(state) = self.layers.get_mut(&layer) else {
            return;
        };
        // Retained order is the scan order; a token appears in `inputs` for as
        // long as any head retains it.  Dedup via a set so the union build
        // stays linear in the retained population.
        let mut tokens: Vec<TokenId> = Vec::new();
        let mut seen: FastHashSet<TokenId> = FastHashSet::default();
        for retained in &state.retained {
            for &t in retained {
                if seen.insert(t) {
                    tokens.push(t);
                }
            }
        }
        for token in tokens {
            if state.popular.contains(&token) {
                continue;
            }
            let retaining = state.retaining_heads(token);
            if retaining >= threshold.max(1) {
                state.popular.insert(token);
                // KV copies are dropped; the input vector alone is stored.
                for kv in &mut state.kv {
                    kv.remove_token(token);
                }
            }
        }
    }
}

impl KvCacheBackend for AerpCache {
    fn insert(
        &mut self,
        layer: usize,
        token: TokenId,
        x: &[f32],
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) {
        assert_eq!(
            keys.len(),
            self.heads * head_dim,
            "per-head keys must match head count"
        );
        self.current_len = self.current_len.max(token + 1);
        let state = self.layer_mut(layer, head_dim);
        state.inputs.insert(token, x);
        for (head, (k, v)) in keys
            .chunks_exact(head_dim)
            .zip(values.chunks_exact(head_dim))
            .enumerate()
        {
            state.retained[head].push(token);
            state.kv[head].push(token, k, v);
        }
        for head in 0..self.heads {
            self.importance.register(layer, head, token);
            if !self.in_prefill {
                self.enforce_head(layer, head, Some(token));
            }
        }
        self.update_popularity(layer);
        self.insertions += 1;
    }

    fn for_each_entry(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(EntryRef<'e>),
    ) {
        static EMPTY: [f32; 0] = [];
        let Some(state) = self.layers.get(&layer) else {
            return;
        };
        let arena = &state.kv[head];
        // One median computation per traversal (not per token), and a
        // monotone cursor pairing each retained-list entry with its arena
        // slot (the arena holds exactly the KV-format retained tokens in
        // retained order).
        let median = self.importance.median_threshold(layer, head);
        let mut cursor = 0usize;
        for &token in &state.retained[head] {
            let high_score = median.is_none_or(|m| self.importance.score(layer, head, token) >= m);
            let payload = if state.popular.contains(&token) {
                PayloadRef::Recompute {
                    x: state.inputs.get(token).unwrap_or(&EMPTY),
                }
            } else if cursor < arena.len() && arena.token_at(cursor) == token {
                let p = PayloadRef::Kv {
                    key: arena.key(cursor),
                    value: arena.value(cursor),
                };
                cursor += 1;
                p
            } else {
                // Defensive fallback: if the KV copy is missing (should not
                // happen), fall back to recompute storage.
                PayloadRef::Recompute {
                    x: state.inputs.get(token).unwrap_or(&EMPTY),
                }
            };
            visit(EntryRef {
                token,
                payload,
                high_score,
            });
        }
    }

    fn for_each_payload(
        &self,
        layer: usize,
        head: usize,
        visit: &mut dyn for<'e> FnMut(PayloadRef<'e>),
    ) {
        // Value-accumulation traversal: same cursor walk as for_each_entry,
        // minus the importance labelling.
        static EMPTY: [f32; 0] = [];
        let Some(state) = self.layers.get(&layer) else {
            return;
        };
        let arena = &state.kv[head];
        let mut cursor = 0usize;
        for &token in &state.retained[head] {
            if state.popular.contains(&token) {
                visit(PayloadRef::Recompute {
                    x: state.inputs.get(token).unwrap_or(&EMPTY),
                });
            } else if cursor < arena.len() && arena.token_at(cursor) == token {
                visit(PayloadRef::Kv {
                    key: arena.key(cursor),
                    value: arena.value(cursor),
                });
                cursor += 1;
            } else {
                visit(PayloadRef::Recompute {
                    x: state.inputs.get(token).unwrap_or(&EMPTY),
                });
            }
        }
    }

    fn entry_count(&self, layer: usize, head: usize) -> usize {
        self.layers
            .get(&layer)
            .map_or(0, |state| state.retained[head].len())
    }

    fn observe_attention(&mut self, layer: usize, head: usize, scores: &[(TokenId, f32)]) {
        self.importance.accumulate(layer, head, scores);
    }

    fn finish_prefill(&mut self, context_len: usize) {
        self.in_prefill = false;
        self.current_len = self.current_len.max(context_len);
        let layers: Vec<usize> = self.layers.keys().copied().collect();
        for layer in layers {
            for head in 0..self.heads {
                self.enforce_head(layer, head, None);
            }
            self.update_popularity(layer);
        }
    }

    fn attach_shared_prefix(&mut self, prefix: &kelle_model::SharedKv) {
        // AERP's per-head arenas hold raw KV in retained order, so the
        // replayed prefix starts out adopted.  With recomputation enabled
        // the popularity rule converts prefix tokens to input-vector storage
        // almost immediately (dropping their KV copies — which privatizes,
        // copy-on-evict); the AEP ablation (recomputation off) keeps the
        // prefix shared until eviction reaches it, like H2O.
        assert_eq!(prefix.heads, self.heads, "shared base head count");
        let head_dim = prefix.head_dim;
        for layer in 0..prefix.layers {
            let state = self.layer_mut(layer, head_dim);
            for head in 0..prefix.heads {
                if prefix.grid.get(layer, head).is_some() {
                    state.kv[head].set_base(prefix, layer, head);
                }
            }
        }
    }

    fn stats(&self) -> CacheStats {
        let mut kv_entries = 0usize;
        let mut recompute_entries = 0usize;
        let mut shared = 0usize;
        let mut private = 0usize;
        for state in self.layers.values() {
            // Recompute payloads count once per layer: the input vector is
            // shared by every retaining head.  The slab is per-session
            // storage, so it always counts as private bytes.
            recompute_entries += state.popular.len();
            private += state.popular.len() * 2 * state.inputs.width();
            for kv in &state.kv {
                kv_entries += kv.len();
                shared += kv.shared_bytes_fp16();
                private += kv.private_bytes_fp16();
            }
        }
        CacheStats::with_split(
            kv_entries,
            recompute_entries,
            self.evictions,
            self.insertions,
            shared,
            private,
        )
    }

    fn name(&self) -> &'static str {
        if self.config.recompute {
            "aerp"
        } else {
            "aep"
        }
    }

    fn clone_box(&self) -> Box<dyn KvCacheBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADS: usize = 4;
    const HEAD_DIM: usize = 4;
    const CHANNELS: usize = HEADS * HEAD_DIM;

    fn insert_token(cache: &mut AerpCache, layer: usize, token: usize) {
        let keys: Vec<f32> = (0..HEADS)
            .flat_map(|h| vec![(token + h) as f32; HEAD_DIM])
            .collect();
        let values = keys.clone();
        cache.insert(
            layer,
            token,
            &[token as f32; CHANNELS],
            &keys,
            &values,
            HEAD_DIM,
        );
    }

    #[test]
    fn respects_per_head_budget() {
        let mut cache = AerpCache::new(CacheBudget::new(4).with_recent_window(1), HEADS);
        cache.finish_prefill(0);
        for t in 0..16 {
            insert_token(&mut cache, 0, t);
        }
        for head in 0..HEADS {
            assert!(cache.entries(0, head).len() <= 4, "head {head}");
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn eviction_targets_minimum_importance() {
        let mut cache =
            AerpCache::with_config(AerpConfig::new(CacheBudget::new(3)).without_recompute(), 1);
        cache.finish_prefill(0);
        let insert = |cache: &mut AerpCache, token: usize| {
            cache.insert(
                0,
                token,
                &[token as f32; HEAD_DIM],
                &[token as f32; HEAD_DIM],
                &[token as f32; HEAD_DIM],
                HEAD_DIM,
            );
        };
        insert(&mut cache, 0);
        insert(&mut cache, 1);
        insert(&mut cache, 2);
        cache.observe_attention(0, 0, &[(0, 0.6), (1, 0.05), (2, 0.35)]);
        insert(&mut cache, 3);
        let tokens: Vec<usize> = cache.entries(0, 0).iter().map(|e| e.token).collect();
        assert!(
            !tokens.contains(&1),
            "lowest-score token evicted: {tokens:?}"
        );
        assert!(tokens.contains(&0));
        assert!(tokens.contains(&2));
        assert!(tokens.contains(&3));
    }

    #[test]
    fn eviction_patterns_differ_across_heads() {
        let mut cache =
            AerpCache::with_config(AerpConfig::new(CacheBudget::new(3)).without_recompute(), 2);
        cache.finish_prefill(0);
        let insert = |cache: &mut AerpCache, token: usize| {
            cache.insert(
                0,
                token,
                &[token as f32; 8],
                &[1.0; 2 * HEAD_DIM],
                &[1.0; 2 * HEAD_DIM],
                HEAD_DIM,
            );
        };
        for t in 0..3 {
            insert(&mut cache, t);
        }
        // Head 0 loves token 0, head 1 loves token 2.
        cache.observe_attention(0, 0, &[(0, 0.9), (1, 0.05), (2, 0.05)]);
        cache.observe_attention(0, 1, &[(0, 0.05), (1, 0.05), (2, 0.9)]);
        // Make token 1 clearly the victim in head 0, token 0 in head 1.
        cache.observe_attention(0, 1, &[(1, 0.3)]);
        insert(&mut cache, 3);
        let head0: Vec<usize> = cache.entries(0, 0).iter().map(|e| e.token).collect();
        let head1: Vec<usize> = cache.entries(0, 1).iter().map(|e| e.token).collect();
        assert_ne!(head0, head1, "per-head eviction should diverge");
        assert!(head0.contains(&0));
        assert!(head1.contains(&2));
    }

    #[test]
    fn popular_tokens_switch_to_recompute_storage() {
        let mut cache = AerpCache::new(CacheBudget::new(8), HEADS);
        for t in 0..4 {
            insert_token(&mut cache, 0, t);
        }
        // All tokens retained in all heads -> all popular -> recompute storage.
        let entries = cache.entries(0, 0);
        assert!(entries.iter().all(|e| e.payload.needs_recompute()));
        assert_eq!(cache.popular_tokens(0), 4);
        let stats = cache.stats();
        assert_eq!(stats.kv_entries, 0);
        assert_eq!(stats.recompute_entries, 4);
    }

    #[test]
    fn recompute_disabled_stores_kv_only() {
        let mut cache = AerpCache::with_config(
            AerpConfig::new(CacheBudget::new(8)).without_recompute(),
            HEADS,
        );
        for t in 0..4 {
            insert_token(&mut cache, 0, t);
        }
        let entries = cache.entries(0, 0);
        assert!(entries.iter().all(|e| !e.payload.needs_recompute()));
        assert_eq!(cache.name(), "aep");
        assert_eq!(cache.stats().recompute_entries, 0);
    }

    #[test]
    fn recompute_storage_is_smaller_for_popular_tokens() {
        // With θ = 0.5 and all heads retaining, storing x (C elements) must be
        // cheaper than storing KV in every head (2 * C/H * H = 2C elements).
        let mut with_recompute = AerpCache::new(CacheBudget::new(8), HEADS);
        let mut without = AerpCache::with_config(
            AerpConfig::new(CacheBudget::new(8)).without_recompute(),
            HEADS,
        );
        for t in 0..6 {
            insert_token(&mut with_recompute, 0, t);
            insert_token(&mut without, 0, t);
        }
        assert!(with_recompute.stats().bytes_fp16 < without.stats().bytes_fp16);
    }

    #[test]
    fn recompute_bytes_counted_once_per_layer() {
        // Regression for the stats contract: a popular token's input vector
        // is shared across every retaining head, so it must contribute
        // exactly `2 × channels` bytes per layer — not per head.
        let mut cache = AerpCache::new(CacheBudget::new(8), HEADS);
        for t in 0..3 {
            insert_token(&mut cache, 0, t);
        }
        let stats = cache.stats();
        assert_eq!(stats.recompute_entries, 3);
        assert_eq!(stats.kv_entries, 0);
        assert_eq!(stats.bytes_fp16, 3 * 2 * CHANNELS);
    }

    #[test]
    fn full_eviction_drops_input_vector() {
        let mut cache = AerpCache::new(CacheBudget::new(2).with_recent_window(1), 1);
        cache.finish_prefill(0);
        let insert = |cache: &mut AerpCache, token: usize| {
            cache.insert(
                0,
                token,
                &[token as f32; HEAD_DIM],
                &[token as f32; HEAD_DIM],
                &[token as f32; HEAD_DIM],
                HEAD_DIM,
            );
        };
        for t in 0..6 {
            insert(&mut cache, t);
        }
        // Only two tokens retained; the rest must not linger in input storage.
        let state = cache.layers.get(&0).unwrap();
        assert_eq!(state.inputs.len(), 2);
        assert!(state.popular.len() <= 2);
    }

    #[test]
    fn prefill_retains_top_n_by_importance() {
        let mut cache =
            AerpCache::with_config(AerpConfig::new(CacheBudget::new(2)).without_recompute(), 1);
        // Simulate prefill: insert 6 tokens, give token 4 and 1 the highest scores.
        for t in 0..6 {
            cache.insert(
                0,
                t,
                &[t as f32; HEAD_DIM],
                &[t as f32; HEAD_DIM],
                &[t as f32; HEAD_DIM],
                HEAD_DIM,
            );
            let obs: Vec<(usize, f32)> = cache
                .entries(0, 0)
                .iter()
                .map(|e| match e.token {
                    4 => (4, 0.7),
                    1 => (1, 0.5),
                    t => (t, 0.01),
                })
                .collect();
            cache.observe_attention(0, 0, &obs);
        }
        cache.finish_prefill(6);
        let tokens: Vec<usize> = cache.entries(0, 0).iter().map(|e| e.token).collect();
        assert_eq!(tokens.len(), 2);
        assert!(tokens.contains(&1) && tokens.contains(&4), "{tokens:?}");
    }

    #[test]
    #[should_panic(expected = "at least one attention head")]
    fn zero_heads_panics() {
        AerpCache::new(CacheBudget::new(4), 0);
    }
}
