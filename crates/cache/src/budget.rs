//! Cache-capacity description shared by all budgeted policies.
//!
//! The paper expresses the cache budget as `N'`, the maximum number of tokens
//! whose KV vectors a head may retain (§4.1.1), plus two protected sets that
//! are always kept because of their disproportionate impact on generation
//! quality (§4.1.1, following StreamingLLM and H2O): the first few *sink*
//! tokens and a window of the *most recent* tokens.  §7.1 lists the values
//! used per task (e.g. `N' = 128`, recent window 64, 10 sink tokens for the
//! zero-shot tasks).

use serde::{Deserialize, Serialize};

/// Capacity and protection parameters of a budgeted KV cache.
///
/// # Validity
///
/// A budget is *valid* when `sink_tokens + recent_window <= max_tokens`; a
/// larger protected set than the budget itself would silently over-protect
/// (the cache could never evict anything and the effective budget would be
/// the protected set, not `N'`).  The builder methods and
/// [`scaled`](CacheBudget::scaled) **clamp** rather than reject — the documented
/// choice, so budget arithmetic (scaling, partitioning) can never produce an
/// unusable configuration — with sink tokens taking precedence over the
/// recent window when both cannot fit.  Because the fields are public, a
/// hand-assembled struct can still be invalid; consumers normalise through
/// [`clamped`](CacheBudget::clamped) (the policy factory does this for every
/// backend it builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheBudget {
    /// Maximum number of tokens retained per head (`N'`).
    pub max_tokens: usize,
    /// Number of initial tokens always retained (attention sinks).
    pub sink_tokens: usize,
    /// Number of most recent tokens always retained.
    pub recent_window: usize,
}

impl CacheBudget {
    /// Creates a budget of `max_tokens` with no protected sets.
    ///
    /// # Panics
    ///
    /// Panics if `max_tokens == 0`.
    pub fn new(max_tokens: usize) -> Self {
        assert!(max_tokens > 0, "cache budget must allow at least one token");
        CacheBudget {
            max_tokens,
            sink_tokens: 0,
            recent_window: 0,
        }
    }

    /// Sets the number of protected sink tokens (builder style), clamped so
    /// the whole protected set still fits the budget (see
    /// [Validity](CacheBudget#validity)).
    pub fn with_sink_tokens(mut self, sink_tokens: usize) -> Self {
        self.sink_tokens = sink_tokens;
        self.clamped()
    }

    /// Sets the protected recent window (builder style), clamped so the whole
    /// protected set still fits the budget (see
    /// [Validity](CacheBudget#validity)).
    pub fn with_recent_window(mut self, recent_window: usize) -> Self {
        self.recent_window = recent_window;
        self.clamped()
    }

    /// Whether the protected sets fit within the budget.
    pub fn is_valid(&self) -> bool {
        self.sink_tokens + self.recent_window <= self.max_tokens
    }

    /// Normalises the budget so `sink_tokens + recent_window <= max_tokens`.
    /// Sink tokens take precedence (they are few and disproportionately
    /// important, §4.1.1); the recent window absorbs the remainder.  Valid
    /// budgets pass through unchanged.
    pub fn clamped(mut self) -> Self {
        self.sink_tokens = self.sink_tokens.min(self.max_tokens);
        self.recent_window = self.recent_window.min(self.max_tokens - self.sink_tokens);
        self
    }

    /// The per-task budget configurations used in §7.1 of the paper.
    ///
    /// | task group | `N'` | recent window | sinks |
    /// |---|---|---|---|
    /// | PQ / LA / A-e / A-c | 128 | 64 | 10 |
    /// | WK2 | 512 | 256 | 10 |
    /// | TQ / QP | 1024 | 512 | 10 |
    /// | PG19 | 2048 | 1024 | 10 |
    pub fn for_task(task: BudgetTask) -> Self {
        match task {
            BudgetTask::ZeroShot => CacheBudget::new(128)
                .with_recent_window(64)
                .with_sink_tokens(10),
            BudgetTask::WikiText2 => CacheBudget::new(512)
                .with_recent_window(256)
                .with_sink_tokens(10),
            BudgetTask::LongQa => CacheBudget::new(1024)
                .with_recent_window(512)
                .with_sink_tokens(10),
            BudgetTask::Pg19 => CacheBudget::new(2048)
                .with_recent_window(1024)
                .with_sink_tokens(10),
        }
    }

    /// Whether a token at `position` is protected from eviction when the
    /// current sequence length is `current_len`.
    pub fn is_protected(&self, position: usize, current_len: usize) -> bool {
        if position < self.sink_tokens {
            return true;
        }
        current_len <= self.recent_window || position >= current_len - self.recent_window
    }

    /// Scales the whole budget (all three fields) by `factor`, rounding down
    /// but keeping every field at least 1 if it was non-zero.  Used to map the
    /// paper's full-model budgets onto the smaller surrogate sequence lengths.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |v: usize| -> usize {
            if v == 0 {
                0
            } else {
                ((v as f64 * factor).floor() as usize).max(1)
            }
        };
        CacheBudget {
            max_tokens: scale(self.max_tokens),
            sink_tokens: scale(self.sink_tokens),
            recent_window: scale(self.recent_window),
        }
        .clamped()
    }
}

/// Task groups that share a budget configuration in §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetTask {
    /// PIQA, Lambada, ARC-easy, ARC-challenge.
    ZeroShot,
    /// WikiText-2 perplexity.
    WikiText2,
    /// TriviaQA and Qasper.
    LongQa,
    /// PG19 long-form generation.
    Pg19,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let b = CacheBudget::new(256)
            .with_recent_window(32)
            .with_sink_tokens(4);
        assert_eq!(b.max_tokens, 256);
        assert_eq!(b.recent_window, 32);
        assert_eq!(b.sink_tokens, 4);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_budget_panics() {
        CacheBudget::new(0);
    }

    #[test]
    fn task_budgets_match_paper() {
        assert_eq!(CacheBudget::for_task(BudgetTask::ZeroShot).max_tokens, 128);
        assert_eq!(CacheBudget::for_task(BudgetTask::WikiText2).max_tokens, 512);
        assert_eq!(CacheBudget::for_task(BudgetTask::LongQa).max_tokens, 1024);
        assert_eq!(CacheBudget::for_task(BudgetTask::Pg19).max_tokens, 2048);
        assert_eq!(CacheBudget::for_task(BudgetTask::Pg19).recent_window, 1024);
        assert_eq!(CacheBudget::for_task(BudgetTask::Pg19).sink_tokens, 10);
    }

    #[test]
    fn protection_rules() {
        let b = CacheBudget::new(16)
            .with_sink_tokens(2)
            .with_recent_window(4);
        // Sinks are always protected.
        assert!(b.is_protected(0, 100));
        assert!(b.is_protected(1, 100));
        assert!(!b.is_protected(2, 100));
        // Recent window protects the tail.
        assert!(b.is_protected(96, 100));
        assert!(b.is_protected(99, 100));
        assert!(!b.is_protected(95, 100));
        // Short sequences are fully protected by the window.
        assert!(b.is_protected(1, 3));
    }

    #[test]
    fn protected_set_exactly_filling_budget_is_untouched() {
        // Edge: sink + window == max is valid and must pass through unchanged.
        let b = CacheBudget::new(8)
            .with_sink_tokens(3)
            .with_recent_window(5);
        assert_eq!((b.max_tokens, b.sink_tokens, b.recent_window), (8, 3, 5));
        assert!(b.is_valid());
        assert_eq!(b.clamped(), b);
    }

    #[test]
    fn oversized_protected_set_is_clamped_sinks_first() {
        // Edge: sink + window == max + 1 (one past the boundary) loses one
        // window token; sinks are kept whole.
        let b = CacheBudget::new(8)
            .with_sink_tokens(3)
            .with_recent_window(6);
        assert_eq!((b.sink_tokens, b.recent_window), (3, 5));
        assert!(b.is_valid());
        // Grossly oversized requests clamp to the budget, sinks first.
        let huge = CacheBudget::new(4)
            .with_recent_window(9)
            .with_sink_tokens(9);
        assert_eq!((huge.sink_tokens, huge.recent_window), (4, 0));
        assert!(huge.is_valid());
        // Order matters only for how the remainder is split, never validity.
        let other = CacheBudget::new(4)
            .with_sink_tokens(9)
            .with_recent_window(9);
        assert!(other.is_valid());
        assert_eq!((other.sink_tokens, other.recent_window), (4, 0));
        // A hand-assembled invalid struct is repaired by clamped().
        let raw = CacheBudget {
            max_tokens: 6,
            sink_tokens: 10,
            recent_window: 10,
        };
        assert!(!raw.is_valid());
        let fixed = raw.clamped();
        assert_eq!((fixed.sink_tokens, fixed.recent_window), (6, 0));
    }

    #[test]
    fn scaling_preserves_nonzero_fields() {
        let b = CacheBudget::new(128)
            .with_recent_window(64)
            .with_sink_tokens(10);
        let s = b.scaled(0.05);
        assert!(s.max_tokens >= 1);
        assert!(s.recent_window >= 1);
        assert!(s.sink_tokens >= 1);
        let unscaled = b.scaled(1.0);
        assert_eq!(unscaled, b);
    }
}
