//! Partitioning one shared cache budget across admitted sessions.
//!
//! The paper sizes `N'` for a *single* tenant; a serving stack admits many.
//! When `B` sessions share the device, each session's effective budget is an
//! `N'/B`-style share of the whole — the algorithmic mirror of the eDRAM
//! capacity ledger on the hardware side.  [`BudgetPartitioner`] derives those
//! per-session [`CacheBudget`]s from the admitted set, either statically
//! (equal split) or dynamically (proportional to each session's live context,
//! so long conversations get more of the protected capacity than short ones).
//!
//! Partitioning only ever *describes* shares: applying a share to a live
//! session's cache would change its eviction decisions and therefore its
//! token stream, which the serving layer's equivalence guarantee forbids.
//! The batch scheduler exposes the shares as observability (and they drive
//! capacity-planning sweeps); opting a session's cache into its share is an
//! explicit caller decision.

use crate::budget::CacheBudget;
use serde::{Deserialize, Serialize};

/// How a shared [`CacheBudget`] is divided among admitted sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionMode {
    /// Every admitted session gets the same `1/B` share (static).
    EqualSplit,
    /// Each session's share is proportional to its live context length
    /// (dynamic): a session holding twice the context gets twice the share.
    ProportionalToContext,
}

/// Derives per-session budget shares from one shared budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetPartitioner {
    total: CacheBudget,
    mode: PartitionMode,
}

impl BudgetPartitioner {
    /// A partitioner dividing `total` under `mode`.
    pub fn new(total: CacheBudget, mode: PartitionMode) -> Self {
        BudgetPartitioner {
            total: total.clamped(),
            mode,
        }
    }

    /// The shared budget being divided.
    pub fn total(&self) -> CacheBudget {
        self.total
    }

    /// The partitioning mode.
    pub fn mode(&self) -> PartitionMode {
        self.mode
    }

    /// One budget share per session, given each session's live context
    /// length.  Every share is a valid budget of at least one token; a single
    /// session always receives the whole budget, and an empty session set
    /// yields no shares.
    ///
    /// Shares are derived with [`CacheBudget::scaled`], so the sink/window
    /// protections shrink with the capacity they guard (and are re-clamped so
    /// a share can never over-protect).
    pub fn shares(&self, context_lens: &[usize]) -> Vec<CacheBudget> {
        let sessions = context_lens.len();
        if sessions == 0 {
            return Vec::new();
        }
        if sessions == 1 {
            return vec![self.total];
        }
        match self.mode {
            PartitionMode::EqualSplit => {
                let factor = 1.0 / sessions as f64;
                vec![self.total.scaled(factor); sessions]
            }
            PartitionMode::ProportionalToContext => {
                // Weight degenerate zero-length contexts as 1 token so every
                // admitted session keeps a non-empty share.
                let weights: Vec<f64> = context_lens.iter().map(|&c| c.max(1) as f64).collect();
                let sum: f64 = weights.iter().sum();
                weights
                    .into_iter()
                    .map(|w| self.total.scaled(w / sum))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total() -> CacheBudget {
        CacheBudget::new(128)
            .with_recent_window(64)
            .with_sink_tokens(10)
    }

    #[test]
    fn equal_split_divides_evenly() {
        let partitioner = BudgetPartitioner::new(total(), PartitionMode::EqualSplit);
        let shares = partitioner.shares(&[5, 9, 3, 40]);
        assert_eq!(shares.len(), 4);
        for share in &shares {
            assert_eq!(share.max_tokens, 32);
            assert_eq!(share.recent_window, 16);
            assert_eq!(share.sink_tokens, 2);
            assert!(share.is_valid());
        }
        // Shares never exceed the shared budget in aggregate.
        assert!(shares.iter().map(|s| s.max_tokens).sum::<usize>() <= 128);
    }

    #[test]
    fn proportional_split_follows_context() {
        let partitioner = BudgetPartitioner::new(total(), PartitionMode::ProportionalToContext);
        let shares = partitioner.shares(&[30, 10]);
        // 3:1 context ratio => 3:1 budget ratio.
        assert_eq!(shares[0].max_tokens, 96);
        assert_eq!(shares[1].max_tokens, 32);
        assert!(shares.iter().all(|s| s.is_valid()));
        // Zero-context sessions are weighted as one token, not zero.
        let with_empty = partitioner.shares(&[0, 63]);
        assert!(with_empty[0].max_tokens >= 1);
    }

    #[test]
    fn degenerate_session_counts() {
        let partitioner = BudgetPartitioner::new(total(), PartitionMode::EqualSplit);
        assert!(partitioner.shares(&[]).is_empty());
        // A single session gets the whole budget, untouched.
        assert_eq!(partitioner.shares(&[7]), vec![total()]);
    }

    #[test]
    fn tiny_shares_remain_valid_budgets() {
        // Splitting a small budget many ways still yields >= 1-token, valid
        // shares (clamping keeps sinks ahead of the window).
        let partitioner = BudgetPartitioner::new(
            CacheBudget::new(8)
                .with_recent_window(4)
                .with_sink_tokens(2),
            PartitionMode::EqualSplit,
        );
        let shares = partitioner.shares(&[1; 16]);
        for share in shares {
            assert!(share.max_tokens >= 1);
            assert!(share.is_valid());
        }
    }
}
