//! Hardware experiment catalogue (Figs. 3, 13–16, Tables 7–9).
//!
//! These helpers wrap `kelle-arch` platform simulations into the exact sweeps
//! the paper's evaluation section reports, returning plain data rows that the
//! benchmark harness prints and the integration tests assert on.

use crate::engine::KelleEngine;
use crate::scheduler::SchedulerConfig;
use crate::session::ServeRequest;
use kelle_arch::{
    AreaBreakdown, Comparator, ComparatorKind, InferenceWorkload, Platform, PlatformKind,
    PlatformReport, PowerBreakdown, RooflineModel, RooflinePoint, SystolicEvictor,
};
use kelle_edram::{MemorySpec, MemoryTechnology, RefreshIntervals, RefreshPolicy};
use kelle_model::{ModelConfig, ModelKind};
use serde::Serialize;

/// Default KV-cache budget used by the hardware evaluation (PG19 setting).
pub const DEFAULT_N_PRIME: usize = 2048;

/// One (platform, workload) result row of Fig. 13 / Fig. 14.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EndToEndRow {
    /// Platform or comparator name.
    pub platform: String,
    /// Workload label.
    pub workload: &'static str,
    /// Model evaluated.
    pub model: ModelKind,
    /// Speedup relative to the row's baseline platform.
    pub speedup: f64,
    /// Energy-efficiency gain relative to the baseline platform.
    pub energy_efficiency: f64,
    /// Full simulation report.
    pub report: PlatformReport,
}

/// A set of end-to-end rows sharing one baseline.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct EndToEndSummary {
    /// All rows, grouped by workload then platform.
    pub rows: Vec<EndToEndRow>,
}

impl EndToEndSummary {
    /// Geometric-mean speedup of a platform across workloads.
    pub fn mean_speedup(&self, platform: &str) -> f64 {
        geo_mean(
            self.rows
                .iter()
                .filter(|r| r.platform == platform)
                .map(|r| r.speedup),
        )
    }

    /// Geometric-mean energy efficiency of a platform across workloads.
    pub fn mean_energy_efficiency(&self, platform: &str) -> f64 {
        geo_mean(
            self.rows
                .iter()
                .filter(|r| r.platform == platform)
                .map(|r| r.energy_efficiency),
        )
    }
}

fn geo_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Runs the Fig. 13 comparison: all five platforms on the evaluation workloads
/// for one model, with `Original+SRAM` as the baseline.
pub fn figure13(model: ModelKind, n_prime: usize) -> EndToEndSummary {
    let model_config = ModelConfig::for_kind(model);
    let mut summary = EndToEndSummary::default();
    for workload in InferenceWorkload::evaluation_suite() {
        let baseline =
            Platform::preset(PlatformKind::OriginalSram).simulate(&model_config, &workload, None);
        for kind in PlatformKind::all() {
            let platform = Platform::preset(kind);
            let n = match kind {
                PlatformKind::OriginalSram | PlatformKind::OriginalEdram => None,
                _ => Some(n_prime),
            };
            let report = platform.simulate(&model_config, &workload, n);
            summary.rows.push(EndToEndRow {
                platform: kind.name().to_string(),
                workload: workload.name,
                model,
                speedup: report.speedup_vs(&baseline),
                energy_efficiency: report.energy_efficiency_vs(&baseline),
                report,
            });
        }
    }
    summary
}

/// Runs the Fig. 14 comparison: Kelle+eDRAM against the external accelerators,
/// with the Jetson Orin as the baseline.
pub fn figure14(model: ModelKind, n_prime: usize) -> EndToEndSummary {
    let model_config = ModelConfig::for_kind(model);
    let mut summary = EndToEndSummary::default();
    for workload in InferenceWorkload::evaluation_suite() {
        let baseline =
            Comparator::preset(ComparatorKind::JetsonOrin).simulate(&model_config, &workload);
        for kind in ComparatorKind::all() {
            let report = Comparator::preset(kind).simulate(&model_config, &workload);
            summary.rows.push(EndToEndRow {
                platform: kind.name().to_string(),
                workload: workload.name,
                model,
                speedup: report.speedup_vs(&baseline),
                energy_efficiency: report.energy_efficiency_vs(&baseline),
                report,
            });
        }
        let kelle = Platform::preset(PlatformKind::KelleEdram).simulate(
            &model_config,
            &workload,
            Some(n_prime),
        );
        summary.rows.push(EndToEndRow {
            platform: "Kelle".to_string(),
            workload: workload.name,
            model,
            speedup: kelle.speedup_vs(&baseline),
            energy_efficiency: kelle.energy_efficiency_vs(&baseline),
            report: kelle,
        });
    }
    summary
}

/// Fig. 3a: normalized decode latency of SRAM systems with 4 MB vs 8 MB of
/// on-chip SRAM across decode lengths.  Returns `(decode_len, latency_4mb,
/// latency_8mb)` tuples.
pub fn figure3a(model: ModelKind) -> Vec<(usize, f64, f64)> {
    let model_config = ModelConfig::for_kind(model);
    let mut rows = Vec::new();
    for decode_len in [1024usize, 2048, 4096, 8192] {
        let workload = InferenceWorkload::new("fig3a", 512, decode_len, 16);
        let small = Platform::preset(PlatformKind::OriginalSram);
        let mut large = Platform::preset(PlatformKind::OriginalSram);
        large.memory.kv_memory =
            MemorySpec::new(MemoryTechnology::Sram, 5 * 1024 * 1024 + 786_432, 128.0);
        let small_report = small.simulate(&model_config, &workload, None);
        let large_report = large.simulate(&model_config, &workload, None);
        rows.push((
            decode_len,
            small_report.total_latency_s(),
            large_report.total_latency_s(),
        ));
    }
    rows
}

/// Fig. 3b: on-chip area of the 8 MB-eDRAM system vs the 8 MB-SRAM system.
pub fn figure3b() -> (AreaBreakdown, AreaBreakdown) {
    let kelle = Platform::preset(PlatformKind::KelleEdram);
    let mut edram_mem = kelle.memory.clone();
    edram_mem.kv_memory = MemorySpec::new(MemoryTechnology::Edram, 8 * 1024 * 1024, 256.0);
    let mut sram_mem = Platform::preset(PlatformKind::OriginalSram).memory.clone();
    sram_mem.kv_memory = MemorySpec::new(MemoryTechnology::Sram, 8 * 1024 * 1024, 128.0);
    (
        AreaBreakdown::for_components(&kelle.compute, &edram_mem, &SystolicEvictor::absent()),
        AreaBreakdown::for_components(&kelle.compute, &sram_mem, &SystolicEvictor::absent()),
    )
}

/// Fig. 3c: decode-phase energy breakdown of the unoptimised eDRAM system
/// (conservative 45 µs refresh) across decode lengths.  Returns
/// `(decode_len, refresh_share, dram_share)`.
pub fn figure3c(model: ModelKind) -> Vec<(usize, f64, f64)> {
    let model_config = ModelConfig::for_kind(model);
    let mut rows = Vec::new();
    for decode_len in [1024usize, 2048, 4096, 8192] {
        let workload = InferenceWorkload::new("fig3c", 512, decode_len, 16);
        let report =
            Platform::preset(PlatformKind::OriginalEdram).simulate(&model_config, &workload, None);
        let energy = report.total_energy();
        rows.push((decode_len, energy.refresh_share(), energy.dram_share()));
    }
    rows
}

/// §8 area/power reconstruction of the Kelle accelerator.
pub fn area_power_report() -> (AreaBreakdown, PowerBreakdown) {
    let kelle = Platform::preset(PlatformKind::KelleEdram);
    (
        AreaBreakdown::for_components(&kelle.compute, &kelle.memory, &kelle.evictor),
        PowerBreakdown::for_components(&kelle.compute, &kelle.sfu, &kelle.memory),
    )
}

/// Table 7: Kelle energy-efficiency gain over Original+SRAM as a function of
/// the KV budget `N'` on the PG19 workload.
pub fn table7(model: ModelKind, budgets: &[usize]) -> Vec<(usize, f64)> {
    let model_config = ModelConfig::for_kind(model);
    let workload = InferenceWorkload::pg19();
    let baseline =
        Platform::preset(PlatformKind::OriginalSram).simulate(&model_config, &workload, None);
    budgets
        .iter()
        .map(|&n| {
            let report = Platform::preset(PlatformKind::KelleEdram).simulate(
                &model_config,
                &workload,
                Some(n),
            );
            (n, report.energy_efficiency_vs(&baseline))
        })
        .collect()
}

/// Table 8: Kelle energy efficiency across average refresh intervals
/// (retention-time sensitivity).  Returns `(interval_scale_label, gain)` rows.
pub fn table8(model: ModelKind, workload: InferenceWorkload) -> Vec<(u32, f64)> {
    let model_config = ModelConfig::for_kind(model);
    let baseline =
        Platform::preset(PlatformKind::OriginalSram).simulate(&model_config, &workload, None);
    [1050u32, 525, 131]
        .into_iter()
        .map(|avg_us| {
            let scale = f64::from(avg_us) / 1050.0;
            let mut platform = Platform::preset(PlatformKind::KelleEdram);
            platform.refresh_policy =
                RefreshPolicy::TwoDimensional(RefreshIntervals::paper_default().scaled(scale));
            let report = platform.simulate(&model_config, &workload, Some(DEFAULT_N_PRIME));
            (avg_us, report.energy_efficiency_vs(&baseline))
        })
        .collect()
}

/// Table 9: energy-efficiency gains across batch sizes on PG19.
pub fn table9(model: ModelKind, batches: &[usize]) -> Vec<(usize, Vec<(String, f64)>)> {
    let model_config = ModelConfig::for_kind(model);
    batches
        .iter()
        .map(|&batch| {
            let workload = InferenceWorkload::pg19().with_batch(batch);
            let baseline = Platform::preset(PlatformKind::OriginalSram).simulate(
                &model_config,
                &workload,
                None,
            );
            let gains = [
                PlatformKind::AepSram,
                PlatformKind::AerpSram,
                PlatformKind::KelleEdram,
            ]
            .into_iter()
            .map(|kind| {
                let report = Platform::preset(kind).simulate(
                    &model_config,
                    &workload,
                    Some(DEFAULT_N_PRIME),
                );
                (
                    kind.name().to_string(),
                    report.energy_efficiency_vs(&baseline),
                )
            })
            .collect();
            (batch, gains)
        })
        .collect()
}

/// Fig. 15b: refresh-strategy ablation (Org / Uniform / 2DRP / 2DRP+scheduler).
/// Returns `(label, energy_efficiency_vs_org)`.
pub fn figure15b(model: ModelKind) -> Vec<(&'static str, f64)> {
    let model_config = ModelConfig::for_kind(model);
    let workload = InferenceWorkload::pg19();
    let mut org = Platform::preset(PlatformKind::KelleEdram);
    org.refresh_policy = RefreshPolicy::Conservative;
    org.scheduler = kelle_arch::SchedulerKind::Baseline;
    let org_report = org.simulate(&model_config, &workload, Some(DEFAULT_N_PRIME));

    let mut uniform = org.clone();
    uniform.refresh_policy = RefreshPolicy::Uniform(360.0);
    let uniform_report = uniform.simulate(&model_config, &workload, Some(DEFAULT_N_PRIME));

    let mut twod = org.clone();
    twod.refresh_policy = RefreshPolicy::two_dimensional_default();
    let twod_report = twod.simulate(&model_config, &workload, Some(DEFAULT_N_PRIME));

    let full = Platform::preset(PlatformKind::KelleEdram).simulate(
        &model_config,
        &workload,
        Some(DEFAULT_N_PRIME),
    );

    vec![
        ("Org", 1.0),
        (
            "Uniform",
            org_report.total_energy_j() / uniform_report.total_energy_j(),
        ),
        (
            "2DRP",
            org_report.total_energy_j() / twod_report.total_energy_j(),
        ),
        (
            "2DRP+Scheduler",
            org_report.total_energy_j() / full.total_energy_j(),
        ),
    ]
}

/// Fig. 15a: energy impact of recomputation (on vs off) for a model.
/// Returns `(with_recompute_total_j, without_recompute_total_j)`.
pub fn figure15a(model: ModelKind) -> (f64, f64) {
    let model_config = ModelConfig::for_kind(model);
    let workload = InferenceWorkload::pg19();
    let with = Platform::preset(PlatformKind::KelleEdram).simulate(
        &model_config,
        &workload,
        Some(DEFAULT_N_PRIME),
    );
    let mut without_platform = Platform::preset(PlatformKind::KelleEdram);
    without_platform.cache_policy = kelle_arch::CachePolicyKind::Eviction;
    let without = without_platform.simulate(&model_config, &workload, Some(DEFAULT_N_PRIME));
    (with.total_energy_j(), without.total_energy_j())
}

/// Fig. 16a: roofline points for no / moderate / excessive recomputation.
pub fn figure16a(model: ModelKind) -> Vec<(&'static str, RooflinePoint)> {
    let model_config = ModelConfig::for_kind(model);
    let platform = Platform::preset(PlatformKind::KelleEdram);
    let roofline = RooflineModel::new(&platform.compute, &platform.memory.dram);
    let seq = 4608usize;
    let macs = model_config.decode_macs(DEFAULT_N_PRIME) * 16;
    let kv_bytes = (model_config.kv_bytes_total(DEFAULT_N_PRIME, 16) as u64) * 16;
    let weight_bytes = model_config.decoder_weight_params();
    let dram_bytes = kv_bytes + weight_bytes;
    let _ = seq;
    vec![
        ("No Recomp", roofline.evaluate(macs, dram_bytes)),
        (
            "Recomp",
            roofline.evaluate_recompute(macs, dram_bytes, 0.2, 48.0),
        ),
        (
            "Over Recomp",
            roofline.evaluate_recompute(macs, dram_bytes, 0.9, 48.0),
        ),
    ]
}

/// Fig. 16b: prefill/decode energy shares across input–output length settings.
/// Returns `(label, prefill_share, decode_dram_share)`.
pub fn figure16b(model: ModelKind) -> Vec<(String, f64, f64)> {
    let model_config = ModelConfig::for_kind(model);
    let mut rows = Vec::new();
    for input in [2048usize, 4096, 8192, 16_384] {
        for output in [128usize, 512, 2048] {
            let workload = InferenceWorkload::long_input(input, output);
            let report = Platform::preset(PlatformKind::KelleEdram).simulate(
                &model_config,
                &workload,
                Some(DEFAULT_N_PRIME),
            );
            let total = report.total_energy_j();
            let prefill_share = report.prefill.energy.total_j() / total;
            let decode_dram_share = report.decode.energy.dram_j / total;
            rows.push((
                format!("{}K-{}", input / 1024, output),
                prefill_share,
                decode_dram_share,
            ));
        }
    }
    rows
}

/// Summary of a continuous-batching serving run (the session-oriented API's
/// system-level experiment: many concurrent requests interleaved round-robin
/// under one engine).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServingSummary {
    /// Concurrent requests served.
    pub sessions: usize,
    /// Total tokens generated across all requests.
    pub tokens_generated: u64,
    /// Total modelled hardware energy in joules.
    pub hardware_energy_j: f64,
    /// Mean per-request modelled latency in seconds.
    pub mean_request_latency_s: f64,
}

/// Serves `sessions` deterministic synthetic requests through the
/// continuous-batching scheduler on the Kelle platform and summarises the
/// aggregate serving cost.
pub fn serving_batch(
    model: ModelKind,
    sessions: usize,
    prompt_len: usize,
    decode_len: usize,
) -> ServingSummary {
    assert!(sessions > 0, "need at least one session");
    let engine = KelleEngine::builder().model(model).build();
    let vocab = engine.model().dims().vocab;
    let requests: Vec<ServeRequest> = (0..sessions)
        .map(|i| {
            let prompt: Vec<usize> = (0..prompt_len.max(1))
                .map(|p| (i * 131 + p * 7 + 3) % vocab)
                .collect();
            ServeRequest::builder(prompt)
                .decode_len(decode_len.max(1))
                .label("batch-serving")
                .build()
        })
        .collect();
    let batch = engine
        .serve(requests, crate::engine::ServeOptions::new())
        .expect("infallible options cannot fail");
    let mean_request_latency_s = batch
        .outcomes
        .iter()
        .map(|o| o.hardware.total_latency_s())
        .sum::<f64>()
        / sessions as f64;
    ServingSummary {
        sessions,
        tokens_generated: batch.stats.tokens_generated,
        hardware_energy_j: batch.stats.hardware_energy_j,
        mean_request_latency_s,
    }
}

/// One capacity point of the serving-contention sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ContentionRow {
    /// Arbitrated capacity as a fraction of the batch's total final KV
    /// footprint (1.0 = everything fits at once).
    pub capacity_scale: f64,
    /// Arbitrated capacity in full-scale bytes.
    pub capacity_bytes: u64,
    /// Mean scheduler ticks requests spent in the waiting queue.
    pub mean_queue_ticks: f64,
    /// Longest any request waited.
    pub max_queue_ticks: u64,
    /// KV bytes charged at DRAM cost because they exceeded their request's
    /// eDRAM share.
    pub spill_bytes: u64,
    /// Ledger high-water mark across the batch.
    pub peak_residency_bytes: u64,
    /// Total modelled hardware energy in joules.
    pub hardware_energy_j: f64,
    /// Total modelled DRAM energy in joules (grows as residency shrinks).
    pub dram_energy_j: f64,
    /// Total tokens generated (identical at every capacity point — the
    /// equivalence guarantee).
    pub tokens_generated: u64,
}

/// Sweeps shared eDRAM capacity for a fixed request mix: `sessions`
/// deterministic synthetic requests contend for `scale x` the batch's total
/// final KV footprint, for each `scale` in `capacity_scales`.  Reports queue
/// delay, spill bytes and energy per capacity point.  Token streams are
/// identical at every point (asserted by the integration tests); only cost
/// and queueing move.
pub fn serving_contention(
    model: ModelKind,
    sessions: usize,
    prompt_len: usize,
    decode_len: usize,
    capacity_scales: &[f64],
) -> Vec<ContentionRow> {
    assert!(sessions > 0, "need at least one session");
    let engine = KelleEngine::builder().model(model).build();
    let vocab = engine.model().dims().vocab;
    let requests: Vec<ServeRequest> = (0..sessions)
        .map(|i| {
            let prompt: Vec<usize> = (0..prompt_len.max(1))
                .map(|p| (i * 131 + p * 7 + 3) % vocab)
                .collect();
            ServeRequest::builder(prompt)
                .decode_len(decode_len.max(1))
                .label("contention")
                .build()
        })
        .collect();
    let total_footprint: u64 = requests
        .iter()
        .map(|r| engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
        .sum();
    capacity_scales
        .iter()
        .map(|&scale| {
            assert!(scale > 0.0, "capacity scale must be positive");
            let capacity_bytes = ((total_footprint as f64 * scale) as u64).max(1);
            let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity_bytes);
            let batch = engine
                .serve(
                    requests.clone(),
                    crate::engine::ServeOptions::new().with_scheduler(config),
                )
                .expect("infallible options cannot fail");
            let dram_energy_j = batch
                .outcomes
                .iter()
                .map(|o| o.hardware.total_energy().dram_j)
                .sum();
            ContentionRow {
                capacity_scale: scale,
                capacity_bytes,
                mean_queue_ticks: batch.contention.mean_queue_ticks(),
                max_queue_ticks: batch.contention.max_queue_ticks,
                spill_bytes: batch.contention.spill_bytes,
                peak_residency_bytes: batch.contention.peak_residency_bytes,
                hardware_energy_j: batch.stats.hardware_energy_j,
                dram_energy_j,
                tokens_generated: batch.stats.tokens_generated,
            }
        })
        .collect()
}

/// §8.3.7: halved eDRAM bandwidth ablation.  Returns `(full_bw_gain,
/// halved_bw_gain)` energy-efficiency gains over Original+SRAM.
pub fn bandwidth_ablation(model: ModelKind, workload: InferenceWorkload) -> (f64, f64) {
    let model_config = ModelConfig::for_kind(model);
    let baseline =
        Platform::preset(PlatformKind::OriginalSram).simulate(&model_config, &workload, None);
    let full = Platform::preset(PlatformKind::KelleEdram).simulate(
        &model_config,
        &workload,
        Some(DEFAULT_N_PRIME),
    );
    let mut halved_platform = Platform::preset(PlatformKind::KelleEdram);
    halved_platform.memory = kelle_arch::MemorySubsystem::kelle_halved_bandwidth();
    let halved = halved_platform.simulate(&model_config, &workload, Some(DEFAULT_N_PRIME));
    (
        full.energy_efficiency_vs(&baseline),
        halved.energy_efficiency_vs(&baseline),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_reproduces_ordering_and_factors() {
        let summary = figure13(ModelKind::Llama2_7b, DEFAULT_N_PRIME);
        assert_eq!(summary.rows.len(), 20);
        let kelle_speedup = summary.mean_speedup("Kelle+eDRAM");
        let kelle_eff = summary.mean_energy_efficiency("Kelle+eDRAM");
        // Paper: 3.94x / 4.46x on average; the analytical reproduction should
        // land in the same regime (clearly above 2x) with the right ordering.
        assert!(kelle_speedup > 2.0, "speedup {kelle_speedup}");
        assert!(kelle_eff > 1.8, "energy efficiency {kelle_eff}");
        assert!(kelle_speedup > summary.mean_speedup("AERP+SRAM"));
        assert!(summary.mean_speedup("AERP+SRAM") >= summary.mean_speedup("AEP+SRAM"));
        assert!(summary.mean_energy_efficiency("Original+eDRAM") < 1.0);
    }

    #[test]
    fn figure3a_larger_sram_is_faster() {
        let rows = figure3a(ModelKind::Llama2_7b);
        assert_eq!(rows.len(), 4);
        for (_, small, large) in rows {
            assert!(large <= small);
        }
    }

    #[test]
    fn figure3c_refresh_share_is_substantial() {
        let rows = figure3c(ModelKind::Llama2_7b);
        assert!(rows.iter().all(|(_, refresh, _)| *refresh > 0.2));
    }

    #[test]
    fn table7_gain_decreases_with_budget() {
        let rows = table7(ModelKind::Llama2_13b, &[2048, 3500, 5250, 7000, 8750]);
        assert_eq!(rows.len(), 5);
        for pair in rows.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "{pair:?}");
        }
        assert!(rows.last().unwrap().1 > 1.0);
    }

    #[test]
    fn figure15b_each_optimisation_helps() {
        let rows = figure15b(ModelKind::Llama2_7b);
        assert_eq!(rows.len(), 4);
        assert!(rows[1].1 >= rows[0].1);
        assert!(rows[2].1 >= rows[1].1 * 0.99);
        assert!(rows[3].1 >= rows[2].1 * 0.99);
    }

    #[test]
    fn figure15a_recompute_saves_energy() {
        let (with, without) = figure15a(ModelKind::Llama3_2_3b);
        assert!(with < without);
    }

    #[test]
    fn figure16a_regimes() {
        let points = figure16a(ModelKind::Llama2_7b);
        assert!(!points[0].1.compute_bound);
        assert!(points[2].1.compute_bound);
        assert!(points[1].1.performance_macs_per_s >= points[0].1.performance_macs_per_s);
    }

    #[test]
    fn serving_batch_summary_accounts_every_session() {
        let summary = serving_batch(ModelKind::Llama2_7b, 3, 6, 4);
        assert_eq!(summary.sessions, 3);
        assert_eq!(summary.tokens_generated, 12);
        assert!(summary.hardware_energy_j > 0.0);
        assert!(summary.mean_request_latency_s > 0.0);
    }

    #[test]
    fn serving_contention_sweep_trades_queueing_for_capacity() {
        let rows = serving_contention(ModelKind::Llama2_7b, 3, 12, 6, &[1.0, 0.5]);
        assert_eq!(rows.len(), 2);
        let ample = &rows[0];
        let scarce = &rows[1];
        // Everything fits at scale 1.0: no queueing, no spill.
        assert_eq!(ample.max_queue_ticks, 0);
        assert_eq!(ample.spill_bytes, 0);
        // At half capacity the third request queues behind the first two,
        // whose decode growth oversubscribes the shared budget and spills...
        assert!(scarce.max_queue_ticks > 0);
        assert!(scarce.spill_bytes > 0);
        assert!(scarce.dram_energy_j > ample.dram_energy_j);
        // ...but the functional output is unchanged.
        assert_eq!(ample.tokens_generated, scarce.tokens_generated);
        assert_eq!(ample.tokens_generated, 18);
    }

    #[test]
    fn bandwidth_ablation_keeps_most_of_the_gain() {
        let (full, halved) =
            bandwidth_ablation(ModelKind::Llama2_7b, InferenceWorkload::triviaqa());
        assert!(halved > 1.0);
        assert!(halved <= full * 1.001);
    }
}
