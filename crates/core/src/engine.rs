//! The Kelle serving engine — the API a downstream user consumes.
//!
//! [`KelleEngine`] binds together the surrogate model, a pluggable KV-cache
//! policy (via the [`CachePolicy`] registry), the 2DRP retention-fault model
//! and the hardware platform model.  Construction goes through
//! [`EngineBuilder`]; serving goes through three entry points of increasing
//! generality:
//!
//! * [`KelleEngine::serve_one`] — one blocking request (a thin wrapper over a
//!   one-shot [`Session`]);
//! * [`KelleEngine::open_session`] — a persistent session whose KV cache
//!   survives across turns, so multi-turn chat pre-fills only each turn's new
//!   tokens;
//! * [`KelleEngine::serve`] — the batch entry point: a continuous-batching
//!   scheduler that interleaves decode steps across many sessions, with every
//!   execution axis selected through [`ServeOptions`] — shared-capacity
//!   arbitration and admission policy ([`SchedulerConfig`]), inline vs.
//!   worker-pool execution ([`ServeOptions::parallel`]), token streaming
//!   ([`ServeOptions::streaming`]) and typed fault surfacing
//!   ([`ServeOptions::fallible`]).  Token streams are bit-identical across
//!   every axis combination; only cost, ordering and metrics change.
//!
//! The historical `serve_batch*` / `try_serve_batch*` matrix survives as thin
//! deprecated wrappers over [`KelleEngine::serve`]; each wrapper's doctest
//! proves the delegation is exact.

use crate::parallel;
use crate::prefix::{PrefixHit, PrefixKey, PrefixSharingConfig, PrefixStore, PrefixStoreStats};
use crate::scheduler::{BatchOutcome, BatchScheduler, SchedulerConfig};
use crate::session::{ServeRequest, Session, TurnOutcome};
use kelle_arch::{Platform, PlatformKind, PlatformReport};
use kelle_cache::{CacheBudget, CachePolicy};
use kelle_edram::{RefreshPolicy, RetentionModel};
use kelle_model::fault::{BitFlipRates, FaultStats};
use kelle_model::{CacheStats, DecodeTrace, ModelConfig, ModelKind, SurrogateModel};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a [`KelleEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Which published model the engine emulates.
    pub model: ModelKind,
    /// Default KV-cache policy for new sessions (overridable per request).
    pub policy: CachePolicy,
    /// KV-cache budget applied by budgeted policies (surrogate scale).
    pub budget: CacheBudget,
    /// eDRAM refresh policy.
    pub refresh_policy: RefreshPolicy,
    /// Hardware platform the serving cost is evaluated on.
    pub platform: PlatformKind,
    /// KV budget used by the hardware model (`N'` at full model scale).
    pub hardware_n_prime: usize,
    /// Batch size assumed by the hardware model.
    pub batch: usize,
    /// RNG seed for weights and fault injection.
    pub seed: u64,
    /// Cross-session prefix KV sharing (see [`crate::prefix`]).
    pub prefix: PrefixSharingConfig,
    /// Worker threads used by the `serve_batch_parallel*` entry points (see
    /// [`crate::parallel`]).  `1` (the default) still runs the full
    /// coordinator/worker protocol on a single worker; token streams and
    /// batch metrics are bit-identical for every value.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            model: ModelKind::Llama2_7b,
            policy: CachePolicy::Aerp,
            budget: CacheBudget::new(64)
                .with_recent_window(16)
                .with_sink_tokens(2),
            refresh_policy: RefreshPolicy::two_dimensional_default(),
            platform: PlatformKind::KelleEdram,
            hardware_n_prime: 2048,
            batch: 16,
            seed: 7,
            prefix: PrefixSharingConfig::default(),
            workers: 1,
        }
    }
}

/// Builder-style construction of a [`KelleEngine`].
///
/// Every knob defaults to [`EngineConfig::default`]; override what you need
/// and call [`EngineBuilder::build`].
///
/// ```rust
/// use kelle::{CachePolicy, KelleEngine};
/// use kelle::model::ModelKind;
///
/// let engine = KelleEngine::builder()
///     .model(ModelKind::Llama3_2_3b)
///     .policy(CachePolicy::Aerp)
///     .seed(11)
///     .build();
/// assert_eq!(engine.config().seed, 11);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Starts from an explicit configuration.
    pub fn from_config(config: EngineConfig) -> Self {
        EngineBuilder { config }
    }

    /// Sets the emulated model.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the default KV-cache policy for sessions.
    pub fn policy(mut self, policy: CachePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the surrogate-scale cache budget.
    pub fn budget(mut self, budget: CacheBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Sets the eDRAM refresh policy.
    pub fn refresh_policy(mut self, policy: RefreshPolicy) -> Self {
        self.config.refresh_policy = policy;
        self
    }

    /// Sets the evaluated hardware platform.
    pub fn platform(mut self, platform: PlatformKind) -> Self {
        self.config.platform = platform;
        self
    }

    /// Sets the full-scale hardware KV budget `N'`.
    pub fn hardware_n_prime(mut self, n_prime: usize) -> Self {
        self.config.hardware_n_prime = n_prime;
        self
    }

    /// Sets the batch size assumed by the hardware model.
    pub fn batch(mut self, batch: usize) -> Self {
        self.config.batch = batch;
        self
    }

    /// Sets the RNG seed for weights and fault injection.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Configures cross-session prefix KV sharing (see [`crate::prefix`]).
    pub fn prefix_sharing(mut self, prefix: PrefixSharingConfig) -> Self {
        self.config.prefix = prefix;
        self
    }

    /// Enables prefix sharing with explicit publication
    /// ([`PrefixSharingConfig::enabled`]).
    pub fn enable_prefix_sharing(self) -> Self {
        self.prefix_sharing(PrefixSharingConfig::enabled())
    }

    /// Sets the number of worker threads the `serve_batch_parallel*` entry
    /// points fan per-session prefill/decode steps out to (see
    /// [`crate::parallel`] for the threading model).  Clamped to at least 1;
    /// the worker count never changes token streams, fault statistics or
    /// batch metrics — only wall-clock time.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> KelleEngine {
        KelleEngine::new(self.config)
    }
}

/// Everything produced by one serving request.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Tokens generated by the surrogate model under the session's policy.
    pub generated: Vec<usize>,
    /// Decode-time cache trace (occupancy, evictions, recompute usage).
    pub trace: DecodeTrace,
    /// Final cache occupancy statistics.
    pub cache: CacheStats,
    /// Hardware latency/energy for the equivalent full-scale request on the
    /// configured platform.
    pub hardware: PlatformReport,
    /// Prompt tokens whose prefill was actually computed (a prefix-cache hit
    /// skips the matched tokens).
    pub prefilled_tokens: usize,
    /// Prompt tokens served from a shared prefix segment instead of being
    /// recomputed.
    pub prefix_hit_tokens: usize,
    /// Fault-injection counters of the serving session at the end of the
    /// request (words examined, bits flipped).  Deterministic per seed; the
    /// parallel-equivalence suite asserts these bit-match single-threaded
    /// serving for every worker count.
    pub faults: FaultStats,
    /// `None` for a request that ran its full decode budget; `Some(reason)`
    /// when the scheduler shed it early (deadline, queue timeout, cancel,
    /// drain, or an unrecoverable worker loss) — `generated` then holds the
    /// partial output produced before the shed.
    pub shed: Option<crate::chaos::ShedReason>,
}

impl From<TurnOutcome> for ServeOutcome {
    fn from(turn: TurnOutcome) -> Self {
        ServeOutcome {
            generated: turn.generated,
            trace: turn.trace,
            cache: turn.cache,
            hardware: turn.hardware,
            prefilled_tokens: turn.prefilled_tokens,
            prefix_hit_tokens: turn.prefix_hit_tokens,
            faults: turn.faults,
            shed: None,
        }
    }
}

/// Aggregate statistics across the lifetime of an engine.
///
/// One *request* is one served turn: a `serve` call, a `Session::turn`, or one
/// admitted request completing inside `serve_batch`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Requests served.
    pub requests: u64,
    /// Total tokens generated.
    pub tokens_generated: u64,
    /// Total evictions performed by the cache policies.
    pub evictions: u64,
    /// Total modelled hardware energy in joules.
    pub hardware_energy_j: f64,
    /// Total prompt tokens served from shared prefix segments (prefill
    /// compute skipped).
    pub prefix_hit_tokens: u64,
}

impl EngineStats {
    /// Component-wise sum of two stat snapshots.
    pub fn merged(self, other: EngineStats) -> EngineStats {
        EngineStats {
            requests: self.requests + other.requests,
            tokens_generated: self.tokens_generated + other.tokens_generated,
            evictions: self.evictions + other.evictions,
            hardware_energy_j: self.hardware_energy_j + other.hardware_energy_j,
            prefix_hit_tokens: self.prefix_hit_tokens + other.prefix_hit_tokens,
        }
    }

    /// The stats contribution of one completed turn — the single definition
    /// both the engine's lifetime counters and the batch scheduler's
    /// aggregate fold in, so the two can never drift apart.
    pub fn from_turn(turn: &TurnOutcome) -> EngineStats {
        EngineStats {
            requests: 1,
            tokens_generated: turn.generated.len() as u64,
            evictions: turn.evictions_delta,
            hardware_energy_j: turn.hardware.total_energy_j(),
            prefix_hit_tokens: turn.prefix_hit_tokens as u64,
        }
    }
}

/// Execution options for the unified batch entry point
/// [`KelleEngine::serve`].
///
/// One value of this struct selects every axis the historical `serve_batch*`
/// matrix spread across ten method names:
///
/// * **Scheduling** — [`with_scheduler`](ServeOptions::with_scheduler)
///   carries the full [`SchedulerConfig`]: shared-capacity arbitration,
///   admission policy, tiering, chaos injection, the parallelism axis and
///   the [`SloSpec`](crate::scheduler::SloSpec) the batch's
///   [`SloReport`](crate::scheduler::SloReport) is graded against.
/// * **Execution** — [`parallel`](ServeOptions::parallel) fans per-session
///   prefill/decode compute across the engine's configured
///   [`workers`](EngineBuilder::workers); the default runs inline on the
///   calling thread.  Token streams are bit-identical either way.
/// * **Streaming** — [`streaming`](ServeOptions::streaming) registers a
///   `(request_index, token)` sink invoked on the coordinating thread in
///   exactly the order single-threaded serving would deliver tokens.
/// * **Fallibility** — [`fallible`](ServeOptions::fallible) surfaces an
///   unrecoverable worker loss as the typed
///   [`ServeError::WorkerLost`](crate::chaos::ServeError) instead of a
///   panic (the entry point chaos-hardened serving drives).
///
/// ```rust
/// use kelle::{KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};
///
/// let engine = KelleEngine::builder().seed(5).workers(2).build();
/// let requests = vec![ServeRequest::new(vec![1, 2, 3], 4)];
/// let mut tokens = Vec::new();
/// let mut sink = |request: usize, token: usize| tokens.push((request, token));
/// let batch = engine
///     .serve(
///         requests,
///         ServeOptions::new()
///             .with_scheduler(SchedulerConfig::default())
///             .parallel()
///             .streaming(&mut sink),
///     )
///     .expect("infallible options cannot fail");
/// assert_eq!(batch.outcomes[0].generated.len(), 4);
/// assert_eq!(tokens.len(), 4);
/// ```
#[derive(Default)]
pub struct ServeOptions<'cb> {
    scheduler: SchedulerConfig,
    parallel: bool,
    fallible: bool,
    sink: Option<&'cb mut dyn FnMut(usize, usize)>,
}

impl std::fmt::Debug for ServeOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("scheduler", &self.scheduler)
            .field("parallel", &self.parallel)
            .field("fallible", &self.fallible)
            .field("sink", &self.sink.as_ref().map(|_| "FnMut(usize, usize)"))
            .finish()
    }
}

impl<'cb> ServeOptions<'cb> {
    /// Default options: default scheduler (unbounded capacity), inline
    /// execution, no streaming sink, infallible.
    pub fn new() -> Self {
        ServeOptions::default()
    }

    /// Runs the batch under an explicit [`SchedulerConfig`] (capacity,
    /// admission policy, tiering, chaos, parallel axis, SLO spec).
    pub fn with_scheduler(mut self, config: SchedulerConfig) -> Self {
        self.scheduler = config;
        self
    }

    /// Fans per-session compute across the engine's configured worker
    /// threads (see [`crate::parallel`]).  Bit-identical streams, fault
    /// statistics and batch metrics for every worker count.
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Streams `(request_index, token)` pairs to `sink` as tokens are
    /// generated, on the coordinating thread, in the order single-threaded
    /// serving would deliver them.
    pub fn streaming(mut self, sink: &'cb mut dyn FnMut(usize, usize)) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Surfaces unrecoverable worker loss as the typed
    /// [`ServeError::WorkerLost`](crate::chaos::ServeError) instead of a
    /// panic, so callers can distinguish infrastructure failure from request
    /// failure.
    pub fn fallible(mut self) -> Self {
        self.fallible = true;
        self
    }

    /// The scheduler configuration the batch will run under.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    /// Whether the batch fans out across worker threads.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Whether worker loss surfaces as a typed error instead of a panic.
    pub fn is_fallible(&self) -> bool {
        self.fallible
    }
}

/// The co-designed serving engine.
#[derive(Debug)]
pub struct KelleEngine {
    config: EngineConfig,
    model: SurrogateModel,
    platform: Platform,
    stats: Mutex<EngineStats>,
    prefix: Mutex<PrefixStore>,
    /// Whether the engine's refresh policy produces zero bit-flip rates, so
    /// the fault seed is unobservable (see
    /// [`effective_prefix_seed`](KelleEngine::effective_prefix_seed)).
    noop_faults: bool,
}

impl KelleEngine {
    /// Builds an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        let model_config = ModelConfig::for_kind(config.model);
        let model = SurrogateModel::new(model_config, config.seed);
        let platform = Platform::preset(config.platform);
        let noop_faults = crate::faults::to_model_rates(
            config
                .refresh_policy
                .bit_flip_rates(&RetentionModel::default()),
        ) == BitFlipRates::zero();
        let prefix =
            PrefixStore::with_limits(config.prefix.store_budget_bytes, config.prefix.ttl_lookups);
        KelleEngine {
            config,
            model,
            platform,
            stats: Mutex::new(EngineStats::default()),
            prefix: Mutex::new(prefix),
            noop_faults,
        }
    }

    /// Starts builder-style construction.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The surrogate model the engine serves with.
    pub fn model(&self) -> &SurrogateModel {
        &self.model
    }

    /// The hardware platform model.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Aggregate statistics since construction.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// Prefix-store statistics (publications, hits, deduplicated tokens).
    pub fn prefix_stats(&self) -> PrefixStoreStats {
        self.prefix.lock().stats()
    }

    /// The engine's prefix-sharing configuration.
    pub fn prefix_config(&self) -> &PrefixSharingConfig {
        &self.config.prefix
    }

    /// Publishes `tokens` as a shared prefix boundary under the engine's
    /// default policy, budget and seed: one cold pre-fill is recorded into a
    /// [`SharedSegment`](kelle_model::SharedSegment) — the *only* time the
    /// prefix's transformer compute runs — and every later session whose
    /// first prompt starts with `tokens` (same configuration) replays it.
    ///
    /// Returns `false` without doing any work when sharing is disabled, the
    /// prefix is shorter than the configured minimum, or an identical
    /// boundary is already published.
    pub fn publish_prefix(&self, tokens: &[usize]) -> bool {
        self.publish_prefix_keyed(tokens, None)
    }

    /// Like [`publish_prefix`](KelleEngine::publish_prefix), honouring a
    /// request's policy/budget/seed overrides (the request's own prompt and
    /// decode length are ignored).
    pub fn publish_prefix_for(&self, tokens: &[usize], request: &ServeRequest) -> bool {
        self.publish_prefix_keyed(tokens, Some(request))
    }

    fn publish_prefix_keyed(&self, tokens: &[usize], request: Option<&ServeRequest>) -> bool {
        if !self.config.prefix.enabled || tokens.len() < self.config.prefix.min_tokens {
            return false;
        }
        // Duplicate check before any session machinery is built: defensive
        // per-fleet publish calls should cost one radix walk, not a cache
        // backend + fault injector construction.
        let key = match request {
            Some(request) => self.prefix_key_for(request),
            None => PrefixKey {
                policy: self.config.policy,
                budget: self.config.budget.clamped(),
                seed: self.effective_prefix_seed(self.config.seed),
            },
        };
        if self.prefix.lock().contains(tokens, &key) {
            return false;
        }
        let mut session = match request {
            Some(request) => Session::for_request(self, request),
            None => Session::with_defaults(self),
        };
        debug_assert_eq!(*session.prefix_key(), key, "key derivations agree");
        let segment = session.record_prefix(tokens);
        self.prefix.lock().publish(tokens, key, segment).is_some()
    }

    /// Publishes a **nested prefix hierarchy** from one recording pass: the
    /// transformer compute for `tokens[..boundaries.last()]` runs exactly
    /// once, and every boundary `b` in `boundaries` becomes its own shared
    /// segment for `tokens[..b]` — e.g. system prompt → per-tool preamble →
    /// per-user history.  Later sessions hit the *deepest* published
    /// boundary their prompt still starts with (radix longest-match), with
    /// streams bit-identical to cold serving.
    ///
    /// Boundaries must be strictly increasing and at most `tokens.len()`.
    /// Boundaries shorter than the configured
    /// [`min_tokens`](PrefixSharingConfig::min_tokens) and boundaries whose
    /// exact prefix is already published are skipped.  Returns the number of
    /// boundaries newly published (0 when sharing is disabled or everything
    /// was already published — no compute runs in that case).
    ///
    /// ```rust
    /// use kelle::{KelleEngine, PrefixSharingConfig};
    ///
    /// let engine = KelleEngine::builder()
    ///     .prefix_sharing(PrefixSharingConfig::enabled())
    ///     .build();
    /// let prompt: Vec<usize> = (0..24).collect();
    /// // One pass publishes both the 8-token and the 24-token boundary.
    /// assert_eq!(engine.publish_prefix_hierarchy(&prompt, &[8, 24]), 2);
    /// assert_eq!(engine.publish_prefix_hierarchy(&prompt, &[8, 24]), 0);
    /// ```
    pub fn publish_prefix_hierarchy(&self, tokens: &[usize], boundaries: &[usize]) -> usize {
        if !self.config.prefix.enabled || boundaries.is_empty() {
            return 0;
        }
        let mut prev = 0;
        for &boundary in boundaries {
            assert!(
                boundary > prev && boundary <= tokens.len(),
                "boundaries must be strictly increasing and within the prefix"
            );
            prev = boundary;
        }
        let key = PrefixKey {
            policy: self.config.policy,
            budget: self.config.budget.clamped(),
            seed: self.effective_prefix_seed(self.config.seed),
        };
        let wanted = |boundary: usize| boundary >= self.config.prefix.min_tokens;
        // Same defensive cheap-path as `publish_prefix`: a fleet re-issuing
        // its publish calls should cost radix walks, not a recording pass.
        {
            let store = self.prefix.lock();
            if boundaries
                .iter()
                .all(|&b| !wanted(b) || store.contains(&tokens[..b], &key))
            {
                return 0;
            }
        }
        let mut session = Session::with_defaults(self);
        debug_assert_eq!(*session.prefix_key(), key, "key derivations agree");
        let segments = session.record_prefix_hierarchy(tokens, boundaries);
        let mut published = 0;
        for (&boundary, segment) in boundaries.iter().zip(segments) {
            if !wanted(boundary) {
                continue;
            }
            if self
                .prefix
                .lock()
                .publish(&tokens[..boundary], key, segment)
                .is_some()
            {
                published += 1;
            }
        }
        published
    }

    /// Longest published prefix of `tokens` under `key`, updating hit/miss
    /// statistics.  `None` when sharing is disabled.
    pub(crate) fn prefix_lookup(&self, tokens: &[usize], key: &PrefixKey) -> Option<PrefixHit> {
        if !self.config.prefix.enabled {
            return None;
        }
        self.prefix.lock().lookup(tokens, key)
    }

    /// Statistics-free prefix probe: `(entry id, matched tokens)` for the
    /// longest published prefix of `tokens` under `key`.  Used by the batch
    /// scheduler to size admission footprints.
    pub(crate) fn prefix_probe(&self, tokens: &[usize], key: &PrefixKey) -> Option<(u64, usize)> {
        if !self.config.prefix.enabled {
            return None;
        }
        self.prefix
            .lock()
            .probe(tokens, key)
            .map(|(id, matched, _)| (id, matched))
    }

    /// The fault seed a prefix key carries for a session seeded with `seed`.
    ///
    /// When the engine's refresh policy produces **zero bit-flip rates**
    /// (e.g. [`RefreshPolicy::Conservative`], or a uniform interval short
    /// enough that nothing decays), the fault RNG is unobservable: every
    /// seed yields bit-identical values and fault statistics.  Prefix keys
    /// therefore normalise the seed to `0`, so sessions that differ *only*
    /// in fault seed share published segments.  Any non-zero rate keeps the
    /// exact seed — streams then genuinely differ per seed and sharing
    /// across them would break the bit-equivalence guarantee.
    pub(crate) fn effective_prefix_seed(&self, seed: u64) -> u64 {
        if self.noop_faults {
            0
        } else {
            seed
        }
    }

    /// The effective prefix-sharing fingerprint a session opened for
    /// `request` will use (the scheduler probes with it before activation).
    pub(crate) fn prefix_key_for(&self, request: &ServeRequest) -> PrefixKey {
        PrefixKey {
            policy: request.policy().unwrap_or(self.config.policy),
            budget: request.budget().unwrap_or(self.config.budget).clamped(),
            seed: self.effective_prefix_seed(request.seed().unwrap_or(self.config.seed)),
        }
    }

    /// Publishes an already recorded segment (the auto-publish path).
    pub(crate) fn prefix_publish(
        &self,
        tokens: &[usize],
        key: PrefixKey,
        segment: Arc<kelle_model::SharedSegment>,
    ) -> Option<u64> {
        self.prefix.lock().publish(tokens, key, segment)
    }

    /// Opens a persistent serving session with the engine's default policy,
    /// budget and seed.  The session owns its KV cache: successive turns
    /// pre-fill only their new tokens and reuse all earlier KV state.
    pub fn open_session(&self) -> Session<'_> {
        Session::with_defaults(self)
    }

    /// Opens a session configured by a request's policy/budget/seed overrides
    /// (the request's prompt and decode length are ignored here; pass them to
    /// [`Session::turn`]).
    pub fn open_session_for(&self, request: &ServeRequest) -> Session<'_> {
        Session::for_request(self, request)
    }

    /// Serves one request: pre-fills `prompt`, decodes `decode_len` tokens
    /// under the engine's default cache policy with retention faults, and
    /// evaluates the hardware cost of the equivalent full-scale request.
    ///
    /// Equivalent to a one-shot session:
    /// [`open_session`](KelleEngine::open_session) + one
    /// [`turn`](Session::turn).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `decode_len` is zero.
    pub fn serve_one(&self, prompt: &[usize], decode_len: usize) -> ServeOutcome {
        self.serve_request(ServeRequest::builder(prompt).decode_len(decode_len).build())
    }

    /// Serves one [`ServeRequest`] (with its per-request overrides) as a
    /// one-shot session.
    pub fn serve_request(&self, request: ServeRequest) -> ServeOutcome {
        let mut session = Session::for_request(self, &request);
        session
            .run_turn(
                request.prompt(),
                request.decode_len(),
                request.label(),
                |_| {},
            )
            .into()
    }

    /// Full-scale KV footprint in bytes of a request retaining `tokens`
    /// tokens, under the configured platform's cache policy, hardware budget
    /// `N'` and batch size — the unit of account of the capacity ledger used
    /// by [`serve_batch_with`](KelleEngine::serve_batch_with), and the same
    /// per-token byte cost the hardware step simulation charges.
    pub fn kv_footprint_bytes(&self, tokens: usize) -> u64 {
        let resident = self
            .platform
            .cache_policy
            .resident_tokens(tokens, Some(self.config.hardware_n_prime));
        self.platform
            .kv_footprint_bytes(self.model.config(), resident, self.config.batch)
    }

    /// Serves many requests under the continuous-batching scheduler — the
    /// single batch entry point of the engine.
    ///
    /// [`ServeOptions`] selects every execution axis: the scheduler
    /// configuration (shared-capacity arbitration, admission policy,
    /// tiering, chaos, SLO spec), inline vs. worker-pool execution, an
    /// optional streaming sink, and whether worker loss surfaces as a typed
    /// error.  Requests carrying an
    /// [`arrival_tick`](ServeRequest::arrival_tick) join the waiting queue
    /// at that scheduler tick instead of immediately, which is how trace
    /// replay drives open-loop arrivals.
    ///
    /// Per-request token streams are **bit-identical** for every option
    /// combination (and every worker count); options change only cost,
    /// ordering and the metrics reported on [`BatchOutcome`].
    ///
    /// Returns per-request outcomes in submission order plus the batch's
    /// aggregate statistics, which equal the component-wise sum of serving
    /// the same requests sequentially.  With default (infallible) options
    /// the call cannot fail and the `Result` can be unwrapped directly.
    ///
    /// ```rust
    /// use kelle::{KelleEngine, ServeOptions, ServeRequest};
    ///
    /// let engine = KelleEngine::builder().seed(9).build();
    /// let batch = engine
    ///     .serve(
    ///         vec![ServeRequest::new(vec![1, 2, 3], 4)],
    ///         ServeOptions::new(),
    ///     )
    ///     .expect("infallible options cannot fail");
    /// assert_eq!(batch.outcomes[0].generated.len(), 4);
    /// ```
    pub fn serve(
        &self,
        requests: Vec<ServeRequest>,
        options: ServeOptions<'_>,
    ) -> Result<BatchOutcome, crate::chaos::ServeError> {
        let ServeOptions {
            scheduler: config,
            parallel: fan_out,
            fallible,
            mut sink,
        } = options;
        let on_token = move |request: usize, token: usize| {
            if let Some(sink) = sink.as_mut() {
                sink(request, token);
            }
        };
        if fan_out {
            if fallible {
                parallel::try_serve_batch_parallel(
                    self,
                    requests,
                    config,
                    self.config.workers,
                    on_token,
                )
            } else {
                Ok(parallel::serve_batch_parallel(
                    self,
                    requests,
                    config,
                    self.config.workers,
                    on_token,
                ))
            }
        } else {
            let mut scheduler = BatchScheduler::with_config(self, config);
            for request in requests {
                scheduler.submit(request);
            }
            if fallible {
                scheduler.try_run_to_completion_streaming_with(
                    &mut crate::parallel::InlineExecutor,
                    on_token,
                )
            } else {
                Ok(scheduler.run_to_completion_streaming(on_token))
            }
        }
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with default
    /// [`ServeOptions`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let old = KelleEngine::builder().seed(3).build().serve_batch(requests.clone());
    /// let new = KelleEngine::builder().seed(3).build()
    ///     .serve(requests, ServeOptions::new()).unwrap();
    /// assert_eq!(old.outcomes[0].generated, new.outcomes[0].generated);
    /// assert_eq!(old.stats, new.stats);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new()`"
    )]
    pub fn serve_batch(&self, requests: Vec<ServeRequest>) -> BatchOutcome {
        self.serve(requests, ServeOptions::new())
            .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::streaming`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let mut old_tokens = Vec::new();
    /// KelleEngine::builder().seed(3).build()
    ///     .serve_batch_streaming(requests.clone(), |r, t| old_tokens.push((r, t)));
    /// let mut new_tokens = Vec::new();
    /// let mut sink = |r: usize, t: usize| new_tokens.push((r, t));
    /// KelleEngine::builder().seed(3).build()
    ///     .serve(requests, ServeOptions::new().streaming(&mut sink)).unwrap();
    /// assert_eq!(old_tokens, new_tokens);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().streaming(sink)`"
    )]
    pub fn serve_batch_streaming(
        &self,
        requests: Vec<ServeRequest>,
        mut on_token: impl FnMut(usize, usize),
    ) -> BatchOutcome {
        self.serve(requests, ServeOptions::new().streaming(&mut on_token))
            .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::with_scheduler`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let config = SchedulerConfig::default().with_kv_capacity_bytes(1 << 20);
    /// let old = KelleEngine::builder().seed(3).build()
    ///     .serve_batch_with(requests.clone(), config);
    /// let new = KelleEngine::builder().seed(3).build()
    ///     .serve(requests, ServeOptions::new().with_scheduler(config)).unwrap();
    /// assert_eq!(old.outcomes[0].generated, new.outcomes[0].generated);
    /// assert_eq!(old.contention, new.contention);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().with_scheduler(config)`"
    )]
    pub fn serve_batch_with(
        &self,
        requests: Vec<ServeRequest>,
        config: SchedulerConfig,
    ) -> BatchOutcome {
        self.serve(requests, ServeOptions::new().with_scheduler(config))
            .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::with_scheduler`] + [`ServeOptions::streaming`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let config = SchedulerConfig::default();
    /// let mut old_tokens = Vec::new();
    /// KelleEngine::builder().seed(3).build()
    ///     .serve_batch_streaming_with(requests.clone(), config, |r, t| old_tokens.push((r, t)));
    /// let mut new_tokens = Vec::new();
    /// let mut sink = |r: usize, t: usize| new_tokens.push((r, t));
    /// KelleEngine::builder().seed(3).build()
    ///     .serve(requests, ServeOptions::new().with_scheduler(config).streaming(&mut sink))
    ///     .unwrap();
    /// assert_eq!(old_tokens, new_tokens);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().with_scheduler(config).streaming(sink)`"
    )]
    pub fn serve_batch_streaming_with(
        &self,
        requests: Vec<ServeRequest>,
        config: SchedulerConfig,
        mut on_token: impl FnMut(usize, usize),
    ) -> BatchOutcome {
        self.serve(
            requests,
            ServeOptions::new()
                .with_scheduler(config)
                .streaming(&mut on_token),
        )
        .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::parallel`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let old = KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve_batch_parallel(requests.clone());
    /// let new = KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve(requests, ServeOptions::new().parallel()).unwrap();
    /// assert_eq!(old.outcomes[0].generated, new.outcomes[0].generated);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().parallel()`"
    )]
    pub fn serve_batch_parallel(&self, requests: Vec<ServeRequest>) -> BatchOutcome {
        self.serve(requests, ServeOptions::new().parallel())
            .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::parallel`] + [`ServeOptions::with_scheduler`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let config = SchedulerConfig::default();
    /// let old = KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve_batch_parallel_with(requests.clone(), config);
    /// let new = KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve(requests, ServeOptions::new().parallel().with_scheduler(config)).unwrap();
    /// assert_eq!(old.outcomes[0].generated, new.outcomes[0].generated);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().parallel().with_scheduler(config)`"
    )]
    pub fn serve_batch_parallel_with(
        &self,
        requests: Vec<ServeRequest>,
        config: SchedulerConfig,
    ) -> BatchOutcome {
        self.serve(
            requests,
            ServeOptions::new().parallel().with_scheduler(config),
        )
        .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::parallel`] + [`ServeOptions::streaming`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let mut old_tokens = Vec::new();
    /// KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve_batch_parallel_streaming(requests.clone(), |r, t| old_tokens.push((r, t)));
    /// let mut new_tokens = Vec::new();
    /// let mut sink = |r: usize, t: usize| new_tokens.push((r, t));
    /// KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve(requests, ServeOptions::new().parallel().streaming(&mut sink)).unwrap();
    /// assert_eq!(old_tokens, new_tokens);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().parallel().streaming(sink)`"
    )]
    pub fn serve_batch_parallel_streaming(
        &self,
        requests: Vec<ServeRequest>,
        mut on_token: impl FnMut(usize, usize),
    ) -> BatchOutcome {
        self.serve(
            requests,
            ServeOptions::new().parallel().streaming(&mut on_token),
        )
        .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::parallel`] + [`ServeOptions::with_scheduler`] +
    /// [`ServeOptions::streaming`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let config = SchedulerConfig::default();
    /// let mut old_tokens = Vec::new();
    /// KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve_batch_parallel_streaming_with(requests.clone(), config,
    ///         |r, t| old_tokens.push((r, t)));
    /// let mut new_tokens = Vec::new();
    /// let mut sink = |r: usize, t: usize| new_tokens.push((r, t));
    /// KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve(requests,
    ///         ServeOptions::new().parallel().with_scheduler(config).streaming(&mut sink))
    ///     .unwrap();
    /// assert_eq!(old_tokens, new_tokens);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().parallel().with_scheduler(config).streaming(sink)`"
    )]
    pub fn serve_batch_parallel_streaming_with(
        &self,
        requests: Vec<ServeRequest>,
        config: SchedulerConfig,
        mut on_token: impl FnMut(usize, usize),
    ) -> BatchOutcome {
        self.serve(
            requests,
            ServeOptions::new()
                .parallel()
                .with_scheduler(config)
                .streaming(&mut on_token),
        )
        .expect("infallible options cannot fail")
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with
    /// [`ServeOptions::parallel`] + [`ServeOptions::fallible`] +
    /// [`ServeOptions::with_scheduler`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let config = SchedulerConfig::default();
    /// let old = KelleEngine::builder().seed(3).workers(2).build()
    ///     .try_serve_batch_parallel_with(requests.clone(), config).unwrap();
    /// let new = KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve(requests,
    ///         ServeOptions::new().parallel().fallible().with_scheduler(config))
    ///     .unwrap();
    /// assert_eq!(old.outcomes[0].generated, new.outcomes[0].generated);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().parallel().fallible().with_scheduler(config)`"
    )]
    pub fn try_serve_batch_parallel_with(
        &self,
        requests: Vec<ServeRequest>,
        config: SchedulerConfig,
    ) -> Result<BatchOutcome, crate::chaos::ServeError> {
        self.serve(
            requests,
            ServeOptions::new()
                .parallel()
                .fallible()
                .with_scheduler(config),
        )
    }

    /// Deprecated alias for [`serve`](KelleEngine::serve) with every option
    /// set: [`ServeOptions::parallel`] + [`ServeOptions::fallible`] +
    /// [`ServeOptions::with_scheduler`] + [`ServeOptions::streaming`].
    ///
    /// ```rust
    /// # #![allow(deprecated)]
    /// use kelle::{KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};
    /// let requests = vec![ServeRequest::new(vec![1, 2, 3], 2)];
    /// let config = SchedulerConfig::default();
    /// let mut old_tokens = Vec::new();
    /// KelleEngine::builder().seed(3).workers(2).build()
    ///     .try_serve_batch_parallel_streaming_with(requests.clone(), config,
    ///         |r, t| old_tokens.push((r, t)))
    ///     .unwrap();
    /// let mut new_tokens = Vec::new();
    /// let mut sink = |r: usize, t: usize| new_tokens.push((r, t));
    /// KelleEngine::builder().seed(3).workers(2).build()
    ///     .serve(requests,
    ///         ServeOptions::new().parallel().fallible()
    ///             .with_scheduler(config).streaming(&mut sink))
    ///     .unwrap();
    /// assert_eq!(old_tokens, new_tokens);
    /// ```
    #[deprecated(
        since = "0.10.0",
        note = "use `KelleEngine::serve` with `ServeOptions::new().parallel().fallible().with_scheduler(config).streaming(sink)`"
    )]
    pub fn try_serve_batch_parallel_streaming_with(
        &self,
        requests: Vec<ServeRequest>,
        config: SchedulerConfig,
        mut on_token: impl FnMut(usize, usize),
    ) -> Result<BatchOutcome, crate::chaos::ServeError> {
        self.serve(
            requests,
            ServeOptions::new()
                .parallel()
                .fallible()
                .with_scheduler(config)
                .streaming(&mut on_token),
        )
    }

    /// Folds one completed turn into the lifetime statistics.
    pub(crate) fn record_turn(&self, outcome: &TurnOutcome) {
        let mut stats = self.stats.lock();
        *stats = stats.merged(EngineStats::from_turn(outcome));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> KelleEngine {
        KelleEngine::new(EngineConfig::default())
    }

    #[test]
    fn serve_produces_tokens_and_hardware_costs() {
        let engine = engine();
        let outcome = engine.serve_one(&[3, 1, 4, 1, 5, 9, 2, 6], 12);
        assert_eq!(outcome.generated.len(), 12);
        assert!(outcome.hardware.total_latency_s() > 0.0);
        assert!(outcome.hardware.total_energy_j() > 0.0);
        assert!(outcome.cache.insertions > 0);
    }

    #[test]
    fn stats_accumulate_across_requests() {
        let engine = engine();
        engine.serve_one(&[1, 2, 3, 4], 4);
        engine.serve_one(&[5, 6, 7, 8], 4);
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.tokens_generated, 8);
        assert!(stats.hardware_energy_j > 0.0);
    }

    #[test]
    fn budget_is_respected_during_serving() {
        let config = EngineConfig {
            budget: CacheBudget::new(8)
                .with_recent_window(2)
                .with_sink_tokens(1),
            ..EngineConfig::default()
        };
        let engine = KelleEngine::new(config);
        let prompt: Vec<usize> = (0..32).collect();
        let outcome = engine.serve_one(&prompt, 16);
        // Per-head occupancy never exceeds the budget after prefill pruning.
        assert!(outcome.trace.peak_entries() > 0);
        assert!(outcome.cache.evictions > 0);
    }

    #[test]
    fn serving_is_deterministic_for_a_seed() {
        let a = engine().serve_one(&[9, 8, 7, 6, 5], 8).generated;
        let b = engine().serve_one(&[9, 8, 7, 6, 5], 8).generated;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "prompt must contain at least one token")]
    fn empty_prompt_panics() {
        engine().serve_one(&[], 4);
    }

    #[test]
    fn builder_overrides_knobs() {
        let engine = KelleEngine::builder()
            .model(ModelKind::Mistral7b)
            .policy(CachePolicy::StreamingLlm)
            .budget(CacheBudget::new(16))
            .platform(PlatformKind::OriginalSram)
            .hardware_n_prime(1024)
            .batch(4)
            .seed(99)
            .build();
        let config = engine.config();
        assert_eq!(config.model, ModelKind::Mistral7b);
        assert_eq!(config.policy, CachePolicy::StreamingLlm);
        assert_eq!(config.hardware_n_prime, 1024);
        assert_eq!(config.batch, 4);
        assert_eq!(config.seed, 99);
    }

    #[test]
    fn engine_policy_selects_backend() {
        let engine = KelleEngine::builder().policy(CachePolicy::Full).build();
        let outcome = engine.serve_one(&[1, 2, 3, 4, 5, 6], 4);
        // The full policy never evicts.
        assert_eq!(outcome.cache.evictions, 0);
    }

    #[test]
    fn published_prefix_hit_skips_compute_and_matches_cold_stream() {
        use crate::prefix::PrefixSharingConfig;
        let prefix: Vec<usize> = (0..24).map(|i| (i * 7 + 3) % 512).collect();
        let suffix = [9, 8, 7, 6];
        let prompt: Vec<usize> = prefix.iter().chain(suffix.iter()).copied().collect();

        let cold = engine().serve_one(&prompt, 6);

        let sharing = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled())
            .build();
        assert!(sharing.publish_prefix(&prefix));
        assert!(
            !sharing.publish_prefix(&prefix),
            "duplicate publish is a no-op"
        );
        let hit = sharing.serve_one(&prompt, 6);

        assert_eq!(
            hit.generated, cold.generated,
            "streams must be bit-identical"
        );
        assert_eq!(hit.prefix_hit_tokens, prefix.len());
        assert_eq!(hit.prefilled_tokens, suffix.len());
        assert_eq!(cold.prefix_hit_tokens, 0);
        let stats = sharing.prefix_stats();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.hit_tokens, prefix.len() as u64);
        assert_eq!(sharing.stats().prefix_hit_tokens, prefix.len() as u64);
    }

    #[test]
    fn auto_publish_warms_the_store_for_later_sessions() {
        use crate::prefix::PrefixSharingConfig;
        let system: Vec<usize> = (0..16).map(|i| (i * 5 + 1) % 512).collect();
        let engine = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled().with_auto_publish(system.len()))
            .build();
        let mut first: Vec<usize> = system.clone();
        first.extend([1, 2, 3]);
        let mut second: Vec<usize> = system.clone();
        second.extend([4, 5]);

        let a = engine.serve_one(&first, 4);
        assert_eq!(a.prefix_hit_tokens, 0, "first session is the publisher");
        let b = engine.serve_one(&second, 4);
        assert_eq!(b.prefix_hit_tokens, system.len(), "second session hits");
        assert_eq!(b.prefilled_tokens, 2);

        // Identical to a cold engine without sharing.
        let cold = KelleEngine::new(EngineConfig::default()).serve_one(&second, 4);
        assert_eq!(b.generated, cold.generated);
    }

    #[test]
    fn auto_publish_deepens_past_a_shorter_published_prefix() {
        use crate::prefix::PrefixSharingConfig;
        let system: Vec<usize> = (0..24).map(|i| (i * 11 + 2) % 512).collect();
        let engine = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled().with_auto_publish(system.len()))
            .build();
        // A shallower boundary is already published (e.g. a shared preamble
        // of the system prompt).
        assert!(engine.publish_prefix(&system[..8]));

        let mut prompt = system.clone();
        prompt.extend([3, 1, 4]);
        // The first session must not settle for the 8-token hit: it runs
        // cold once and publishes the configured 24-token boundary.
        let first = engine.serve_one(&prompt, 2);
        assert_eq!(first.prefix_hit_tokens, 0);
        assert_eq!(engine.prefix_stats().published, 2);
        // From then on the fleet hits the deep boundary.
        let second = engine.serve_one(&prompt, 2);
        assert_eq!(second.prefix_hit_tokens, system.len());
        assert_eq!(second.prefilled_tokens, 3);
        // Still bit-identical to a cold engine.
        let cold = KelleEngine::new(EngineConfig::default()).serve_one(&prompt, 2);
        assert_eq!(first.generated, cold.generated);
        assert_eq!(second.generated, cold.generated);
    }

    #[test]
    fn noop_fault_policies_share_segments_across_seeds() {
        use crate::prefix::PrefixSharingConfig;
        let prefix: Vec<usize> = (0..12).map(|i| (i * 13 + 5) % 512).collect();
        let mut prompt = prefix.clone();
        prompt.extend([3, 4]);

        // Conservative refresh injects no faults: the seed is unobservable,
        // so a session with a different fault seed still hits the boundary.
        let noop = KelleEngine::builder()
            .refresh_policy(RefreshPolicy::Conservative)
            .prefix_sharing(PrefixSharingConfig::enabled())
            .build();
        assert!(noop.publish_prefix(&prefix));
        let other_seed = ServeRequest::builder(prompt.clone())
            .decode_len(4)
            .seed(12_345)
            .build();
        let hit = noop.serve_request(other_seed.clone());
        assert_eq!(hit.prefix_hit_tokens, prefix.len());
        // And the stream matches a cold engine serving the same request.
        let cold = KelleEngine::builder()
            .refresh_policy(RefreshPolicy::Conservative)
            .build()
            .serve_request(other_seed);
        assert_eq!(hit.generated, cold.generated);
        assert_eq!(hit.faults, cold.faults);

        // The default 2DRP policy flips bits: seeds genuinely matter and a
        // different seed must keep missing.
        let faulting = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled())
            .build();
        assert!(faulting.publish_prefix(&prefix));
        let miss = faulting.serve_request(
            ServeRequest::builder(prompt)
                .decode_len(4)
                .seed(12_345)
                .build(),
        );
        assert_eq!(miss.prefix_hit_tokens, 0);
    }

    #[test]
    fn sharing_disabled_never_publishes_or_hits() {
        let engine = engine();
        assert!(!engine.publish_prefix(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let stats = engine.prefix_stats();
        assert_eq!(stats.published, 0);
        engine.serve_one(&[1, 2, 3, 4, 5, 6, 7, 8], 2);
        assert_eq!(engine.prefix_stats().hits + engine.prefix_stats().misses, 0);
    }

    #[test]
    fn stats_merge_componentwise() {
        let a = EngineStats {
            requests: 1,
            tokens_generated: 2,
            evictions: 3,
            hardware_energy_j: 4.0,
            prefix_hit_tokens: 5,
        };
        let b = a;
        let sum = a.merged(b);
        assert_eq!(sum.requests, 2);
        assert_eq!(sum.tokens_generated, 4);
        assert_eq!(sum.evictions, 6);
        assert!((sum.hardware_energy_j - 8.0).abs() < 1e-12);
    }
}
