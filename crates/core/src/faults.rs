//! Bridges the eDRAM refresh policy (device side) to the functional model's
//! fault injector (algorithm side).
//!
//! `kelle-edram` expresses retention failures as per-group bit-flip rates
//! ([`GroupBitFlipRates`]); `kelle-model` consumes them as a
//! [`FaultInjector`](kelle_model::fault::FaultInjector).  Keeping the
//! conversion here avoids a dependency between the two substrate crates.

use kelle_edram::{GroupBitFlipRates, RefreshPolicy, RetentionModel};
use kelle_model::fault::{BitFlipRates, ProbabilisticFaults};

/// Converts device-side group rates into the functional model's rate struct.
pub fn to_model_rates(rates: GroupBitFlipRates) -> BitFlipRates {
    BitFlipRates {
        hst_msb: rates.hst_msb,
        hst_lsb: rates.hst_lsb,
        lst_msb: rates.lst_msb,
        lst_lsb: rates.lst_lsb,
    }
}

/// Builds a deterministic fault injector realising a refresh policy under a
/// retention model.
pub fn fault_injector_for_policy(
    policy: &RefreshPolicy,
    retention: &RetentionModel,
    seed: u64,
) -> ProbabilisticFaults {
    ProbabilisticFaults::new(to_model_rates(policy.bit_flip_rates(retention)), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle_model::fault::{FaultInjector, TokenGroup};

    #[test]
    fn conservative_policy_produces_no_faults() {
        let mut injector =
            fault_injector_for_policy(&RefreshPolicy::Conservative, &RetentionModel::default(), 1);
        for i in 0..200 {
            let v = i as f32 * 0.01;
            assert_eq!(injector.corrupt(v, TokenGroup::HighScore), v);
        }
    }

    #[test]
    fn relaxed_policy_produces_faults() {
        let mut injector = fault_injector_for_policy(
            &RefreshPolicy::Uniform(20_000.0),
            &RetentionModel::default(),
            1,
        );
        let mut changed = 0;
        for i in 0..2000 {
            let v = 0.5 + i as f32 * 0.001;
            if injector.corrupt(v, TokenGroup::LowScore) != v {
                changed += 1;
            }
        }
        assert!(changed > 0);
    }

    #[test]
    fn rates_conversion_is_field_wise() {
        let rates = GroupBitFlipRates {
            hst_msb: 0.1,
            hst_lsb: 0.2,
            lst_msb: 0.3,
            lst_lsb: 0.4,
        };
        let converted = to_model_rates(rates);
        assert_eq!(converted.hst_msb, 0.1);
        assert_eq!(converted.lst_lsb, 0.4);
    }

    #[test]
    fn twodrp_rates_preserve_ordering() {
        let policy = RefreshPolicy::two_dimensional_default();
        let rates = to_model_rates(policy.bit_flip_rates(&RetentionModel::default()));
        assert!(rates.hst_msb <= rates.lst_msb);
        assert!(rates.lst_msb <= rates.hst_lsb);
        assert!(rates.hst_lsb <= rates.lst_lsb);
    }
}
