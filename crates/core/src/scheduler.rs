//! Continuous-batching scheduler.
//!
//! [`BatchScheduler`] keeps many [`Session`]s in flight at once.  Admission
//! pre-fills a request's prompt; each [`step`](BatchScheduler::step) then runs
//! *one* decode step for *every* unfinished request, in admission order
//! (round-robin), so no request can starve while another drains its decode
//! budget.  This is the serving shape the paper targets on edge accelerators:
//! a shared hardware budget advanced one token per sequence per scheduler
//! tick, instead of head-of-line blocking behind whole requests.
//!
//! Sessions are functionally independent (each owns its cache and fault
//! stream), so interleaving decode steps does not change any request's token
//! stream — the scheduler's aggregate statistics provably equal the sum of
//! serving the same requests sequentially, which the integration tests
//! assert.

use crate::engine::{EngineStats, KelleEngine, ServeOutcome};
use crate::session::{ServeRequest, Session};
use kelle_model::DecodeTrace;

/// One token generated during a scheduler step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// Index of the request (admission order) that produced the token.
    pub request: usize,
    /// The generated token.
    pub token: usize,
    /// Whether this token completed the request.
    pub finished: bool,
}

/// Everything produced by a batch of requests.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request outcomes, in admission order.
    pub outcomes: Vec<ServeOutcome>,
    /// Aggregate statistics of the batch: the component-wise sum of the
    /// per-request outcomes, equal to what serving the batch sequentially
    /// would have added to [`KelleEngine::stats`].
    pub stats: EngineStats,
}

struct Slot<'e> {
    request: ServeRequest,
    session: Session<'e>,
    prefilled: usize,
    generated: Vec<usize>,
    trace: DecodeTrace,
    remaining: usize,
}

/// Interleaves decode steps across many in-flight serving sessions.
pub struct BatchScheduler<'e> {
    engine: &'e KelleEngine,
    slots: Vec<Slot<'e>>,
    finished: Vec<Option<ServeOutcome>>,
    stats: EngineStats,
}

impl<'e> BatchScheduler<'e> {
    /// A scheduler with no admitted requests.
    pub fn new(engine: &'e KelleEngine) -> Self {
        BatchScheduler {
            engine,
            slots: Vec::new(),
            finished: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Admits a request: opens its session (honouring per-request overrides)
    /// and pre-fills the prompt.  Returns the request's index, which later
    /// [`StepEvent`]s and the final outcome vector refer to.
    pub fn admit(&mut self, request: ServeRequest) -> usize {
        let mut session = self.engine.open_session_for(&request);
        let prefilled = session.prefill(request.prompt());
        let remaining = request.decode_len();
        self.slots.push(Slot {
            request,
            session,
            prefilled,
            generated: Vec::with_capacity(remaining),
            trace: DecodeTrace::default(),
            remaining,
        });
        self.finished.push(None);
        self.slots.len() - 1
    }

    /// Number of admitted requests still decoding.
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|s| s.remaining > 0).count()
    }

    /// Whether every admitted request has finished.
    pub fn is_idle(&self) -> bool {
        self.active() == 0
    }

    /// Runs one decode step for every unfinished request, in admission order.
    /// Returns one [`StepEvent`] per request that made progress (every active
    /// request does — the fairness property the tests assert).
    pub fn step(&mut self) -> Vec<StepEvent> {
        let mut events = Vec::new();
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.remaining == 0 {
                continue;
            }
            let step = slot.session.decode_one();
            slot.generated.push(step.token);
            slot.trace.steps.push(step.record);
            slot.remaining -= 1;
            let finished = slot.remaining == 0;
            events.push(StepEvent {
                request: index,
                token: step.token,
                finished,
            });
            if finished {
                let generated = std::mem::take(&mut slot.generated);
                let trace = std::mem::take(&mut slot.trace);
                let turn = slot.session.finish_turn(
                    generated,
                    trace,
                    slot.prefilled,
                    slot.request.decode_len(),
                    slot.request.label(),
                );
                self.stats = self.stats.merged(EngineStats::from_turn(&turn));
                self.finished[index] = Some(turn.into());
            }
        }
        events
    }

    /// Collects the per-request outcomes and the batch aggregate.
    ///
    /// # Panics
    ///
    /// Panics if any admitted request has not finished yet (drive
    /// [`step`](BatchScheduler::step) until [`is_idle`](BatchScheduler::is_idle)).
    pub fn finish(self) -> BatchOutcome {
        assert!(
            self.is_idle(),
            "finish() called with {} request(s) still active",
            self.active()
        );
        let outcomes: Vec<ServeOutcome> = self
            .finished
            .into_iter()
            .map(|o| o.expect("finished request has an outcome"))
            .collect();
        BatchOutcome {
            outcomes,
            stats: self.stats,
        }
    }
}

impl std::fmt::Debug for BatchScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("admitted", &self.slots.len())
            .field("active", &self.active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> KelleEngine {
        KelleEngine::new(EngineConfig::default())
    }

    #[test]
    fn scheduler_round_robins_until_done() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.admit(ServeRequest::new(vec![1, 2, 3], 2));
        scheduler.admit(ServeRequest::new(vec![4, 5, 6], 4));
        assert_eq!(scheduler.active(), 2);

        // Both requests progress in the first two steps; only the longer one
        // afterwards.
        let s1 = scheduler.step();
        assert_eq!(s1.len(), 2);
        let s2 = scheduler.step();
        assert_eq!(s2.len(), 2);
        assert!(s2.iter().any(|e| e.request == 0 && e.finished));
        let s3 = scheduler.step();
        assert_eq!(s3.len(), 1);
        assert_eq!(s3[0].request, 1);
        scheduler.step();
        assert!(scheduler.is_idle());

        let outcome = scheduler.finish();
        assert_eq!(outcome.outcomes.len(), 2);
        assert_eq!(outcome.outcomes[0].generated.len(), 2);
        assert_eq!(outcome.outcomes[1].generated.len(), 4);
        assert_eq!(outcome.stats.requests, 2);
        assert_eq!(outcome.stats.tokens_generated, 6);
    }

    #[test]
    #[should_panic(expected = "still active")]
    fn finish_before_idle_panics() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.admit(ServeRequest::new(vec![1, 2], 3));
        scheduler.finish();
    }
}
