//! Continuous-batching scheduler with shared-capacity admission control.
//!
//! [`BatchScheduler`] keeps many [`Session`]s in flight at once, arbitrating
//! one shared eDRAM budget across them.  Serving is a three-stage pipeline:
//!
//! 1. **Submit** — [`submit`](BatchScheduler::submit) enqueues a request into
//!    the waiting queue.  It does *not* guarantee immediate service.
//! 2. **Admit** — a configurable [`AdmissionPolicy`] promotes waiting
//!    requests into active decode slots whenever the [`CapacityLedger`] can
//!    host their prefill KV footprint (computed at full hardware scale, the
//!    same per-token byte cost [`Platform::simulate`](kelle_arch::Platform)
//!    charges).  Admission pre-fills the prompt and opens a capacity lease.
//! 3. **Step** — each [`step`](BatchScheduler::step) runs one decode step for
//!    every active request in admission order (round-robin fairness), grows
//!    each lease by the decoded token's KV bytes, releases capacity when a
//!    request completes, and back-fills from the waiting queue.
//!
//! # Equivalence guarantee
//!
//! Sessions are functionally independent (each owns its cache and fault
//! stream), so *capacity arbitration changes cost and ordering, never sampled
//! tokens*: for any capacity and admission policy, every request's generated
//! token stream is byte-identical to serving it alone or through the
//! unbounded scheduler — the integration and property tests assert this for
//! random request mixes.  Contention shows up in two places only: the
//! hardware cost model (a request whose peak-concurrency share of the eDRAM
//! is smaller than its working set has the excess charged at DRAM access
//! cost) and the queueing metrics of [`BatchOutcome::contention`].
//!
//! # Capacity model
//!
//! The ledger tracks each session's *full-scale* KV bytes — per-token bytes
//! under the platform's cache policy (AERP stores popular tokens as input
//! vectors at half cost) times layers, times the hardware batch size, with
//! the token count capped at the hardware budget `N'`.  Admission checks the
//! prompt's prefill footprint; decode growth is never refused (a live request
//! cannot be paused mid-token), so the ledger may oversubscribe.  A request
//! whose peak concurrency exceeded the arbitrated capacity is costed against
//! a proportional slice of the on-chip KV memory,
//! `min(capacity, physical) x my_bytes / peak_concurrent_bytes`, instead of
//! the whole device; the bytes that lose on-chip residency are reported as
//! spill and charged at [`DramSpec`](kelle_edram::DramSpec) cost.  With
//! unbounded capacity (the default) every request is admitted at submit time
//! with the whole memory granted, reproducing the PR 1 scheduler exactly.

use crate::chaos::{
    ChaosConfig, ChaosMetrics, ChaosPlan, Checkpoint, MigrationFaults, ServeError, ShedReason,
};
use crate::engine::{EngineStats, KelleEngine, ServeOutcome};
use crate::parallel::{
    InlineExecutor, ParallelAxis, ParallelMetrics, SessionTask, StepExecutor, TaskOutput,
};
use crate::session::{ServeRequest, Session};
use crate::tier::{TierConfig, TierManager, TieringMetrics};
use kelle_arch::{PhaseMetrics, PlatformReport};
use kelle_cache::{BudgetPartitioner, CacheBudget, PartitionMode};
use kelle_edram::{CapacityLedger, LeaseId};
use kelle_model::{CacheStats, DecodeStep, DecodeTrace, FaultStats};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Which waiting request the admission stage promotes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Strict first-come-first-served: only the head of the queue is ever
    /// considered, so a large request at the head blocks everything behind it
    /// (no starvation, head-of-line blocking possible).
    #[default]
    Fcfs,
    /// Shortest-prompt-first: the waiting request with the smallest prefill
    /// footprint is considered first (better queue latency for small
    /// requests; a large request can be overtaken indefinitely).
    ShortestPromptFirst,
    /// First-fit: the queue is scanned in arrival order and every request
    /// whose footprint fits is admitted, skipping over those that do not.
    CapacityFit,
}

impl AdmissionPolicy {
    /// All policies, for sweeps.
    pub fn all() -> [AdmissionPolicy; 3] {
        [
            AdmissionPolicy::Fcfs,
            AdmissionPolicy::ShortestPromptFirst,
            AdmissionPolicy::CapacityFit,
        ]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Fcfs => "fcfs",
            AdmissionPolicy::ShortestPromptFirst => "shortest-prompt-first",
            AdmissionPolicy::CapacityFit => "capacity-fit",
        }
    }
}

/// Configuration of the admission pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Shared KV-memory budget concurrent requests contend for, in full-scale
    /// bytes.  `None` (the default) is the unbounded single-tenant model of
    /// the PR 1 scheduler: every request is admitted at submit time and
    /// costed against the whole KV memory.
    pub kv_capacity_bytes: Option<u64>,
    /// How waiting requests are promoted when capacity frees up.
    pub admission: AdmissionPolicy,
    /// The tiered KV memory hierarchy (see [`crate::tier`]).  `None` (the
    /// default) runs the flat single-budget model above.  When set (and
    /// `kv_capacity_bytes` is `None`), the ledger spans the *whole
    /// hierarchy* while admission plans against the eDRAM tier's budget
    /// only; resident KV is demoted/promoted across tiers with migration
    /// costs reported in [`BatchOutcome::tiering`].
    pub tiering: Option<TierConfig>,
    /// Which parallelism axis [`step_with`](BatchScheduler::step_with) fans
    /// decode compute out on (executors without a second axis, like
    /// [`InlineExecutor`], ignore it).  `#[serde(default)]` keeps configs
    /// serialized before this field loadable; the default
    /// ([`ParallelAxis::Auto`]) picks per tick based on batch width.
    #[serde(default)]
    pub parallel_axis: ParallelAxis,
    /// Deterministic fault injection (see [`crate::chaos`]).  `None` or an
    /// all-zero config disables injection entirely — the chaos path then
    /// takes no checkpoints and allocates nothing extra per tick.
    #[serde(default)]
    pub chaos: Option<ChaosConfig>,
    /// The serving-level objective the batch is judged against (see
    /// [`SloSpec`]).  Purely observational: the spec never changes
    /// scheduling decisions or token streams, it only classifies each
    /// completed request as meeting or missing the objective in the final
    /// [`SloReport`].  The default accepts everything.
    #[serde(default)]
    pub slo: SloSpec,
}

impl SchedulerConfig {
    /// Unbounded capacity, FCFS admission (the PR 1-equivalent default).
    pub fn unbounded() -> Self {
        SchedulerConfig::default()
    }

    /// Contend for `bytes` of shared KV capacity (builder style).  A zero
    /// capacity (easily produced by scaling a footprint down to nothing) is
    /// clamped to one byte — the most starved budget expressible — instead
    /// of panicking deep inside the ledger.
    pub fn with_kv_capacity_bytes(mut self, bytes: u64) -> Self {
        self.kv_capacity_bytes = Some(bytes.max(1));
        self
    }

    /// Sets the admission policy (builder style).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Enables the tiered KV memory hierarchy (builder style).  Usually
    /// combined with an unbounded `kv_capacity_bytes`: capacity pressure is
    /// then expressed through the eDRAM tier budget and demotion, not
    /// through admission-queue starvation.
    pub fn with_tiering(mut self, tiering: TierConfig) -> Self {
        self.tiering = Some(tiering);
        self
    }

    /// Sets the decode parallelism axis (builder style).
    /// [`ParallelAxis::Auto`] — the default — switches between session
    /// fan-out and intra-session per-head fan-out based on how wide the
    /// batch is each tick; both axes are bit-identical, so this knob only
    /// moves wall-clock time.
    pub fn with_parallel_axis(mut self, axis: ParallelAxis) -> Self {
        self.parallel_axis = axis;
        self
    }

    /// Enables deterministic fault injection (builder style).  The plan is
    /// seeded from the config, so two schedulers built from equal configs
    /// inject the identical fault sequence.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Sets the serving-level objective requests are judged against in the
    /// final [`SloReport`] (builder style).  Observational only.
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = slo;
        self
    }
}

/// One token generated during a scheduler step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// Index of the request (submission order) that produced the token.
    pub request: usize,
    /// The generated token.
    pub token: usize,
    /// Whether this token completed the request.
    pub finished: bool,
}

/// One streaming event of the event-aware driving loop
/// ([`BatchScheduler::try_run_to_completion_events_with`]) and the
/// `kelle::front` token streams: a generated token, or a request leaving the
/// batch early.
///
/// The classic `on_token` callbacks only ever see tokens — a shed request
/// simply went quiet until the final [`BatchOutcome`] reported why.  This
/// event stream closes that gap: deadline/timeout sheds, cancellations,
/// drains and worker losses surface *as they happen*, after the tick's
/// tokens, in request-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEvent {
    /// A generated token (identical to the [`StepEvent`] stream).
    Token {
        /// Index of the request (submission order) that produced the token.
        request: usize,
        /// The generated token.
        token: usize,
        /// Whether this token completed the request.
        finished: bool,
    },
    /// A request was finalized early; its outcome carries whatever tokens it
    /// had generated and this reason.
    Shed {
        /// Index of the shed request.
        request: usize,
        /// Why it was shed.
        reason: ShedReason,
    },
}

/// Queueing and capacity accounting for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTiming {
    /// Scheduler tick at which the request was submitted.
    pub submitted_tick: u64,
    /// Tick at which admission promoted it into a decode slot.
    pub admitted_tick: u64,
    /// Tick at which its last token was generated.
    pub finished_tick: u64,
    /// Tick at which its first decode token committed (`None` for requests
    /// shed before producing any output).  `first_token_tick -
    /// submitted_tick` is the request's time-to-first-token.
    #[serde(default)]
    pub first_token_tick: Option<u64>,
    /// Ticks spent in the waiting queue (`admitted - submitted`).
    pub queue_ticks: u64,
    /// Final full-scale KV footprint of the request's *private* lease in
    /// bytes (prompt suffix + decode growth).  Bytes of a matched shared
    /// prefix are charged once batch-wide through the ledger's shared pool
    /// and reported in [`PrefixBatchMetrics`], not here.
    pub kv_bytes: u64,
    /// Peak total live bytes observed on the ledger while this request was
    /// active — the contention it actually experienced.
    pub peak_concurrent_bytes: u64,
    /// On-chip KV residency granted by the arbiter (`None` when the request
    /// was never contended and got the whole memory).
    pub granted_bytes: Option<u64>,
    /// KV bytes that lost on-chip residency to contention (relative to the
    /// single-tenant residency), served from DRAM instead.
    pub spill_bytes: u64,
}

/// Batch-level prefix-sharing metrics (see [`crate::prefix`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefixBatchMetrics {
    /// Requests whose first prompt matched a published prefix.
    pub hit_requests: u64,
    /// Prompt tokens served from shared segments instead of being
    /// recomputed.
    pub hit_tokens: u64,
    /// Full-scale KV bytes this batch charged to the shared pool — one
    /// charge per prefix *residency period*.  While any session holds a
    /// prefix it is charged once regardless of how many attach; a prefix
    /// whose last session detaches and that is later re-attached opens a
    /// new residency period and charges (and counts here) again.
    pub shared_bytes: u64,
    /// Full-scale KV bytes deduplication kept off the ledger: every
    /// attachment that joined an already-charged prefix would have
    /// re-charged it in a sharing-oblivious stack.
    pub deduplicated_bytes: u64,
}

/// Batch-level contention metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ContentionMetrics {
    /// The arbitrated capacity (`None` = unbounded).
    pub capacity_bytes: Option<u64>,
    /// Ledger high-water mark: peak live KV bytes across the whole batch.
    pub peak_residency_bytes: u64,
    /// Total KV bytes charged at DRAM cost because contention shrank their
    /// requests' on-chip shares.
    pub spill_bytes: u64,
    /// Sum of queue ticks across requests.
    pub total_queue_ticks: u64,
    /// Longest time any request spent queueing.
    pub max_queue_ticks: u64,
    /// Per-request timings, in submission order.
    pub per_request: Vec<RequestTiming>,
}

impl ContentionMetrics {
    /// Mean ticks a request spent in the waiting queue.
    pub fn mean_queue_ticks(&self) -> f64 {
        if self.per_request.is_empty() {
            0.0
        } else {
            self.total_queue_ticks as f64 / self.per_request.len() as f64
        }
    }
}

/// A serving-level objective: the latency bounds a request must meet to
/// count toward goodput.
///
/// Latencies are measured in scheduler *ticks* — the deterministic time base
/// of the batch pipeline (one tick = one decode round) — so the same trace
/// produces the identical [`SloReport`] on any host and worker count.  The
/// default spec accepts every completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Maximum acceptable time-to-first-token, in ticks from submission
    /// (queueing included).
    pub ttft_ticks: u64,
    /// Maximum acceptable mean time-per-output-token over the request's
    /// decode phase, in ticks (requests with fewer than two tokens have no
    /// measurable TPOT and pass this bound).
    pub tpot_ticks: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            ttft_ticks: u64::MAX,
            tpot_ticks: f64::MAX,
        }
    }
}

impl SloSpec {
    /// A spec bounding both time-to-first-token and time-per-output-token.
    pub fn new(ttft_ticks: u64, tpot_ticks: f64) -> Self {
        SloSpec {
            ttft_ticks,
            tpot_ticks,
        }
    }

    /// Whether a completed request with this TTFT/TPOT meets the objective.
    /// `tpot` is `None` when the request produced fewer than two tokens.
    pub fn met_by(&self, ttft_ticks: u64, tpot: Option<f64>) -> bool {
        ttft_ticks <= self.ttft_ticks && tpot.is_none_or(|t| t <= self.tpot_ticks)
    }
}

/// Order statistics of one latency distribution, in ticks.
///
/// Percentiles are nearest-rank over the sorted samples (`p50` of one sample
/// is that sample), so equal sample sets summarize identically on every
/// host.  An empty distribution summarizes to all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples summarized.
    pub samples: u64,
}

impl LatencySummary {
    /// Summarizes a sample set (order irrelevant; the samples are sorted).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(f64::total_cmp);
        let rank = |q: f64| {
            let k = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[k - 1]
        };
        LatencySummary {
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            max: samples[samples.len() - 1],
            samples: samples.len() as u64,
        }
    }
}

/// Per-batch serving-quality report: TTFT/TPOT/queue-time distributions and
/// goodput under the configured [`SloSpec`].
///
/// Collected on every [`BatchOutcome`] (the spec defaults to
/// accept-everything, so the report costs nothing to always produce).  All
/// latencies are deterministic scheduler ticks: the same submitted trace
/// yields the bit-identical report at any worker count — the CI determinism
/// gate asserts exactly this.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SloReport {
    /// The objective requests were judged against.
    pub spec: SloSpec,
    /// Requests submitted.
    pub requests: u64,
    /// Requests that ran to natural completion.
    pub completed: u64,
    /// Requests shed (deadline, queue timeout, cancel, drain, worker loss).
    pub shed: u64,
    /// Time-to-first-token distribution over requests that produced output,
    /// in ticks from submission.
    pub ttft: LatencySummary,
    /// Mean time-per-output-token distribution over completed requests with
    /// at least two tokens, in ticks.
    pub tpot: LatencySummary,
    /// Queue-wait distribution over all requests, in ticks.
    pub queue: LatencySummary,
    /// Completed requests that met the objective.
    pub goodput_requests: u64,
    /// Tokens generated by those requests.
    pub goodput_tokens: u64,
    /// Tokens generated by the whole batch (shed partials included).
    pub total_tokens: u64,
    /// Ticks the batch ran for.
    pub ticks: u64,
}

impl SloReport {
    /// Fraction of submitted requests that completed *and* met the
    /// objective — the headline goodput number.
    pub fn goodput_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.goodput_requests as f64 / self.requests as f64
        }
    }

    /// SLO-meeting tokens per kilo-tick: goodput as a throughput, scale-free
    /// across trace lengths.
    pub fn goodput_tokens_per_kilotick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.goodput_tokens as f64 * 1000.0 / self.ticks as f64
        }
    }
}

/// Everything produced by a batch of requests.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request outcomes, in submission order.
    pub outcomes: Vec<ServeOutcome>,
    /// Aggregate statistics of the batch: the component-wise sum of the
    /// per-request outcomes, equal to what serving the batch sequentially
    /// would have added to [`KelleEngine::stats`].
    pub stats: EngineStats,
    /// Queueing and shared-capacity accounting.
    pub contention: ContentionMetrics,
    /// Prefix-sharing accounting (all zeros when sharing is disabled).
    pub prefix: PrefixBatchMetrics,
    /// Tiered-memory accounting (all zeros when tiering is disabled).
    /// Migration time and energy live only here — per-request hardware
    /// reports and [`BatchOutcome::stats`] are identical to an
    /// unlimited-eDRAM run.
    pub tiering: TieringMetrics,
    /// Fault-injection and recovery accounting (all zeros when chaos is
    /// disabled and nothing was shed, cancelled or drained).
    pub chaos: ChaosMetrics,
    /// Cross-thread traffic accounting of the executor protocol (all zeros
    /// for inline serving).  Like [`BatchOutcome::tiering`], these are
    /// *cost* metrics: every execution mode produces bit-identical streams,
    /// and this is where the sticky-shard executor's saved queue traffic
    /// becomes a measured number.
    pub parallel: ParallelMetrics,
    /// Serving-quality report: TTFT/TPOT/queue-time distributions and
    /// goodput under the configured [`SloSpec`].
    pub slo: SloReport,
}

impl BatchOutcome {
    /// The batch's metric blocks as one serializable [`BatchReport`] —
    /// everything except the per-request outcomes, which carry borrowed
    /// engine state and stay on the outcome itself.
    pub fn report(&self) -> BatchReport {
        BatchReport {
            contention: self.contention.clone(),
            prefix: self.prefix,
            tiering: self.tiering,
            parallel: self.parallel,
            chaos: self.chaos,
            slo: self.slo.clone(),
        }
    }
}

/// Every metric block of a [`BatchOutcome`] under one serializable roof:
/// contention, prefix sharing, tiering, executor traffic, chaos recovery and
/// the SLO report.
///
/// This is the interchange format between the scheduler and the reporting
/// layers (`kelle-bench` JSON artifacts, `tables`): benches serialize a
/// `BatchReport` instead of hand-extracting individual blocks.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchReport {
    /// Queueing and shared-capacity accounting.
    pub contention: ContentionMetrics,
    /// Prefix-sharing accounting.
    pub prefix: PrefixBatchMetrics,
    /// Tiered-memory accounting.
    pub tiering: TieringMetrics,
    /// Executor-protocol traffic accounting.
    pub parallel: ParallelMetrics,
    /// Fault-injection and recovery accounting.
    pub chaos: ChaosMetrics,
    /// Serving-quality report.
    pub slo: SloReport,
}

/// Error returned by [`BatchScheduler::finish`] when requests are still
/// waiting or decoding.  The scheduler is handed back inside the error —
/// nothing in flight is lost — so the caller can
/// [`resume`](BatchIncomplete::resume) it and keep stepping.
#[derive(Debug)]
pub struct BatchIncomplete<'e> {
    /// Requests still decoding.
    pub active: usize,
    /// Requests still in the waiting queue.
    pub waiting: usize,
    scheduler: Box<BatchScheduler<'e>>,
}

impl<'e> BatchIncomplete<'e> {
    /// Recovers the scheduler, with every queued and in-flight request
    /// intact, so it can be driven to completion.
    pub fn resume(self) -> BatchScheduler<'e> {
        *self.scheduler
    }
}

impl std::fmt::Display for BatchIncomplete<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch is not finished: {} request(s) still decoding, {} waiting",
            self.active, self.waiting
        )
    }
}

impl std::error::Error for BatchIncomplete<'_> {}

struct Slot<'e> {
    request: ServeRequest,
    /// `Some` between public calls — unless the slot is `parked`, in which
    /// case the session lives on its sticky executor shard; taken while the
    /// session is out on a worker executing this tick's decode step.
    session: Option<Session<'e>>,
    prefilled: usize,
    generated: Vec<usize>,
    trace: DecodeTrace,
    remaining: usize,
    lease: LeaseId,
    peak_concurrent_bytes: u64,
    /// Shared-pool attachment for the request's prefix hit, if any:
    /// `(tag, full-scale bytes)`.
    shared: Option<(u64, u64)>,
    /// Coordinator mirror of the session's token position, updated at every
    /// commit — the scheduler can observe a parked session's cursor without
    /// recalling it.
    position: usize,
    /// Backpressure: a paused slot is skipped by decode fan-out (its session
    /// stays exactly where it is) until resumed.  Pausing can never change a
    /// stream — a session is a pure function of its own state — only *when*
    /// its tokens are produced.
    paused: bool,
    /// Sticky execution: the session is parked on its executor shard and
    /// `session` is `None` until it is recalled.
    parked: bool,
    /// Worker that ran the last committed step (`None`: coordinator) —
    /// feeds [`ParallelMetrics::sessions_migrated`].
    last_worker: Option<usize>,
}

/// An admitted request whose prefill is executing (possibly on a worker):
/// the ledger state was committed at admission time, the session comes back
/// through the executor.
struct Admitted {
    request: ServeRequest,
    lease: LeaseId,
    shared: Option<(u64, u64)>,
    /// Ledger live bytes right after this admission's reservations — the
    /// value sequential serving records as the slot's initial
    /// `peak_concurrent_bytes` (captured here because later admissions in
    /// the same pump land on the ledger before the prefill returns).
    live_at_admission: u64,
}

/// Admission sizing of a waiting request: the bytes charged privately plus
/// the shared-pool attachment (charged once across the batch).
#[derive(Debug, Clone, Copy)]
struct AdmissionFootprint {
    private_bytes: u64,
    /// `(tag, bytes)` of the prefix the request will attach to.
    shared: Option<(u64, u64)>,
}

/// One decode step awaiting the coordinator commit, unified across the two
/// fan-out shapes: a classic [`TaskOutput`] (whole session moved back) and a
/// sticky [`StickyStep`](crate::parallel::StickyStep) (session stayed on its
/// shard).  The commit loop runs over these in request-index order, so both
/// shapes commit bit-identically.
struct PendingCommit {
    index: usize,
    step: DecodeStep,
    /// Session position before the step (for the lease-growth delta).
    tokens_before: usize,
    /// Session position after the step (the slot's new mirror).
    position: usize,
    /// Worker that ran the step (`None`: coordinator).
    worker: Option<usize>,
}

enum RequestState<'e> {
    Waiting(ServeRequest),
    /// Admission committed, prefill in flight through the executor; never
    /// observable between public calls (admission pumps always flush).
    Admitted(Box<Admitted>),
    Active(Box<Slot<'e>>),
    Finished(ServeOutcome),
    /// Transient placeholder while ownership moves through
    /// activation/completion; never observable between public calls.
    Taken,
}

/// Interleaves decode steps across many in-flight serving sessions under
/// shared-capacity admission control (see the [module docs](self)).
pub struct BatchScheduler<'e> {
    engine: &'e KelleEngine,
    config: SchedulerConfig,
    ledger: CapacityLedger,
    tier: Option<TierManager>,
    states: Vec<RequestState<'e>>,
    timings: Vec<RequestTiming>,
    waiting: VecDeque<usize>,
    /// Requests submitted with a future [`ServeRequest::arrival_tick`],
    /// keyed `(arrival, index)`: they join the waiting queue — and become
    /// visible to admission — only once the tick clock reaches their
    /// arrival.  This is how a trace's open-loop arrival process drives the
    /// scheduler deterministically.
    scheduled: BinaryHeap<Reverse<(u64, usize)>>,
    stats: EngineStats,
    tick: u64,
    spill_bytes: u64,
    prefix: PrefixBatchMetrics,
    /// Seeded fault-injection plan; `None` when chaos is disabled.
    chaos: Option<ChaosPlan>,
    chaos_metrics: ChaosMetrics,
    /// Last committed-boundary checkpoint per active request.  Populated
    /// only while chaos is enabled, so the chaos-off decode path stays
    /// allocation-free.
    checkpoints: BTreeMap<usize, Checkpoint<'e>>,
    /// Set by [`drain`](BatchScheduler::drain): admission stops pumping and
    /// the machine winds down to idle.
    draining: bool,
    /// Executor-protocol traffic counters (see [`ParallelMetrics`]).
    parallel: ParallelMetrics,
    /// Sheds since the last [`take_shed_events`](BatchScheduler::take_shed_events),
    /// in the order they happened — the streaming-path view of
    /// [`ShedReason`], bounded by the number of submitted requests (a
    /// request sheds at most once).
    shed_events: Vec<(usize, ShedReason)>,
}

impl<'e> BatchScheduler<'e> {
    /// A scheduler with unbounded capacity and FCFS admission: every
    /// submitted request is promoted immediately, exactly reproducing the
    /// pre-arbitration scheduler.
    pub fn new(engine: &'e KelleEngine) -> Self {
        BatchScheduler::with_config(engine, SchedulerConfig::default())
    }

    /// A scheduler arbitrating the configured shared capacity.  A
    /// hand-assembled zero capacity is clamped to one byte, like in
    /// [`SchedulerConfig::with_kv_capacity_bytes`].
    pub fn with_config(engine: &'e KelleEngine, config: SchedulerConfig) -> Self {
        // An unbounded scheduler still runs the ledger (at u64::MAX capacity)
        // so high-water accounting works identically in both modes.  Under
        // tiering the ledger spans the whole hierarchy — eDRAM scarcity is
        // the tier manager's job, so per-request grants and spill stay
        // identical to an unlimited run and only migration costs differ.
        let ledger = match (config.kv_capacity_bytes, &config.tiering) {
            (Some(bytes), _) => CapacityLedger::new(bytes.max(1)),
            (None, Some(tiering)) => CapacityLedger::for_tier_budgets(&tiering.budgets),
            (None, None) => CapacityLedger::new(u64::MAX),
        };
        BatchScheduler {
            engine,
            config,
            ledger,
            tier: config.tiering.map(TierManager::new),
            states: Vec::new(),
            timings: Vec::new(),
            waiting: VecDeque::new(),
            scheduled: BinaryHeap::new(),
            stats: EngineStats::default(),
            tick: 0,
            spill_bytes: 0,
            prefix: PrefixBatchMetrics::default(),
            chaos: config
                .chaos
                .filter(ChaosConfig::enabled)
                .map(ChaosPlan::new),
            chaos_metrics: ChaosMetrics::default(),
            checkpoints: BTreeMap::new(),
            draining: false,
            parallel: ParallelMetrics::default(),
            shed_events: Vec::new(),
        }
    }

    /// The admission configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The capacity ledger (live bytes, high-water mark, oversubscription).
    pub fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    /// The tier placement manager, when tiering is enabled.
    pub fn tier(&self) -> Option<&TierManager> {
        self.tier.as_ref()
    }

    /// Fault-injection and recovery counters accumulated so far.
    pub fn chaos_metrics(&self) -> &ChaosMetrics {
        &self.chaos_metrics
    }

    /// Whether [`drain`](BatchScheduler::drain) has stopped admission.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Executor-protocol traffic counters accumulated so far (`ticks` is
    /// only stamped on the final [`BatchOutcome`]).
    pub fn parallel_metrics(&self) -> &ParallelMetrics {
        &self.parallel
    }

    /// Drains the sheds recorded since the last call, in the order they
    /// happened — the streaming-path complement of the final outcome's
    /// [`ShedReason`]s.
    /// [`try_run_to_completion_events_with`](BatchScheduler::try_run_to_completion_events_with)
    /// and the `kelle::front` streams are built on this.
    pub fn take_shed_events(&mut self) -> Vec<(usize, ShedReason)> {
        std::mem::take(&mut self.shed_events)
    }

    /// Pauses or resumes decode for an active request (stream backpressure:
    /// the `kelle::front` pauses a session whose consumer stopped polling).
    /// A paused slot is skipped by decode fan-out — its session stays
    /// wherever it is, parked or resident — and consumes no queue traffic
    /// until resumed.  Returns `false` when the request is not active.
    /// Pausing never changes a token stream, only when it is produced.
    pub(crate) fn set_paused(&mut self, index: usize, paused: bool) -> bool {
        match self.states.get_mut(index) {
            Some(RequestState::Active(slot)) => {
                slot.paused = paused;
                true
            }
            _ => false,
        }
    }

    /// Full-scale KV footprint of `tokens` retained tokens — the unit of
    /// account of the capacity ledger, identical to what the hardware step
    /// simulation charges per token (capped at the hardware budget `N'`).
    pub fn kv_footprint_bytes(&self, tokens: usize) -> u64 {
        self.engine.kv_footprint_bytes(tokens)
    }

    /// Enqueues a request into the waiting queue and immediately pumps
    /// admission (so with room available — always, when unbounded — the
    /// request is pre-filled right away).  Returns the request's index, which
    /// later [`StepEvent`]s, timings and the final outcome vector refer to.
    pub fn submit(&mut self, request: ServeRequest) -> usize {
        self.submit_with(request, &mut InlineExecutor)
    }

    /// [`submit`](BatchScheduler::submit) running admission prefills through
    /// `executor` (e.g. a [`WorkerPool`](crate::parallel::WorkerPool)) — the
    /// threaded front-end's submission path.  Admission decisions, ledger
    /// reservations and prefix-store planning stay on the calling thread in
    /// admission order; only the prefill compute fans out, so the resulting
    /// state is bit-identical to [`submit`](BatchScheduler::submit).
    ///
    /// A request whose [`arrival_tick`](ServeRequest::arrival_tick) lies in
    /// the future is *scheduled* instead of queued: it stays invisible to
    /// admission until the tick clock reaches its arrival, at which point it
    /// joins the waiting queue exactly as if it had been submitted then
    /// (`submitted_tick` is its arrival, so queue-time and TTFT metrics
    /// measure from arrival).  This is how a whole workload trace is loaded
    /// up front and replayed deterministically.
    pub fn submit_with(
        &mut self,
        request: ServeRequest,
        executor: &mut dyn StepExecutor<'e>,
    ) -> usize {
        let index = self.states.len();
        let arrival = request.arrival_tick();
        let future = arrival > self.tick;
        self.states.push(RequestState::Waiting(request));
        self.timings.push(RequestTiming {
            submitted_tick: if future { arrival } else { self.tick },
            admitted_tick: 0,
            finished_tick: 0,
            first_token_tick: None,
            queue_ticks: 0,
            kv_bytes: 0,
            peak_concurrent_bytes: 0,
            granted_bytes: None,
            spill_bytes: 0,
        });
        if future {
            self.scheduled.push(Reverse((arrival, index)));
        } else {
            self.waiting.push_back(index);
            self.pump_admission(executor);
        }
        index
    }

    /// Alias of [`submit`](BatchScheduler::submit), kept for source
    /// compatibility with the pre-admission-pipeline scheduler.
    pub fn admit(&mut self, request: ServeRequest) -> usize {
        self.submit(request)
    }

    /// Number of requests currently decoding.
    pub fn active(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, RequestState::Active(_)))
            .count()
    }

    /// Number of requests still in the waiting queue.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Whether every submitted request has finished.  A request scheduled
    /// for a future arrival tick keeps the machine busy: stepping advances
    /// the clock through the idle gap until it arrives.
    pub fn is_idle(&self) -> bool {
        self.active() == 0 && self.waiting.is_empty() && self.scheduled.is_empty()
    }

    /// Number of requests scheduled for a future arrival tick.
    pub fn scheduled(&self) -> usize {
        self.scheduled.len()
    }

    /// Moves every scheduled request whose arrival tick has been reached
    /// into the waiting queue, in `(arrival, index)` order — the start-of-
    /// tick half of arrival-driven admission.  The end-of-tick admission
    /// pump promotes them, so a request arriving at tick `T` is admitted at
    /// `T` and decodes from `T + 1`, exactly like an eager submission at
    /// `T`.
    fn release_arrivals(&mut self) {
        while let Some(&Reverse((arrival, index))) = self.scheduled.peek() {
            if arrival > self.tick {
                break;
            }
            self.scheduled.pop();
            // Cancellation may have finalized the request while it was
            // still scheduled; only genuinely waiting ones join the queue.
            if matches!(self.states[index], RequestState::Waiting(_)) {
                self.waiting.push_back(index);
            }
        }
    }

    /// Prefill KV footprint of a waiting request, split into the bytes the
    /// request will hold privately and the shared-prefix attachment it will
    /// make.  A prefix hit's matched tokens are charged through the ledger's
    /// shared pool — once per published prefix, however many requests attach
    /// — so admission sees the *true* device footprint.  (The full-scale
    /// footprint caps at the hardware budget `N'`; for prompts beyond it the
    /// shared/private split is proportional on capped bytes, a documented
    /// approximation.)
    fn prefill_footprint(&self, index: usize) -> AdmissionFootprint {
        let request = match &self.states[index] {
            RequestState::Waiting(request) => request,
            _ => unreachable!("only waiting requests are sized for admission"),
        };
        let total = self.kv_footprint_bytes(request.prompt().len());
        let key = self.engine.prefix_key_for(request);
        match self.engine.prefix_probe(request.prompt(), &key) {
            Some((tag, matched)) if matched > 0 => {
                let shared_bytes = self.kv_footprint_bytes(matched).min(total);
                AdmissionFootprint {
                    private_bytes: total - shared_bytes,
                    shared: Some((tag, shared_bytes)),
                }
            }
            _ => AdmissionFootprint {
                private_bytes: total,
                shared: None,
            },
        }
    }

    /// Bytes a waiting request would newly charge against capacity right
    /// now: its private footprint, plus the shared prefix *only if no other
    /// session charged it yet*.
    fn admission_charge(&self, footprint: &AdmissionFootprint) -> u64 {
        let shared_charge = match footprint.shared {
            Some((tag, bytes)) if !self.ledger.has_shared(tag) => bytes,
            _ => 0,
        };
        footprint.private_bytes + shared_charge
    }

    /// Whether a new charge fits right now: the ledger must host it, and —
    /// under tiering — so must the eDRAM tier, since admission plans against
    /// the on-chip budget only (demoted bytes don't count against it).
    fn admission_fits(&self, charge: u64) -> bool {
        self.ledger.can_fit(charge)
            && self
                .tier
                .as_ref()
                .is_none_or(|tier| tier.edram_fits(charge))
    }

    /// Promotes waiting requests into decode slots while the ledger can host
    /// their prefill footprint, in the order the admission policy dictates.
    /// When nothing is active and nothing fits, the next candidate is
    /// force-admitted so a request larger than the whole capacity still makes
    /// progress instead of deadlocking the queue.
    ///
    /// Admission is a two-phase pipeline so prefill compute can fan out to
    /// an executor's workers without changing any observable state:
    ///
    /// 1. **Commit (coordinator, admission order)** — candidate selection,
    ///    ledger reservation, shared-pool attachment and the session's
    ///    prefix-store *plan* ([`Session::plan_prefill`]) all happen here,
    ///    in exactly the sequence single-threaded serving performs them.
    /// 2. **Execute (any worker)** — the planned prefills run concurrently;
    ///    `Cold`/`Hit` plans never touch shared state.  A `Publish` plan
    ///    writes the store when it completes, so the pump flushes (barriers
    ///    on) it immediately: the next candidate's plan — which in
    ///    sequential serving runs after the publication — still observes it.
    ///
    /// Every admission pumped in one call is flushed before it returns, so
    /// the `Admitted` state is never observable between public calls.
    fn pump_admission(&mut self, executor: &mut dyn StepExecutor<'e>) {
        if self.draining {
            // A draining scheduler stops admitting; whatever is active
            // finishes, everything else stays queued (or was already shed by
            // the drain entry point).
            return;
        }
        let engine = self.engine;
        let mut pending: Vec<SessionTask<'e>> = Vec::new();
        loop {
            let candidate = match self.config.admission {
                AdmissionPolicy::Fcfs => self.waiting.front().map(|&index| (0, index)),
                AdmissionPolicy::ShortestPromptFirst => self
                    .waiting
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &index)| match &self.states[index] {
                        RequestState::Waiting(request) => (request.prompt().len(), index),
                        _ => unreachable!("waiting queue holds only waiting requests"),
                    })
                    .map(|(pos, &index)| (pos, index)),
                AdmissionPolicy::CapacityFit => self
                    .waiting
                    .iter()
                    .enumerate()
                    .find(|&(_, &index)| {
                        let footprint = self.prefill_footprint(index);
                        self.admission_fits(self.admission_charge(&footprint))
                    })
                    .or(self.waiting.front().map(|front| (0, front)))
                    .map(|(pos, &index)| (pos, index)),
            };
            let Some((queue_pos, index)) = candidate else {
                break;
            };
            let footprint = self.prefill_footprint(index);
            let charge = self.admission_charge(&footprint);
            let fits = self.admission_fits(charge);
            if fits
                && (self.active() > 0 || !pending.is_empty())
                && self.chaos.as_mut().is_some_and(ChaosPlan::ledger_blip)
            {
                // Transient reservation failure: the candidate stays queued
                // and retries on a later pump.  Blips never fire on an empty
                // machine (mirroring force-admission's forward-progress
                // guarantee), so a blipped request is only ever delayed —
                // its stream, faults and hardware report stay bit-identical.
                self.chaos_metrics.ledger_blips += 1;
                break;
            }
            let lease = if fits {
                self.ledger
                    .reserve(footprint.private_bytes)
                    .expect("admission_fits covered the private bytes")
            } else if self.active() == 0 && pending.is_empty() {
                // Forward-progress guarantee: an empty machine admits the
                // candidate even if it oversubscribes on its own.  Under
                // tiering an oversized session lands in eDRAM anyway; the
                // rebalance demotes it and promote-before-tick swaps it
                // back up each step, modelling the migration cost of
                // running beyond the on-chip memory.
                self.ledger.force_reserve(footprint.private_bytes)
            } else {
                break;
            };
            if let Some(tier) = self.tier.as_mut() {
                tier.place_session(index, footprint.private_bytes, self.tick);
            }
            if let Some((tag, bytes)) = footprint.shared {
                let charged = self.ledger.attach_shared(tag, bytes);
                if charged {
                    self.prefix.shared_bytes += bytes;
                } else {
                    self.prefix.deduplicated_bytes += bytes;
                }
                if let Some(tier) = self.tier.as_mut() {
                    if charged {
                        // A new shared-pool residency period: the segment
                        // materialises in eDRAM alongside its first session.
                        tier.place_segment(tag, bytes, self.tick);
                    } else {
                        // Dedup attach: the segment is replayed into the new
                        // session, promoting it back on chip if a rebalance
                        // had demoted it.
                        tier.touch_segment(
                            tag,
                            &engine.platform().memory,
                            self.tick,
                            self.chaos.as_mut().map(|p| p as &mut dyn MigrationFaults),
                        );
                    }
                }
            }
            self.waiting.remove(queue_pos);
            let publishes = self.commit_admission(index, lease, footprint.shared, &mut pending);
            if publishes {
                // The prefill will publish a prefix boundary; later
                // candidates' plans must observe the publication, exactly as
                // they would after a sequential activation.  Flush before
                // planning anything else.
                self.flush_admissions(executor, &mut pending);
            }
        }
        self.flush_admissions(executor, &mut pending);
    }

    /// Commits the admission of a waiting request: opens the session, plans
    /// its first prefill against the prefix store (coordinator-side, in
    /// admission order) and queues the compute as an executor task.  Returns
    /// whether the planned prefill will publish a prefix boundary.
    fn commit_admission(
        &mut self,
        index: usize,
        lease: LeaseId,
        shared: Option<(u64, u64)>,
        pending: &mut Vec<SessionTask<'e>>,
    ) -> bool {
        let request = match std::mem::replace(&mut self.states[index], RequestState::Taken) {
            RequestState::Waiting(request) => request,
            _ => unreachable!("only waiting requests are admitted"),
        };
        let mut session = self.engine.open_session_for(&request);
        let plan = session.plan_prefill(request.prompt());
        let publishes = plan.publishes();
        self.timings[index].admitted_tick = self.tick;
        self.timings[index].queue_ticks = self.tick - self.timings[index].submitted_tick;
        pending.push(SessionTask::prefill(
            index,
            session,
            request.prompt().to_vec(),
            plan,
        ));
        self.states[index] = RequestState::Admitted(Box::new(Admitted {
            request,
            lease,
            shared,
            live_at_admission: self.ledger.live_bytes(),
        }));
        publishes
    }

    /// Executes all pending admission prefills and activates their slots in
    /// submission order.
    fn flush_admissions(
        &mut self,
        executor: &mut dyn StepExecutor<'e>,
        pending: &mut Vec<SessionTask<'e>>,
    ) {
        if pending.is_empty() {
            return;
        }
        let mut outputs = executor.execute(std::mem::take(pending));
        outputs.sort_by_key(TaskOutput::index);
        for output in outputs {
            self.activate(output);
        }
    }

    /// Installs an admitted request's pre-filled session into its decode
    /// slot.
    fn activate(&mut self, output: TaskOutput<'e>) {
        let worker = output.worker();
        let (index, session, prefilled) = output.into_prefill();
        let admitted = match std::mem::replace(&mut self.states[index], RequestState::Taken) {
            RequestState::Admitted(admitted) => admitted,
            _ => unreachable!("only admitted requests are activated"),
        };
        let Admitted {
            request,
            lease,
            shared,
            live_at_admission,
        } = *admitted;
        if session.prefix_hit_tokens() > 0 {
            self.prefix.hit_requests += 1;
            self.prefix.hit_tokens += session.prefix_hit_tokens() as u64;
        }
        if worker.is_some() {
            // The session crossed to a worker for its prefill and back.
            self.parallel.queue_crossings += 2;
        }
        let remaining = request.decode_len();
        let position = session.position();
        self.states[index] = RequestState::Active(Box::new(Slot {
            request,
            session: Some(session),
            prefilled,
            generated: Vec::with_capacity(remaining),
            trace: DecodeTrace::default(),
            remaining,
            lease,
            peak_concurrent_bytes: live_at_admission,
            shared,
            position,
            paused: false,
            parked: false,
            last_worker: worker,
        }));
    }

    /// Runs one decode step for every active request, in submission order.
    /// Returns one [`StepEvent`] per request that made progress (every active
    /// request does — the fairness property the tests assert).  Completed
    /// requests release their capacity and the waiting queue is back-filled
    /// before the call returns.
    pub fn step(&mut self) -> Vec<StepEvent> {
        self.step_with(&mut InlineExecutor)
    }

    /// [`step`](BatchScheduler::step) with the per-session decode compute
    /// fanned out through `executor` — the tick protocol of the threaded
    /// front-end (see [`crate::parallel`]):
    ///
    /// 1. **Fan out** — every active session moves into a decode task;
    ///    sessions are mutually independent, so workers may execute them in
    ///    any order and produce bit-identical results.
    /// 2. **Commit (coordinator, submission order)** — returned steps are
    ///    applied in request-index order: token/trace bookkeeping, one
    ///    batched ledger commit
    ///    ([`CapacityLedger::commit_growth`]), the
    ///    per-request concurrency peaks, completions (hardware simulation,
    ///    engine statistics, lease release) and finally admission back-fill.
    ///
    /// Every observable — events, metrics, f64 accumulation order — matches
    /// [`step`](BatchScheduler::step) exactly; only wall-clock time differs.
    pub fn step_with(&mut self, executor: &mut dyn StepExecutor<'e>) -> Vec<StepEvent> {
        match self.try_step_with(executor) {
            Ok(events) => events,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible [`step`](BatchScheduler::step): one inline-executed tick,
    /// with a retry-budget exhaustion surfacing as
    /// [`ServeError::WorkerLost`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerLost`] when an injected worker panic
    /// exhausts its replay budget; the scheduler stays consistent and can
    /// keep stepping or drain.
    pub fn try_step(&mut self) -> Result<Vec<StepEvent>, ServeError> {
        self.try_step_with(&mut InlineExecutor)
    }

    /// Fallible [`step_with`](BatchScheduler::step_with): a worker loss that
    /// exhausts the chaos retry budget surfaces as
    /// [`ServeError::WorkerLost`] instead of a panic.  Even on `Err` the
    /// scheduler stays consistent — the lost request is finalized with its
    /// partial output ([`ShedReason::WorkerLost`]), every lease and tier
    /// placement is released, and stepping/draining can continue.
    ///
    /// With chaos enabled the tick additionally:
    ///
    /// * arms sessions the [`ChaosPlan`] marks for a worker panic this tick,
    /// * replays failed sessions from their last committed-boundary
    ///   [`Checkpoint`] (bounded by
    ///   [`max_retries`](ChaosConfig::max_retries)) — the replay recomputes
    ///   the identical decode step, so surviving streams stay bit-identical
    ///   to a chaos-free run,
    /// * refreshes each surviving session's checkpoint at the new committed
    ///   boundary.
    pub fn try_step_with(
        &mut self,
        executor: &mut dyn StepExecutor<'e>,
    ) -> Result<Vec<StepEvent>, ServeError> {
        self.tick += 1;
        self.release_arrivals();
        self.shed_expired(executor);
        let memory = &self.engine.platform().memory;
        // Sticky execution needs sessions to stay parked on their shards;
        // chaos needs them on the coordinator between attempts (checkpoint
        // capture and replay re-dispatch).  Chaos wins: with injection
        // active the tick falls back to the classic move protocol — a
        // sticky executor still pins every moved task to its owning shard.
        let sticky = executor.is_sticky() && self.chaos.is_none();
        // Per-tick buffers are O(active requests) and amortized into noise
        // by the decode compute they carry; ownership must cross the
        // executor boundary, so they cannot be scheduler-resident.
        let mut tasks = Vec::with_capacity(self.states.len());
        let mut step_indices = Vec::new();
        for index in 0..self.states.len() {
            if let RequestState::Active(slot) = &mut self.states[index] {
                if slot.paused {
                    // Backpressured: the session sits this tick out,
                    // wherever it lives (resident or parked) — zero queue
                    // traffic either way.
                    continue;
                }
                if let Some(tier) = self.tier.as_mut() {
                    // Promote-before-tick: a session demoted by an earlier
                    // rebalance decodes out of eDRAM, so it migrates back up
                    // (cost charged) before this step runs.
                    tier.promote_session(
                        index,
                        memory,
                        self.tick,
                        self.chaos.as_mut().map(|p| p as &mut dyn MigrationFaults),
                    );
                }
                if sticky {
                    if !slot.parked {
                        // First sticky tick since activation (or since a
                        // recall brought the session back): one crossing to
                        // its shard, where it stays.
                        let session = slot
                            .session
                            .take()
                            .expect("session is resident between steps");
                        slot.parked = true;
                        executor.park(index, session);
                        self.parallel.queue_crossings += 1;
                    }
                    step_indices.push(index);
                    continue;
                }
                if self.chaos.is_some() && !self.checkpoints.contains_key(&index) {
                    // First fan-out since activation: checkpoint the
                    // committed (post-prefill) state before the session
                    // leaves the coordinator.
                    let session = slot
                        .session
                        .as_ref()
                        .expect("session is resident between steps");
                    self.checkpoints
                        .insert(index, Checkpoint::capture(session, self.tick - 1));
                    self.chaos_metrics.checkpoints_taken += 1;
                }
                let session = slot
                    .session
                    .take()
                    .expect("session is resident between steps");
                let mut task = SessionTask::decode(index, session);
                if self
                    .chaos
                    .as_ref()
                    .is_some_and(|plan| plan.worker_panic(self.tick, index, 0))
                {
                    task.arm_sabotage();
                    self.chaos_metrics.injected_panics += 1;
                }
                tasks.push(task);
            }
        }
        // Fan out, collecting this tick's commits from whichever protocol is
        // active.  Both paths produce the same `PendingCommit` shape, so the
        // commit loop below is shared — and since commits are sorted by
        // request index before they land, the committed bits cannot depend
        // on which protocol (or worker count) produced them.
        let max_retries = self
            .chaos
            .as_ref()
            .map_or(0, |plan| plan.config().max_retries);
        let mut attempt = 0u32;
        let mut pending: Vec<PendingCommit>;
        let lost;
        if sticky {
            let outcome = executor.step_parked(&step_indices);
            lost = outcome.failures;
            pending = outcome
                .steps
                .into_iter()
                .map(|step| PendingCommit {
                    index: step.index,
                    step: step.step,
                    tokens_before: step.tokens_before,
                    position: step.position,
                    worker: Some(step.worker),
                })
                .collect();
        } else {
            let mut result = executor.try_execute_axis(tasks, self.config.parallel_axis);

            // Replay lost sessions from their checkpoints, bounded by the
            // plan's retry budget.  A replay re-forks the last committed
            // state and recomputes the very same decode step, so the
            // committed bits are those the lost execution would have
            // produced.
            while !result.failures.is_empty() && self.chaos.is_some() && attempt < max_retries {
                attempt += 1;
                // One modelled backoff tick per replay round; the functional
                // tick counter must stay chaos-invariant, so this is metrics
                // only.
                self.chaos_metrics.backoff_ticks += 1;
                let failures = std::mem::take(&mut result.failures);
                let mut retry_tasks = Vec::with_capacity(failures.len());
                for failure in failures {
                    let index = failure.index();
                    let checkpoint = self
                        .checkpoints
                        .get(&index)
                        .expect("chaos keeps a checkpoint for every active session");
                    let session = checkpoint.restore();
                    self.chaos_metrics.restored_sessions += 1;
                    self.chaos_metrics.replayed_steps += 1;
                    let mut task = SessionTask::decode(index, session);
                    if self
                        .chaos
                        .as_ref()
                        .is_some_and(|plan| plan.worker_panic(self.tick, index, attempt))
                    {
                        task.arm_sabotage();
                        self.chaos_metrics.injected_panics += 1;
                    }
                    retry_tasks.push(task);
                }
                let retry = executor.try_execute_axis(retry_tasks, self.config.parallel_axis);
                result.outputs.extend(retry.outputs);
                result.failures = retry.failures;
            }
            lost = std::mem::take(&mut result.failures);
            pending = Vec::with_capacity(result.outputs.len());
            for output in result.outputs {
                let worker = output.worker();
                let (index, session, step, tokens_before) = output.into_decode();
                let position = session.position();
                let RequestState::Active(slot) = &mut self.states[index] else {
                    unreachable!("decode outputs come from active slots");
                };
                slot.session = Some(session);
                slot.parked = false;
                if worker.is_some() {
                    // The whole session crossed to a worker and back.
                    self.parallel.queue_crossings += 2;
                }
                pending.push(PendingCommit {
                    index,
                    step,
                    tokens_before,
                    position,
                    worker,
                });
            }
        }
        // Commit in request index (= submission) order: the ledger, trace,
        // and tier observations land identically for every executor.
        pending.sort_by_key(|commit| commit.index);

        let mut events = Vec::with_capacity(pending.len());
        let mut completed = Vec::new();
        let mut growths = Vec::with_capacity(pending.len());
        for commit in pending {
            let PendingCommit {
                index,
                step,
                tokens_before,
                position,
                worker,
            } = commit;
            // Grow the lease by the decoded token's full-scale KV bytes
            // (zero once the hardware budget N' saturates).
            let growth = self
                .engine
                .kv_footprint_bytes(position)
                .saturating_sub(self.engine.kv_footprint_bytes(tokens_before));
            let RequestState::Active(slot) = &mut self.states[index] else {
                unreachable!("decode steps come from active slots");
            };
            slot.position = position;
            slot.generated.push(step.token);
            if slot.generated.len() == 1 {
                self.timings[index].first_token_tick = Some(self.tick);
            }
            slot.trace.steps.push(step.record);
            slot.remaining -= 1;
            growths.push((slot.lease, growth));
            if let (Some(previous), Some(current)) = (slot.last_worker, worker) {
                if previous != current {
                    self.parallel.sessions_migrated += 1;
                }
            }
            slot.last_worker = worker;
            if let Some(tier) = self.tier.as_mut() {
                // Decode growth lands on the session's tier (eDRAM during a
                // tick, thanks to promote-before-tick) and counts as a
                // touch.
                tier.note_growth(index, growth, self.tick);
            }
            let finished = slot.remaining == 0;
            if self.chaos.is_some() && !finished {
                // Refresh the checkpoint at the new committed boundary so a
                // panic on a later tick replays one step, not the whole
                // request.  Chaos forces the classic protocol, so the
                // session is coordinator-resident here.
                let session = slot
                    .session
                    .as_ref()
                    .expect("session was just committed back");
                self.checkpoints
                    .insert(index, Checkpoint::capture(session, self.tick));
                self.chaos_metrics.checkpoints_taken += 1;
            }
            events.push(StepEvent {
                request: index,
                token: step.token,
                finished,
            });
            if finished {
                completed.push(index);
            }
        }
        // The whole tick's growth lands on the ledger as one commit
        // (equivalent to per-slot grows — growth is monotone within a tick).
        self.ledger.commit_growth(&growths);
        // All of this step's growth is on the ledger: record the concurrency
        // every active request experienced this tick.
        let live = self.ledger.live_bytes();
        for state in &mut self.states {
            if let RequestState::Active(slot) = state {
                slot.peak_concurrent_bytes = slot.peak_concurrent_bytes.max(live);
            }
        }
        for index in completed {
            self.complete(index, executor);
        }
        // Requests whose retry budget is exhausted: restore the last
        // committed state (so the shed finalizes a real partial turn), then
        // shed them.  The first loss is reported to the caller; the
        // scheduler itself stays consistent either way.
        let worker_lost = lost.first().map(|failure| ServeError::WorkerLost {
            request: failure.index(),
            attempts: attempt + 1,
            message: failure.message().to_string(),
        });
        for failure in lost {
            let index = failure.index();
            if let Some(checkpoint) = self.checkpoints.get(&index) {
                let session = checkpoint.restore();
                self.chaos_metrics.restored_sessions += 1;
                if let RequestState::Active(slot) = &mut self.states[index] {
                    slot.session = Some(session);
                }
            }
            self.chaos_metrics.lost_requests += 1;
            self.shed_active(index, ShedReason::WorkerLost, executor);
        }
        if let Some(tier) = self.tier.as_mut() {
            // End-of-tick rebalance, after completions freed their bytes:
            // idle and over-budget KV demotes toward DRAM/NVMe so the
            // admission pump below sees the settled eDRAM occupancy.
            tier.rebalance(
                self.tick,
                memory,
                self.chaos.as_mut().map(|p| p as &mut dyn MigrationFaults),
            );
        }
        // Freed capacity back-fills the waiting queue; the newly admitted
        // requests are pre-filled now and decode from the next tick.
        self.pump_admission(executor);
        match worker_lost {
            Some(error) => Err(error),
            None => Ok(events),
        }
    }

    /// Brings a parked session back to the coordinator (one queue crossing)
    /// so it can be finalized.  A no-op for resident sessions; if the shard
    /// lost the session (a decode panic dropped it), the slot simply stays
    /// session-less and finalization degrades to a synthetic outcome.
    fn ensure_resident(&mut self, index: usize, executor: &mut dyn StepExecutor<'e>) {
        let parked = matches!(&self.states[index], RequestState::Active(slot) if slot.parked);
        if !parked {
            return;
        }
        let session = executor.recall(index);
        if let RequestState::Active(slot) = &mut self.states[index] {
            slot.parked = false;
            if let Some(session) = session {
                slot.session = Some(session);
                self.parallel.queue_crossings += 1;
            }
        }
    }

    /// Finalises a request: derives its capacity grant from the contention it
    /// experienced, simulates its hardware cost, and releases its lease.
    fn complete(&mut self, index: usize, executor: &mut dyn StepExecutor<'e>) {
        self.ensure_resident(index, executor);
        let state = std::mem::replace(&mut self.states[index], RequestState::Taken);
        let RequestState::Active(mut slot) = state else {
            unreachable!("only active requests complete");
        };
        let kv_bytes = self.ledger.lease_bytes(slot.lease);
        let peak = slot.peak_concurrent_bytes;
        let capacity = self.ledger.capacity_bytes();
        // Uncontended (peak within the arbitrated capacity), the request is
        // costed like a single tenant: the whole KV memory (`None`).  Under
        // contention it gets its proportional slice `my_bytes / peak` of the
        // on-chip KV memory (further bounded by the arbitrated capacity, so
        // a budget below the physical memory models a smaller device), and
        // the bytes that thereby lose on-chip residency are the spill the
        // outcome reports — they are charged at DRAM access cost.
        //
        // A shared prefix attachment is resident once on behalf of *all* its
        // sessions, so it rides on top of the proportional private grant
        // (clamped to the on-chip size); the proportional split itself runs
        // over private bytes only, keeping Σ private grants ≤ on-chip.
        let physical = self.engine.platform().memory.kv_memory.capacity_bytes;
        let shared_bytes = slot.shared.map_or(0, |(_, bytes)| bytes);
        let (granted, spill) = if peak > capacity {
            let onchip = capacity.min(physical);
            let granted = ((onchip as u128 * kv_bytes as u128) / peak as u128) as u64;
            let uncontended_resident = kv_bytes.min(physical);
            let contended_resident = kv_bytes.min(granted);
            (
                Some((granted + shared_bytes).min(onchip)),
                uncontended_resident - contended_resident,
            )
        } else {
            (None, 0)
        };
        let timing = &mut self.timings[index];
        timing.finished_tick = self.tick;
        timing.kv_bytes = kv_bytes;
        timing.peak_concurrent_bytes = peak;
        timing.granted_bytes = granted;
        timing.spill_bytes = spill;
        self.spill_bytes += spill;

        let generated = std::mem::take(&mut slot.generated);
        let trace = std::mem::take(&mut slot.trace);
        let turn = slot
            .session
            .as_mut()
            .expect("session is resident between steps")
            .finish_turn(
                generated,
                trace,
                slot.prefilled,
                slot.request.decode_len(),
                slot.request.label(),
                granted,
            );
        self.stats = self.stats.merged(EngineStats::from_turn(&turn));
        self.ledger.release(slot.lease);
        if let Some(tier) = self.tier.as_mut() {
            tier.remove_session(index);
        }
        if let Some((tag, _)) = slot.shared {
            let last_detach = self.ledger.detach_shared(tag);
            if last_detach {
                if let Some(tier) = self.tier.as_mut() {
                    tier.remove_segment(tag);
                }
            }
        }
        self.checkpoints.remove(&index);
        self.states[index] = RequestState::Finished(turn.into());
    }

    /// Sheds requests whose deadline or queue-wait budget expired, at the
    /// start of the tick (before any decode compute is spent on them).
    fn shed_expired(&mut self, executor: &mut dyn StepExecutor<'e>) {
        for index in 0..self.states.len() {
            let elapsed = self.tick.saturating_sub(self.timings[index].submitted_tick);
            match &self.states[index] {
                RequestState::Waiting(request)
                    if request.queue_timeout_ticks().is_some_and(|t| elapsed > t) =>
                {
                    self.chaos_metrics.shed_requests += 1;
                    self.shed_waiting(index, ShedReason::QueueTimeout);
                }
                RequestState::Active(slot)
                    if slot.request.deadline_ticks().is_some_and(|d| elapsed > d) =>
                {
                    self.chaos_metrics.shed_requests += 1;
                    self.shed_active(index, ShedReason::DeadlineExceeded, executor);
                }
                _ => {}
            }
        }
    }

    /// A synthetic outcome for a request shed with `generated` tokens that
    /// never went through the hardware simulation (nothing was decoded, or
    /// the session was lost with no checkpoint to finalize from).
    fn shed_outcome(generated: Vec<usize>, trace: DecodeTrace, reason: ShedReason) -> ServeOutcome {
        ServeOutcome {
            generated,
            cache: CacheStats::default(),
            faults: FaultStats::default(),
            trace,
            hardware: PlatformReport {
                platform: String::new(),
                workload: "shed",
                prefill: PhaseMetrics::default(),
                decode: PhaseMetrics::default(),
            },
            prefilled_tokens: 0,
            prefix_hit_tokens: 0,
            shed: Some(reason),
        }
    }

    /// Removes a waiting request from the queue and finalizes it unserved.
    fn shed_waiting(&mut self, index: usize, reason: ShedReason) {
        if let Some(pos) = self.waiting.iter().position(|&i| i == index) {
            self.waiting.remove(pos);
        }
        let previous = std::mem::replace(&mut self.states[index], RequestState::Taken);
        assert!(
            matches!(previous, RequestState::Waiting(_)),
            "only waiting requests shed through shed_waiting"
        );
        let timing = &mut self.timings[index];
        timing.finished_tick = self.tick;
        // A drained future arrival can be shed before its arrival tick:
        // it never queued, so its queue time saturates to zero.
        timing.queue_ticks = self.tick.saturating_sub(timing.submitted_tick);
        self.shed_events.push((index, reason));
        self.states[index] = RequestState::Finished(Self::shed_outcome(
            Vec::new(),
            DecodeTrace::default(),
            reason,
        ));
    }

    /// Finalizes an active request early with whatever it generated so far,
    /// releasing its lease, tier placement and shared-prefix attachment.
    /// With a resident session and at least one token the partial turn is
    /// finalized for real (hardware simulation, engine statistics); a
    /// token-less or session-less shed produces a synthetic outcome.  A
    /// parked session is recalled from its shard first.
    fn shed_active(
        &mut self,
        index: usize,
        reason: ShedReason,
        executor: &mut dyn StepExecutor<'e>,
    ) {
        self.ensure_resident(index, executor);
        let state = std::mem::replace(&mut self.states[index], RequestState::Taken);
        let RequestState::Active(mut slot) = state else {
            unreachable!("only active requests shed through shed_active");
        };
        let kv_bytes = self.ledger.lease_bytes(slot.lease);
        let generated = std::mem::take(&mut slot.generated);
        let trace = std::mem::take(&mut slot.trace);
        let outcome = match slot.session.as_mut() {
            Some(session) if !generated.is_empty() => {
                let decode_len = generated.len();
                let turn = session.finish_turn(
                    generated,
                    trace,
                    slot.prefilled,
                    decode_len,
                    slot.request.label(),
                    None,
                );
                self.stats = self.stats.merged(EngineStats::from_turn(&turn));
                let mut outcome = ServeOutcome::from(turn);
                outcome.shed = Some(reason);
                outcome
            }
            _ => Self::shed_outcome(generated, trace, reason),
        };
        let timing = &mut self.timings[index];
        timing.finished_tick = self.tick;
        timing.kv_bytes = kv_bytes;
        timing.peak_concurrent_bytes = slot.peak_concurrent_bytes;
        self.ledger.release(slot.lease);
        if let Some(tier) = self.tier.as_mut() {
            tier.remove_session(index);
        }
        if let Some((tag, _)) = slot.shared {
            let last_detach = self.ledger.detach_shared(tag);
            if last_detach {
                if let Some(tier) = self.tier.as_mut() {
                    tier.remove_segment(tag);
                }
            }
        }
        self.checkpoints.remove(&index);
        self.shed_events.push((index, reason));
        self.states[index] = RequestState::Finished(outcome);
    }

    /// Cancels a request mid-stream.  A waiting request is finalized
    /// unserved; an active one keeps the tokens it generated so far (its
    /// outcome is marked [`ShedReason::Cancelled`]) and releases all
    /// capacity immediately.  Returns `false` when the index is unknown or
    /// the request already finished.
    ///
    /// A session parked on a sticky executor cannot be recalled through this
    /// entry point (there is no executor to ask); its partial output is kept
    /// but finalized synthetically.  Prefer
    /// [`cancel_with`](BatchScheduler::cancel_with) when stepping through a
    /// sticky executor.
    pub fn cancel(&mut self, request: usize) -> bool {
        self.cancel_with(request, &mut InlineExecutor)
    }

    /// [`cancel`](BatchScheduler::cancel), recalling a parked session from
    /// `executor` so the partial turn finalizes for real.
    pub fn cancel_with(&mut self, request: usize, executor: &mut dyn StepExecutor<'e>) -> bool {
        match self.states.get(request) {
            Some(RequestState::Waiting(_)) => {
                self.chaos_metrics.cancelled_requests += 1;
                self.shed_waiting(request, ShedReason::Cancelled);
                true
            }
            Some(RequestState::Active(_)) => {
                self.chaos_metrics.cancelled_requests += 1;
                self.shed_active(request, ShedReason::Cancelled, executor);
                true
            }
            _ => false,
        }
    }

    /// Gracefully drains the scheduler: admission stops, every waiting
    /// request is finalized unserved ([`ShedReason::Drained`]) and the
    /// active ones are stepped to completion.  On return the scheduler is
    /// idle and every lease, tier placement and shared-prefix reference has
    /// been released — [`finish`](BatchScheduler::finish) cannot fail.
    /// Draining is terminal: requests submitted afterwards queue forever.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        self.drain_with(&mut InlineExecutor)
    }

    /// [`drain`](BatchScheduler::drain) stepping through `executor`.  A
    /// [`ServeError::WorkerLost`] mid-drain sheds the lost request and
    /// surfaces the error; calling again resumes the wind-down.
    pub fn drain_with(&mut self, executor: &mut dyn StepExecutor<'e>) -> Result<(), ServeError> {
        self.begin_drain();
        while self.active() > 0 {
            self.try_step_with(executor)?;
        }
        Ok(())
    }

    /// The non-blocking half of [`drain`](BatchScheduler::drain): stops
    /// admission, sheds every waiting request as [`ShedReason::Drained`] and
    /// resumes any backpressure-paused slot so the wind-down cannot stall —
    /// but does **not** step the active sessions.  Keep calling
    /// [`try_step_with`](BatchScheduler::try_step_with) until
    /// [`is_idle`](BatchScheduler::is_idle); this is what the front-end's
    /// cooperative [`drain`](crate::front::ServingFront::drain) does.
    pub fn begin_drain(&mut self) {
        self.draining = true;
        let waiting: Vec<usize> = self.waiting.iter().copied().collect();
        for index in waiting {
            self.chaos_metrics.drained_requests += 1;
            self.shed_waiting(index, ShedReason::Drained);
        }
        // Future arrivals never run on a draining scheduler: shed them now
        // (in arrival order) so the wind-down reaches idle.
        while let Some(Reverse((_, index))) = self.scheduled.pop() {
            if matches!(self.states[index], RequestState::Waiting(_)) {
                self.chaos_metrics.drained_requests += 1;
                self.shed_waiting(index, ShedReason::Drained);
            }
        }
        for state in &mut self.states {
            if let RequestState::Active(slot) = state {
                slot.paused = false;
            }
        }
    }

    /// Effective per-session `N'` shares of the engine's cache budget for the
    /// currently active sessions, derived from their live context lengths —
    /// the algorithmic view of the same contention the ledger arbitrates.
    /// Purely observational: shares are never applied to live caches (that
    /// would change token streams and break the equivalence guarantee).
    pub fn partitioned_budgets(&self, mode: PartitionMode) -> Vec<(usize, CacheBudget)> {
        let active: Vec<(usize, usize)> = self
            .states
            .iter()
            .enumerate()
            .filter_map(|(index, state)| match state {
                // The mirror, not the session: a sticky executor may be
                // holding the session itself parked on its shard.
                RequestState::Active(slot) => Some((index, slot.position)),
                _ => None,
            })
            .collect();
        let contexts: Vec<usize> = active.iter().map(|&(_, context)| context).collect();
        let partitioner = BudgetPartitioner::new(self.engine.config().budget, mode);
        active
            .iter()
            .map(|&(index, _)| index)
            .zip(partitioner.shares(&contexts))
            .collect()
    }

    /// Drives [`step`](BatchScheduler::step) until every submitted request
    /// has finished, then collects the outcome.  This is the panic-free
    /// driver behind the sequential [`KelleEngine::serve`] path.
    pub fn run_to_completion(self) -> BatchOutcome {
        self.run_to_completion_streaming(|_, _| {})
    }

    /// Like [`run_to_completion`](BatchScheduler::run_to_completion),
    /// invoking `on_token` with `(request_index, token)` as tokens are
    /// generated.
    pub fn run_to_completion_streaming(self, on_token: impl FnMut(usize, usize)) -> BatchOutcome {
        self.run_to_completion_streaming_with(&mut InlineExecutor, on_token)
    }

    /// Drives [`step_with`](BatchScheduler::step_with) until every submitted
    /// request has finished, streaming tokens from the coordinating thread
    /// in the same order single-threaded serving would deliver them.
    pub fn run_to_completion_streaming_with(
        mut self,
        executor: &mut dyn StepExecutor<'e>,
        mut on_token: impl FnMut(usize, usize),
    ) -> BatchOutcome {
        while !self.is_idle() {
            for event in self.step_with(executor) {
                on_token(event.request, event.token);
            }
        }
        self.finish()
            .expect("scheduler is idle, finish cannot fail")
    }

    /// Fallible
    /// [`run_to_completion_streaming_with`](BatchScheduler::run_to_completion_streaming_with):
    /// drives [`try_step_with`](BatchScheduler::try_step_with) until idle.
    /// An unrecoverable worker loss aborts the drive with
    /// [`ServeError::WorkerLost`]; the lost request was already finalized
    /// with its partial output, but the remaining in-flight work is dropped
    /// with the scheduler — callers that must not lose the batch should
    /// step/drain a scheduler they own instead.
    pub fn try_run_to_completion_streaming_with(
        mut self,
        executor: &mut dyn StepExecutor<'e>,
        mut on_token: impl FnMut(usize, usize),
    ) -> Result<BatchOutcome, ServeError> {
        while !self.is_idle() {
            for event in self.try_step_with(executor)? {
                on_token(event.request, event.token);
            }
        }
        Ok(self
            .finish()
            .expect("scheduler is idle, finish cannot fail"))
    }

    /// Like
    /// [`try_run_to_completion_streaming_with`](BatchScheduler::try_run_to_completion_streaming_with)
    /// but delivering the full [`ServeEvent`] stream: tokens as they commit
    /// **and** sheds (deadline, queue timeout, cancellation, drain, worker
    /// loss) as they happen, instead of only reporting sheds in the final
    /// outcome.  Within a tick tokens are delivered before that tick's
    /// sheds, both in request-index order.
    pub fn try_run_to_completion_events_with(
        mut self,
        executor: &mut dyn StepExecutor<'e>,
        mut on_event: impl FnMut(ServeEvent),
    ) -> Result<BatchOutcome, ServeError> {
        for (request, reason) in self.take_shed_events() {
            on_event(ServeEvent::Shed { request, reason });
        }
        while !self.is_idle() {
            let stepped = self.try_step_with(executor);
            // Sheds recorded this tick are delivered even when the tick
            // itself failed with a worker loss.
            let events = match &stepped {
                Ok(events) => events.as_slice(),
                Err(_) => &[],
            };
            for event in events {
                on_event(ServeEvent::Token {
                    request: event.request,
                    token: event.token,
                    finished: event.finished,
                });
            }
            for (request, reason) in self.take_shed_events() {
                on_event(ServeEvent::Shed { request, reason });
            }
            stepped?;
        }
        Ok(self
            .finish()
            .expect("scheduler is idle, finish cannot fail"))
    }

    /// Collects the per-request outcomes and the batch aggregate.
    ///
    /// Returns [`BatchIncomplete`] if any submitted request is still waiting
    /// or decoding; the error hands the scheduler back
    /// ([`BatchIncomplete::resume`]) so the batch can still be driven with
    /// [`step`](BatchScheduler::step) until
    /// [`is_idle`](BatchScheduler::is_idle) — or use
    /// [`run_to_completion`](BatchScheduler::run_to_completion) and never
    /// deal with the error at all.
    pub fn finish(self) -> Result<BatchOutcome, BatchIncomplete<'e>> {
        if !self.is_idle() {
            return Err(BatchIncomplete {
                active: self.active(),
                waiting: self.waiting.len(),
                scheduler: Box::new(self),
            });
        }
        let outcomes: Vec<ServeOutcome> = self
            .states
            .into_iter()
            .map(|state| match state {
                RequestState::Finished(outcome) => outcome,
                _ => unreachable!("idle scheduler holds only finished requests"),
            })
            .collect();
        let slo = Self::slo_report(self.config.slo, &self.timings, &outcomes, self.tick);
        let contention = ContentionMetrics {
            capacity_bytes: self.config.kv_capacity_bytes,
            peak_residency_bytes: self.ledger.high_water_bytes(),
            spill_bytes: self.spill_bytes,
            total_queue_ticks: self.timings.iter().map(|t| t.queue_ticks).sum(),
            max_queue_ticks: self
                .timings
                .iter()
                .map(|t| t.queue_ticks)
                .max()
                .unwrap_or(0),
            per_request: self.timings,
        };
        let mut parallel = self.parallel;
        parallel.ticks = self.tick;
        Ok(BatchOutcome {
            outcomes,
            stats: self.stats,
            contention,
            prefix: self.prefix,
            tiering: self
                .tier
                .as_ref()
                .map(TierManager::metrics)
                .unwrap_or_default(),
            chaos: self.chaos_metrics,
            parallel,
            slo,
        })
    }

    /// Derives the batch's [`SloReport`] from the per-request timings and
    /// outcomes.  Pure tick arithmetic: no wall-clock enters, so the report
    /// is bit-identical across executors and worker counts.
    fn slo_report(
        spec: SloSpec,
        timings: &[RequestTiming],
        outcomes: &[ServeOutcome],
        ticks: u64,
    ) -> SloReport {
        let mut ttfts = Vec::with_capacity(outcomes.len());
        let mut tpots = Vec::with_capacity(outcomes.len());
        let mut queues = Vec::with_capacity(outcomes.len());
        let mut report = SloReport {
            spec,
            requests: outcomes.len() as u64,
            ticks,
            ..SloReport::default()
        };
        for (timing, outcome) in timings.iter().zip(outcomes) {
            let tokens = outcome.generated.len() as u64;
            report.total_tokens += tokens;
            queues.push(timing.queue_ticks as f64);
            let ttft = timing
                .first_token_tick
                .map(|first| first - timing.submitted_tick);
            if let Some(ttft) = ttft {
                ttfts.push(ttft as f64);
            }
            if outcome.shed.is_some() {
                report.shed += 1;
                continue;
            }
            report.completed += 1;
            let tpot = match (timing.first_token_tick, tokens) {
                (Some(first), 2..) => {
                    Some((timing.finished_tick - first) as f64 / (tokens - 1) as f64)
                }
                _ => None,
            };
            if let Some(tpot) = tpot {
                tpots.push(tpot);
            }
            if ttft.is_some_and(|ttft| spec.met_by(ttft, tpot)) {
                report.goodput_requests += 1;
                report.goodput_tokens += tokens;
            }
        }
        report.ttft = LatencySummary::from_samples(ttfts);
        report.tpot = LatencySummary::from_samples(tpots);
        report.queue = LatencySummary::from_samples(queues);
        report
    }
}

impl std::fmt::Debug for BatchScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("submitted", &self.states.len())
            .field("waiting", &self.waiting.len())
            .field("active", &self.active())
            .field("live_bytes", &self.ledger.live_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> KelleEngine {
        KelleEngine::new(EngineConfig::default())
    }

    #[test]
    fn scheduler_round_robins_until_done() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3], 2));
        scheduler.submit(ServeRequest::new(vec![4, 5, 6], 4));
        assert_eq!(scheduler.active(), 2);
        assert_eq!(scheduler.waiting(), 0);

        // Both requests progress in the first two steps; only the longer one
        // afterwards.
        let s1 = scheduler.step();
        assert_eq!(s1.len(), 2);
        let s2 = scheduler.step();
        assert_eq!(s2.len(), 2);
        assert!(s2.iter().any(|e| e.request == 0 && e.finished));
        let s3 = scheduler.step();
        assert_eq!(s3.len(), 1);
        assert_eq!(s3[0].request, 1);
        scheduler.step();
        assert!(scheduler.is_idle());

        let outcome = scheduler.finish().expect("batch is idle");
        assert_eq!(outcome.outcomes.len(), 2);
        assert_eq!(outcome.outcomes[0].generated.len(), 2);
        assert_eq!(outcome.outcomes[1].generated.len(), 4);
        assert_eq!(outcome.stats.requests, 2);
        assert_eq!(outcome.stats.tokens_generated, 6);
        // Unbounded: nobody queued, nothing spilled, but the high-water mark
        // still saw both requests' bytes.
        assert_eq!(outcome.contention.total_queue_ticks, 0);
        assert_eq!(outcome.contention.spill_bytes, 0);
        assert!(outcome.contention.peak_residency_bytes > 0);
        assert!(outcome
            .contention
            .per_request
            .iter()
            .all(|t| t.kv_bytes > 0));
    }

    #[test]
    fn finish_before_idle_is_a_recoverable_error() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.submit(ServeRequest::new(vec![1, 2], 3));
        let err = scheduler.finish().unwrap_err();
        assert_eq!((err.active, err.waiting), (1, 0));
        assert!(err.to_string().contains("1 request(s) still decoding"));
        // Nothing in flight was lost: the scheduler comes back out of the
        // error and the batch still completes.
        let outcome = err.resume().run_to_completion();
        assert_eq!(outcome.outcomes[0].generated.len(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_not_a_panic() {
        let config = SchedulerConfig::default().with_kv_capacity_bytes(0);
        assert_eq!(config.kv_capacity_bytes, Some(1));
        // A hand-assembled zero is clamped at construction too.
        let engine = engine();
        let raw = SchedulerConfig {
            kv_capacity_bytes: Some(0),
            admission: AdmissionPolicy::Fcfs,
            tiering: None,
            parallel_axis: ParallelAxis::Auto,
            chaos: None,
            slo: SloSpec::default(),
        };
        let scheduler = BatchScheduler::with_config(&engine, raw);
        assert_eq!(scheduler.ledger().capacity_bytes(), 1);
    }

    #[test]
    fn bounded_capacity_queues_and_backfills() {
        let engine = engine();
        // Room for exactly one 4-token prompt at a time (the second request's
        // decode growth will oversubscribe, which is allowed).
        let capacity = engine.kv_footprint_bytes(4);
        let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3, 4], 2));
        scheduler.submit(ServeRequest::new(vec![5, 6, 7, 8], 2));
        // Only the first fits; the second waits.
        assert_eq!(scheduler.active(), 1);
        assert_eq!(scheduler.waiting(), 1);

        let s1 = scheduler.step();
        assert_eq!(s1.len(), 1);
        let s2 = scheduler.step();
        assert!(s2[0].finished);
        // The release back-filled the queue within the same step call.
        assert_eq!(scheduler.active(), 1);
        assert_eq!(scheduler.waiting(), 0);
        scheduler.step();
        scheduler.step();
        assert!(scheduler.is_idle());
        let outcome = scheduler.finish().expect("batch is idle");
        let timing = &outcome.contention.per_request[1];
        assert_eq!(timing.queue_ticks, 2);
        assert_eq!(outcome.contention.total_queue_ticks, 2);
        assert_eq!(outcome.contention.max_queue_ticks, 2);
    }

    #[test]
    fn oversized_request_is_force_admitted() {
        let engine = engine();
        // Capacity smaller than even a single token's footprint.
        let config = SchedulerConfig::default().with_kv_capacity_bytes(1);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3], 2));
        assert_eq!(scheduler.active(), 1, "empty machine must force-admit");
        let outcome = scheduler.run_to_completion();
        assert_eq!(outcome.outcomes[0].generated.len(), 2);
        // Everything beyond the 1-byte capacity spilled.
        assert!(outcome.contention.spill_bytes > 0);
        let timing = &outcome.contention.per_request[0];
        assert_eq!(timing.granted_bytes, Some(1));
    }

    #[test]
    fn shortest_prompt_first_overtakes() {
        let engine = engine();
        let capacity = engine.kv_footprint_bytes(8);
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes(capacity)
            .with_admission(AdmissionPolicy::ShortestPromptFirst);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        // The 8-token prompt fills the machine; then a long and a short
        // request queue behind it.
        scheduler.submit(ServeRequest::new(vec![1; 8], 1));
        scheduler.submit(ServeRequest::new(vec![2; 6], 1));
        scheduler.submit(ServeRequest::new(vec![3; 2], 1));
        assert_eq!(scheduler.waiting(), 2);
        let outcome = scheduler.run_to_completion();
        let timings = &outcome.contention.per_request;
        // The short prompt (submitted last) was admitted no later than the
        // 6-token one.
        assert!(timings[2].admitted_tick <= timings[1].admitted_tick);
        // Outcomes stay in submission order regardless of admission order.
        assert_eq!(outcome.outcomes[0].generated.len(), 1);
        assert_eq!(outcome.outcomes.len(), 3);
    }

    #[test]
    fn capacity_fit_skips_blocked_head() {
        let engine = engine();
        let capacity = engine.kv_footprint_bytes(8);
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes(capacity)
            .with_admission(AdmissionPolicy::CapacityFit);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        // 6 tokens active; a 7-token head would need 13 total, but the
        // 2-token request behind it fits alongside.
        scheduler.submit(ServeRequest::new(vec![1; 6], 4));
        scheduler.submit(ServeRequest::new(vec![2; 7], 1));
        scheduler.submit(ServeRequest::new(vec![3; 2], 1));
        assert_eq!(scheduler.active(), 2, "first-fit admits around the head");
        let outcome = scheduler.run_to_completion();
        let timings = &outcome.contention.per_request;
        assert_eq!(timings[2].queue_ticks, 0);
        assert!(timings[1].queue_ticks > 0);
    }

    #[test]
    fn shared_prefix_is_charged_once_across_the_batch() {
        use crate::prefix::PrefixSharingConfig;
        let engine = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled())
            .build();
        let prefix: Vec<usize> = (0..12).map(|i| (i * 3 + 2) % 512).collect();
        assert!(engine.publish_prefix(&prefix));
        let shared_footprint = engine.kv_footprint_bytes(prefix.len());

        let requests: Vec<ServeRequest> = (0..3)
            .map(|i| {
                let mut prompt = prefix.clone();
                prompt.extend([100 + i, 200 + i]);
                ServeRequest::new(prompt, 2)
            })
            .collect();
        let total_private: u64 = requests
            .iter()
            .map(|r| engine.kv_footprint_bytes(r.prompt().len()) - shared_footprint)
            .sum();

        let mut scheduler = BatchScheduler::new(&engine);
        for request in requests {
            scheduler.submit(request);
        }
        // All three are active; the ledger charges the prefix once.
        assert_eq!(scheduler.active(), 3);
        assert_eq!(
            scheduler.ledger().live_bytes(),
            shared_footprint + total_private
        );
        assert_eq!(scheduler.ledger().shared_bytes(), shared_footprint);
        assert_eq!(
            scheduler.ledger().dedup_savings_bytes(),
            2 * shared_footprint
        );
        let outcome = scheduler.run_to_completion();
        assert_eq!(outcome.prefix.hit_requests, 3);
        assert_eq!(outcome.prefix.hit_tokens, 3 * prefix.len() as u64);
        assert_eq!(outcome.prefix.shared_bytes, shared_footprint);
        assert_eq!(outcome.prefix.deduplicated_bytes, 2 * shared_footprint);
        assert_eq!(outcome.stats.prefix_hit_tokens, 3 * prefix.len() as u64);
        // Every request reports its own hit in the per-request outcome.
        assert!(outcome
            .outcomes
            .iter()
            .all(|o| o.prefix_hit_tokens == prefix.len() && o.prefilled_tokens == 2));
    }

    #[test]
    fn shared_prefix_admission_fits_more_sessions() {
        use crate::prefix::PrefixSharingConfig;
        let prefix: Vec<usize> = (0..10).collect();
        let build = |sharing: bool| {
            let mut builder = KelleEngine::builder();
            if sharing {
                builder = builder.prefix_sharing(PrefixSharingConfig::enabled());
            }
            builder.build()
        };
        let make_requests = || -> Vec<ServeRequest> {
            (0..2)
                .map(|i| {
                    let mut prompt = prefix.clone();
                    prompt.push(400 + i);
                    ServeRequest::new(prompt, 1)
                })
                .collect()
        };

        let sharing = build(true);
        assert!(sharing.publish_prefix(&prefix));
        // Capacity: one full prompt plus one suffix — enough for both
        // requests only when the prefix is deduplicated.
        let capacity = sharing.kv_footprint_bytes(prefix.len() + 1)
            + (sharing.kv_footprint_bytes(prefix.len() + 1)
                - sharing.kv_footprint_bytes(prefix.len()));
        let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity);

        let mut with = BatchScheduler::with_config(&sharing, config);
        for request in make_requests() {
            with.submit(request);
        }
        assert_eq!(with.active(), 2, "dedup makes both prompts fit at once");

        let cold = build(false);
        let mut without = BatchScheduler::with_config(&cold, config);
        for request in make_requests() {
            without.submit(request);
        }
        assert_eq!(without.active(), 1, "without sharing the second queues");
        // Streams are identical either way.
        let a = with.run_to_completion();
        let b = without.run_to_completion();
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.generated, y.generated);
        }
        assert_eq!(b.prefix, PrefixBatchMetrics::default());
    }

    #[test]
    fn backfill_admits_only_after_shared_prefix_detach_frees_bytes() {
        use crate::prefix::PrefixSharingConfig;
        let engine = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled())
            .build();
        let prefix: Vec<usize> = (0..8).map(|i| (i * 5 + 3) % 512).collect();
        assert!(engine.publish_prefix(&prefix));
        let shared = engine.kv_footprint_bytes(prefix.len());

        // Request A rides the shared prefix (2 private suffix tokens);
        // request B (no prefix match) is sized so it fits the capacity alone
        // but NOT alongside any part of A — not even the shared-pool bytes:
        //   footprint(B) <= capacity  and  footprint(B) > capacity - shared.
        // B can therefore only be admitted once A's completion both releases
        // its private lease *and* detaches the last shared-pool reference.
        let mut a_prompt = prefix.clone();
        a_prompt.extend([100, 101]);
        let b_prompt: Vec<usize> = (0..10).map(|i| 300 + i).collect();
        let capacity = engine.kv_footprint_bytes(11);
        let b_footprint = engine.kv_footprint_bytes(b_prompt.len());
        assert!(b_footprint <= capacity);
        assert!(
            b_footprint > capacity - shared,
            "B must need the shared-pool bytes back, not just A's private lease"
        );

        let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(a_prompt, 2));
        scheduler.submit(ServeRequest::new(b_prompt.clone(), 1));
        assert_eq!(scheduler.active(), 1, "B waits while A holds the prefix");
        assert_eq!(scheduler.waiting(), 1);
        assert!(scheduler.ledger().has_shared(0));

        scheduler.step();
        assert_eq!(scheduler.waiting(), 1, "A still active: no room for B");
        // A finishes mid-tick: complete() releases its lease, detaches the
        // shared prefix (last holder), and the same step() call back-fills B.
        scheduler.step();
        assert_eq!(scheduler.active(), 1, "B admitted by the back-fill");
        assert_eq!(scheduler.waiting(), 0);
        assert!(
            !scheduler.ledger().has_shared(0),
            "last detach emptied the shared pool"
        );

        scheduler.step();
        assert!(scheduler.is_idle());
        let outcome = scheduler.finish().expect("batch is idle");
        let timings = &outcome.contention.per_request;
        assert_eq!(timings[0].finished_tick, timings[1].admitted_tick);
        assert_eq!(timings[1].queue_ticks, 2);
        assert_eq!(outcome.prefix.hit_requests, 1);
        // B's stream is unaffected by having queued behind the prefix bytes.
        let unbounded = engine.serve_one(&b_prompt, 1);
        assert_eq!(outcome.outcomes[1].generated, unbounded.generated);
    }

    #[test]
    fn partitioned_budgets_reflect_active_sessions() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.submit(ServeRequest::new(vec![1; 6], 4));
        scheduler.submit(ServeRequest::new(vec![2; 2], 4));
        let equal = scheduler.partitioned_budgets(PartitionMode::EqualSplit);
        assert_eq!(equal.len(), 2);
        assert_eq!(equal[0].1, equal[1].1);
        let proportional = scheduler.partitioned_budgets(PartitionMode::ProportionalToContext);
        // The 6-token session holds more context, so it gets the larger N'.
        assert!(proportional[0].1.max_tokens > proportional[1].1.max_tokens);
        let total: usize = proportional.iter().map(|(_, b)| b.max_tokens).sum();
        assert!(total <= engine.config().budget.max_tokens);
    }

    #[test]
    fn tiering_streams_match_unbounded_and_stay_within_edram_budget() {
        let engine = engine();
        let requests: Vec<ServeRequest> = (0..4)
            .map(|i| ServeRequest::new(vec![10 + i, 20 + i, 30 + i, 40 + i], 3))
            .collect();

        let mut unbounded = BatchScheduler::new(&engine);
        for request in &requests {
            unbounded.submit(request.clone());
        }
        let baseline = unbounded.run_to_completion();

        // eDRAM holds one 4-token prompt at a time: the fleet's total KV
        // overflows on chip and must queue + demote.
        let edram = engine.kv_footprint_bytes(4);
        let config = SchedulerConfig::default().with_tiering(TierConfig::with_edram_budget(edram));
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        for request in &requests {
            scheduler.submit(request.clone());
        }
        let tiered = scheduler.run_to_completion();

        // Bit-identical functional and hardware outcomes; only the tiering
        // metrics differ from their all-zero default.
        for (a, b) in baseline.outcomes.iter().zip(tiered.outcomes.iter()) {
            assert_eq!(a.generated, b.generated);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.hardware, b.hardware);
        }
        assert_eq!(baseline.stats, tiered.stats);
        assert_ne!(tiered.tiering, TieringMetrics::default());
        // The settled eDRAM residency respects the budget; overflow lived in
        // the slower tiers and came back at a modelled migration cost.
        assert!(tiered.tiering.edram.settled_peak_bytes <= edram);
        assert!(tiered.tiering.demotions > 0);
        assert!(tiered.tiering.promotions > 0);
        assert!(tiered.tiering.migration_time_s > 0.0);
        assert!(tiered.tiering.migration_energy_j > 0.0);
        assert_eq!(
            tiered.tiering.migrated_bytes,
            tiered.tiering.edram.out_bytes + tiered.tiering.edram.in_bytes,
            "with a one-prompt eDRAM all migrations cross the eDRAM boundary"
        );
    }

    #[test]
    fn oversized_session_thrashes_but_completes_identically() {
        let engine = engine();
        let request = ServeRequest::new(vec![1, 2, 3, 4, 5, 6, 7, 8], 4);
        let alone = engine.serve_one(request.prompt(), 4);

        // The single session is larger than the whole eDRAM tier: it is
        // force-admitted, demoted by every rebalance, and promoted back each
        // tick — a modelled swap loop, not a correctness problem.
        let edram = engine.kv_footprint_bytes(1);
        let config = SchedulerConfig::default().with_tiering(TierConfig::with_edram_budget(edram));
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(request);
        let outcome = scheduler.run_to_completion();

        assert_eq!(outcome.outcomes[0].generated, alone.generated);
        assert_eq!(outcome.outcomes[0].hardware, alone.hardware);
        assert!(
            outcome.tiering.demotions >= 3 && outcome.tiering.promotions >= 3,
            "expected a swap per tick, got {}/{}",
            outcome.tiering.demotions,
            outcome.tiering.promotions
        );
        // No grant shrinkage and no spill: capacity spans the hierarchy.
        assert_eq!(outcome.contention.per_request[0].granted_bytes, None);
        assert_eq!(outcome.contention.spill_bytes, 0);
    }

    #[test]
    fn deadline_sheds_with_partial_output() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.submit(
            ServeRequest::builder(vec![1, 2, 3])
                .decode_len(10)
                .deadline_ticks(3)
                .build(),
        );
        let alone = engine.serve_one(&[1, 2, 3], 10);
        for _ in 0..4 {
            scheduler.step();
        }
        assert!(scheduler.is_idle(), "deadline shed the request");
        let outcome = scheduler.finish().expect("idle");
        let shed = &outcome.outcomes[0];
        assert_eq!(shed.shed, Some(ShedReason::DeadlineExceeded));
        // Three full ticks of decode before the shed, bit-identical to the
        // unconstrained stream's prefix.
        assert_eq!(shed.generated, alone.generated[..3]);
        assert_eq!(outcome.chaos.shed_requests, 1);
    }

    #[test]
    fn queue_timeout_sheds_waiting_requests() {
        let engine = engine();
        let capacity = engine.kv_footprint_bytes(4);
        let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3, 4], 8));
        scheduler.submit(
            ServeRequest::builder(vec![5, 6, 7, 8])
                .decode_len(2)
                .queue_timeout_ticks(2)
                .build(),
        );
        assert_eq!(scheduler.waiting(), 1);
        for _ in 0..3 {
            scheduler.step();
        }
        assert_eq!(scheduler.waiting(), 0, "queue timeout expired");
        let outcome = scheduler.run_to_completion();
        assert_eq!(outcome.outcomes[1].shed, Some(ShedReason::QueueTimeout));
        assert!(outcome.outcomes[1].generated.is_empty());
        assert_eq!(outcome.outcomes[0].shed, None);
        assert_eq!(outcome.outcomes[0].generated.len(), 8);
    }

    #[test]
    fn cancel_finalizes_mid_stream_and_releases_capacity() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        let a = scheduler.submit(ServeRequest::new(vec![1, 2, 3], 8));
        let b = scheduler.submit(ServeRequest::new(vec![4, 5, 6], 2));
        scheduler.step();
        assert!(scheduler.cancel(a));
        assert!(!scheduler.cancel(a), "already finished");
        assert!(!scheduler.cancel(99), "unknown index");
        let outcome = scheduler.run_to_completion();
        assert_eq!(outcome.outcomes[a].shed, Some(ShedReason::Cancelled));
        assert_eq!(outcome.outcomes[a].generated.len(), 1);
        assert_eq!(outcome.outcomes[b].shed, None);
        assert_eq!(outcome.chaos.cancelled_requests, 1);
    }

    #[test]
    fn drain_stops_admission_and_releases_everything() {
        let engine = engine();
        let capacity = engine.kv_footprint_bytes(4);
        let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3, 4], 4));
        scheduler.submit(ServeRequest::new(vec![5, 6, 7, 8], 4));
        assert_eq!((scheduler.active(), scheduler.waiting()), (1, 1));
        scheduler.step();
        scheduler.drain().expect("no chaos, drain cannot fail");
        assert!(scheduler.is_draining());
        assert!(scheduler.is_idle());
        assert_eq!(scheduler.ledger().live_bytes(), 0);
        assert_eq!(scheduler.ledger().shared_bytes(), 0);
        let outcome = scheduler.finish().expect("drained scheduler is idle");
        // The active request ran to completion; the queued one was dropped.
        assert_eq!(outcome.outcomes[0].shed, None);
        assert_eq!(outcome.outcomes[0].generated.len(), 4);
        assert_eq!(outcome.outcomes[1].shed, Some(ShedReason::Drained));
        assert_eq!(outcome.chaos.drained_requests, 1);
    }

    #[test]
    fn chaos_recovery_keeps_streams_bit_identical() {
        use crate::parallel::WorkerPool;
        let engine = engine();
        let requests: Vec<ServeRequest> = (0..4)
            .map(|i| ServeRequest::new(vec![10 + i, 20 + i, 30 + i], 4))
            .collect();

        let mut baseline = BatchScheduler::new(&engine);
        for request in &requests {
            baseline.submit(request.clone());
        }
        let clean = baseline.run_to_completion();

        let chaos = ChaosConfig::default()
            .with_seed(7)
            .with_worker_panics(250)
            .with_ledger_blips(100)
            .with_max_retries(4);
        let config = SchedulerConfig::default().with_chaos(chaos);
        for workers in [1, 2, 4] {
            let chaotic = std::thread::scope(|scope| {
                let mut pool = WorkerPool::start(scope, workers);
                let mut scheduler = BatchScheduler::with_config(&engine, config);
                for request in &requests {
                    scheduler.submit_with(request.clone(), &mut pool);
                }
                scheduler.try_run_to_completion_streaming_with(&mut pool, |_, _| {})
            })
            .expect("retry budget absorbs every injected panic");
            assert!(
                chaotic.chaos.injected_panics > 0,
                "the 25% panic rate must fire across 4x4 decode steps"
            );
            assert_eq!(chaotic.chaos.lost_requests, 0);
            assert!(chaotic.chaos.restored_sessions >= chaotic.chaos.replayed_steps);
            for (a, b) in clean.outcomes.iter().zip(chaotic.outcomes.iter()) {
                assert_eq!(a.generated, b.generated);
                assert_eq!(a.faults, b.faults);
                assert_eq!(a.hardware, b.hardware);
            }
            assert_eq!(clean.stats, chaotic.stats);
        }
    }

    #[test]
    fn exhausted_retries_surface_worker_lost_and_stay_consistent() {
        let engine = engine();
        let chaos = ChaosConfig::default()
            .with_seed(3)
            .with_worker_panics(1000)
            .with_max_retries(0);
        let config = SchedulerConfig::default().with_chaos(chaos);
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3], 4));
        let err = scheduler
            .try_step_with(&mut InlineExecutor)
            .expect_err("a certain panic with no retries must be lost");
        match err {
            ServeError::WorkerLost {
                request, attempts, ..
            } => {
                assert_eq!(request, 0);
                assert_eq!(attempts, 1);
            }
        }
        // The lost request was finalized; the scheduler is drainable and
        // leak-free.
        assert!(scheduler.is_idle());
        assert_eq!(scheduler.ledger().live_bytes(), 0);
        let outcome = scheduler.finish().expect("idle after the loss");
        assert_eq!(outcome.outcomes[0].shed, Some(ShedReason::WorkerLost));
        assert_eq!(outcome.chaos.lost_requests, 1);
    }

    #[test]
    fn tiering_admission_queues_against_the_edram_budget_only() {
        let engine = engine();
        let edram = engine.kv_footprint_bytes(4);
        let config = SchedulerConfig::default().with_tiering(TierConfig::with_edram_budget(edram));
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3, 4], 2));
        scheduler.submit(ServeRequest::new(vec![5, 6, 7, 8], 2));
        // The ledger spans the hierarchy (it has room), but the second
        // request still waits for on-chip space.
        assert_eq!(scheduler.active(), 1);
        assert_eq!(scheduler.waiting(), 1);
        assert!(scheduler.ledger().can_fit(edram));
        let outcome = scheduler.run_to_completion();
        assert!(outcome.contention.total_queue_ticks > 0);
    }

    #[test]
    fn future_arrivals_join_at_their_tick() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.submit(
            ServeRequest::builder(vec![1, 2])
                .decode_len(2)
                .arrival_tick(3)
                .build(),
        );
        assert_eq!(scheduler.active(), 0, "not arrived yet");
        assert_eq!(scheduler.scheduled(), 1);
        assert!(!scheduler.is_idle(), "a scheduled arrival keeps it busy");
        // Ticks 1 and 2 pass idle; tick 3 admits the arrival.
        assert!(scheduler.step().is_empty());
        assert!(scheduler.step().is_empty());
        assert!(scheduler.step().is_empty());
        assert_eq!((scheduler.active(), scheduler.scheduled()), (1, 0));
        assert_eq!(scheduler.step().len(), 1);
        scheduler.step();
        assert!(scheduler.is_idle());
        let outcome = scheduler.finish().expect("idle");
        let timing = &outcome.contention.per_request[0];
        assert_eq!(timing.submitted_tick, 3);
        assert_eq!(timing.admitted_tick, 3);
        assert_eq!(timing.queue_ticks, 0, "admitted the tick it arrived");
        assert_eq!(timing.first_token_tick, Some(4));
        // The stream is exactly what an eager submission produces.
        let eager = engine.serve_one(&[1, 2], 2);
        assert_eq!(outcome.outcomes[0].generated, eager.generated);
    }

    #[test]
    fn drain_sheds_scheduled_arrivals() {
        let engine = engine();
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.submit(ServeRequest::new(vec![1, 2], 2));
        scheduler.submit(
            ServeRequest::builder(vec![3, 4])
                .decode_len(1)
                .arrival_tick(50)
                .build(),
        );
        scheduler.drain().expect("no chaos");
        assert!(scheduler.is_idle());
        let outcome = scheduler.finish().expect("idle");
        assert_eq!(outcome.outcomes[0].shed, None);
        assert_eq!(outcome.outcomes[1].shed, Some(ShedReason::Drained));
    }

    #[test]
    fn slo_report_classifies_goodput() {
        let engine = engine();
        // Room for one 4-token prompt: the second request queues behind the
        // first and misses the 1-tick TTFT bound.
        let capacity = engine.kv_footprint_bytes(4);
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes(capacity)
            .with_slo(SloSpec::new(1, f64::MAX));
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        scheduler.submit(ServeRequest::new(vec![1, 2, 3, 4], 2));
        scheduler.submit(ServeRequest::new(vec![5, 6, 7, 8], 2));
        let outcome = scheduler.run_to_completion();
        let slo = &outcome.slo;
        assert_eq!((slo.requests, slo.completed, slo.shed), (2, 2, 0));
        assert_eq!(slo.ttft.samples, 2);
        assert_eq!(slo.ttft.p50, 1.0, "the uncontended request's TTFT");
        assert!(slo.ttft.max > 1.0, "the queued request waited");
        assert_eq!(slo.tpot.samples, 2);
        assert_eq!(slo.tpot.p50, 1.0, "one token per tick");
        assert!(slo.queue.max > 0.0);
        assert_eq!(slo.goodput_requests, 1, "only the first met the bound");
        assert_eq!(slo.goodput_tokens, 2);
        assert_eq!(slo.total_tokens, 4);
        assert!(slo.goodput_fraction() == 0.5);
        assert!(slo.goodput_tokens_per_kilotick() > 0.0);
        // The unified report carries every block unchanged.
        let report = outcome.report();
        assert_eq!(report.slo, outcome.slo);
        assert_eq!(report.contention, outcome.contention);
        assert_eq!(report.prefix, outcome.prefix);
        assert_eq!(report.chaos, outcome.chaos);
    }

    #[test]
    fn latency_summary_uses_nearest_rank() {
        let summary = LatencySummary::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(summary.p50, 50.0);
        assert_eq!(summary.p95, 95.0);
        assert_eq!(summary.p99, 99.0);
        assert_eq!(summary.max, 100.0);
        assert_eq!(summary.mean, 50.5);
        assert_eq!(summary.samples, 100);
        assert_eq!(
            LatencySummary::from_samples(Vec::new()),
            LatencySummary::default()
        );
        let one = LatencySummary::from_samples(vec![7.0]);
        assert_eq!((one.p50, one.p99, one.max), (7.0, 7.0, 7.0));
    }
}
