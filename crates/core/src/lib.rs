//! # kelle
//!
//! Top-level crate of the Kelle reproduction: the public API that co-simulates
//! the **algorithm side** (the surrogate LLM with AERP/2DRP-managed KV caches,
//! from `kelle-model` / `kelle-cache` / `kelle-edram`) and the **hardware
//! side** (the eDRAM-based edge accelerator and its baselines, from
//! `kelle-arch`), plus the experiment catalogue used to regenerate every table
//! and figure of the paper.
//!
//! ## Quick start
//!
//! ```rust
//! use kelle::{EngineConfig, KelleEngine};
//!
//! // Build the default Kelle system for a LLaMA2-7B-shaped model.
//! let engine = KelleEngine::new(EngineConfig::default());
//! // Serve a short prompt and inspect both output fidelity and hardware cost.
//! let outcome = engine.serve(&[1, 2, 3, 4, 5, 6, 7, 8], 16);
//! assert_eq!(outcome.generated.len(), 16);
//! assert!(outcome.hardware.total_latency_s() > 0.0);
//! ```
//!
//! The three main entry points are:
//!
//! * [`KelleEngine`] — serve prompts on a configurable Kelle system and obtain
//!   generated tokens, cache behaviour and hardware latency/energy;
//! * [`accuracy`] — the functional-fidelity experiments behind Tables 2–6 and
//!   Fig. 8;
//! * [`experiment`] — the hardware experiments behind Figs. 3, 13–16 and
//!   Tables 7–9.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod engine;
pub mod experiment;
pub mod faults;

pub use accuracy::{AccuracyResult, Method};
pub use engine::{EngineConfig, KelleEngine, ServeOutcome};
pub use experiment::{EndToEndRow, EndToEndSummary};
pub use faults::fault_injector_for_policy;

pub use kelle_arch as arch;
pub use kelle_cache as cache;
pub use kelle_edram as edram;
pub use kelle_model as model;
pub use kelle_tensor as tensor;
pub use kelle_workloads as workloads;
