//! # kelle
//!
//! Top-level crate of the Kelle reproduction: the public API that co-simulates
//! the **algorithm side** (the surrogate LLM with AERP/2DRP-managed KV caches,
//! from `kelle-model` / `kelle-cache` / `kelle-edram`) and the **hardware
//! side** (the eDRAM-based edge accelerator and its baselines, from
//! `kelle-arch`), plus the experiment catalogue used to regenerate every table
//! and figure of the paper.
//!
//! ## Quick start
//!
//! Engines are configured through [`EngineBuilder`] and serve through three
//! entry points of increasing generality: one-shot [`KelleEngine::serve_one`],
//! persistent [`Session`]s whose KV cache survives across turns, and the
//! unified continuous-batching entry [`KelleEngine::serve`], whose
//! [`ServeOptions`] select capacity arbitration, parallel execution,
//! streaming and fallibility on one call.
//!
//! ```rust
//! use kelle::{CachePolicy, KelleEngine, ServeOptions, ServeRequest};
//!
//! // Build a Kelle system: LLaMA2-7B-shaped model, AERP cache management,
//! // 2DRP refresh, evaluated on the Kelle+eDRAM platform.
//! let engine = KelleEngine::builder().policy(CachePolicy::Aerp).seed(7).build();
//!
//! // One-shot serving: functional result + hardware cost in one call.
//! let outcome = engine.serve_one(&[1, 2, 3, 4, 5, 6, 7, 8], 16);
//! assert_eq!(outcome.generated.len(), 16);
//! assert!(outcome.hardware.total_latency_s() > 0.0);
//!
//! // Multi-turn chat: the session keeps its KV cache, so the second turn
//! // pre-fills only its own two new tokens instead of the whole history.
//! let mut session = engine.open_session();
//! session.turn(&[1, 2, 3, 4], 8);
//! let second = session.turn(&[5, 6], 8);
//! assert_eq!(second.prefilled_tokens, 2);
//!
//! // Continuous batching: decode steps interleave round-robin across
//! // requests, streaming tokens as they are produced.
//! let requests = vec![
//!     ServeRequest::new(vec![7, 8, 9], 4),
//!     ServeRequest::builder(vec![10, 11]).decode_len(4).policy(CachePolicy::Full).build(),
//! ];
//! let mut sink = |request: usize, _token: usize| assert!(request < 2);
//! let batch = engine
//!     .serve(requests.clone(), ServeOptions::new().streaming(&mut sink))
//!     .expect("infallible options cannot fail");
//! assert_eq!(batch.outcomes.len(), 2);
//! assert_eq!(batch.stats.tokens_generated, 8);
//!
//! // Shared-capacity arbitration: the same requests contend for one eDRAM
//! // budget — they may queue (admission control) and spill to DRAM (cost
//! // model), but their token streams never change.
//! use kelle::SchedulerConfig;
//! let capacity: u64 = requests
//!     .iter()
//!     .map(|r| engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
//!     .sum();
//! let contended = engine
//!     .serve(
//!         requests,
//!         ServeOptions::new().with_scheduler(
//!             SchedulerConfig::default().with_kv_capacity_bytes(capacity / 2),
//!         ),
//!     )
//!     .expect("infallible options cannot fail");
//! for (a, b) in batch.outcomes.iter().zip(contended.outcomes.iter()) {
//!     assert_eq!(a.generated, b.generated);
//! }
//! // Every batch carries a serving-quality report (TTFT/TPOT/queue-time
//! // percentiles in scheduler ticks, goodput under a configurable SLO).
//! assert_eq!(contended.slo.requests, 2);
//! ```
//!
//! The main entry points are:
//!
//! * [`KelleEngine`] / [`EngineBuilder`] — configure and serve on a Kelle
//!   system, obtaining generated tokens, cache behaviour and hardware
//!   latency/energy;
//! * [`Session`] / [`ServeRequest`] — multi-turn serving with KV-cache reuse
//!   and per-request policy/budget/seed overrides;
//! * [`scheduler`] — the continuous-batching admission pipeline behind
//!   [`KelleEngine::serve`]: waiting queue, [`AdmissionPolicy`], arrival-tick
//!   release for trace replay, the shared
//!   [`CapacityLedger`](kelle_edram::CapacityLedger), the contention
//!   metrics of [`BatchOutcome`] and the [`SloReport`] graded against a
//!   configurable [`SloSpec`];
//! * [`parallel`] — the threaded serving back-end:
//!   [`ServeOptions::parallel`] fans per-session prefill/decode
//!   compute across [`EngineBuilder::workers`] worker threads with
//!   bit-identical token streams, fault statistics and batch metrics for
//!   every worker count;
//! * [`front`] — the non-blocking serving front-end:
//!   [`KelleEngine::front`] opens submit/poll sessions with per-request
//!   [`TokenStream`]s, typed admission backpressure
//!   ([`SubmitError::QueueFull`]), stream-level pause/resume, first-class
//!   cancel/deadline/drain, and a sticky-shard executor
//!   ([`StickyShardPool`]) that pins sessions to workers so only per-tick
//!   step results cross threads — bit-identical to the synchronous path;
//! * [`prefix`] — cross-session prefix KV sharing: publish a common system
//!   prompt once ([`KelleEngine::publish_prefix`]) and every session whose
//!   prompt starts with it replays the shared segment (bit-identical
//!   streams, prefill compute skipped, ledger bytes charged once);
//! * [`tier`] — the tiered KV memory hierarchy: eDRAM → DRAM → NVMe placement
//!   with watermark-credit eviction, driven by the scheduler as an accounting
//!   and migration-cost overlay
//!   ([`SchedulerConfig::with_tiering`](scheduler::SchedulerConfig::with_tiering))
//!   that leaves token streams bit-identical to an unlimited-eDRAM run;
//! * [`CachePolicy`] — the registry all cache backends are built from;
//! * [`accuracy`] — the functional-fidelity experiments behind Tables 2–6 and
//!   Fig. 8;
//! * [`experiment`] — the hardware experiments behind Figs. 3, 13–16 and
//!   Tables 7–9.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod chaos;
pub mod engine;
pub mod experiment;
pub mod faults;
pub mod front;
pub mod parallel;
pub mod prefix;
pub mod scheduler;
pub mod session;
pub mod tier;

pub use accuracy::{AccuracyResult, Method};
pub use chaos::{
    ChaosConfig, ChaosMetrics, ChaosPlan, Checkpoint, MigrationFaults, ServeError, ShedReason,
};
pub use engine::{
    EngineBuilder, EngineConfig, EngineStats, KelleEngine, ServeOptions, ServeOutcome,
};
pub use experiment::{EndToEndRow, EndToEndSummary};
pub use faults::fault_injector_for_policy;
pub use front::{ExecutorKind, FrontConfig, ServingFront, StreamPoll, SubmitError, TokenStream};
pub use kelle_cache::CachePolicy;
pub use parallel::{
    InlineExecutor, ParallelAxis, ParallelMetrics, PoolRunner, SessionTask, StepExecutor,
    StickyOutcome, StickyShardPool, StickyStep, TaskFailure, TaskOutput, TickResult, WorkerPool,
};
pub use prefix::{
    PrefixHit, PrefixKey, PrefixSharingConfig, PrefixStore, PrefixStoreStats, RadixPrefixIndex,
};
pub use scheduler::{
    AdmissionPolicy, BatchIncomplete, BatchOutcome, BatchReport, BatchScheduler, ContentionMetrics,
    LatencySummary, PrefixBatchMetrics, RequestTiming, SchedulerConfig, ServeEvent, SloReport,
    SloSpec, StepEvent,
};
pub use session::{ServeRequest, ServeRequestBuilder, Session, TurnOutcome};
pub use tier::{TierConfig, TierManager, TierUsageMetrics, TieringMetrics, WatermarkConfig};

pub use kelle_arch as arch;
pub use kelle_cache as cache;
pub use kelle_edram as edram;
pub use kelle_model as model;
pub use kelle_tensor as tensor;
pub use kelle_workloads as workloads;
