//! Tiered KV memory: eDRAM → DRAM → NVMe placement with watermark-credit
//! eviction.
//!
//! The paper's accelerator holds all live KV in a 4 MB banked eDRAM — scarce
//! enough that an edge fleet's total KV routinely exceeds it.  This module
//! turns the single-budget capacity model of [`crate::scheduler`] into a
//! three-tier **memory hierarchy**: KV state resides in on-chip eDRAM while
//! hot, is *demoted* to off-chip DRAM (and ultimately to a simulated NVMe
//! drive) as it cools, and is *promoted* back before its session decodes
//! again.
//!
//! # The accounting-overlay design
//!
//! Tiering is deliberately an **accounting and cost overlay**, not a data
//! mover: demotion and promotion move ledger residency between
//! [`TierAccounts`] tiers and charge migration latency/energy through the
//! `kelle-arch` hardware model
//! ([`MemorySubsystem::kv_migration_cost`]), while the functional KV state —
//! cache backends, fault RNGs, decode cursors — never moves.  Token streams,
//! probability bits and fault statistics under tiering are therefore
//! **bit-identical to an unlimited-eDRAM run by construction**, for every
//! cache policy and worker count; the integration suite asserts it anyway,
//! including forced mid-stream demote/promote round-trips.
//!
//! # Watermark-credit eviction
//!
//! Every resident item (a session's private KV lease, or a shared prefix
//! segment) earns a **credit**: predicted near-term utility per byte, where
//! utility decays exponentially with ticks since last touch
//! ([`WatermarkConfig::half_life_ticks`]).  Sessions are touched every
//! decode tick; segments are touched whenever a session attaches to them.
//! At the end of each scheduler tick the manager rebalances every bounded
//! tier, fastest first:
//!
//! 1. while the tier is over budget, demote the lowest-credit item to the
//!    next-slower tier;
//! 2. demote any further item whose credit sits below the tier's dynamic
//!    **watermark**;
//! 3. raise the watermark above the best credit evicted under pressure
//!    ([`WatermarkConfig::rise`]), or let it decay toward zero when the tier
//!    had room ([`WatermarkConfig::decay`]).
//!
//! The watermark is how the tier *learns* its admission bar: after a burst
//! of pressure, marginal items are demoted pre-emptively instead of
//! thrashing; in quiet periods the bar relaxes and the tier refills.  All
//! scoring is integer/f64 arithmetic over scheduler ticks — fully
//! deterministic, with item identity as the tie-break.
//!
//! # Scheduler protocol
//!
//! The [`BatchScheduler`](crate::BatchScheduler) drives the manager from the
//! coordinating thread only (workers never see it):
//!
//! * **admission** plans against the *eDRAM tier* budget (not the whole
//!   hierarchy), so the active set is sized to what the on-chip memory can
//!   actually hold;
//! * **promote-before-tick**: any active session demoted by an earlier
//!   rebalance is promoted back to eDRAM — with its migration cost charged —
//!   before its next decode step;
//! * **decode growth** lands in eDRAM (the session is resident there while
//!   decoding);
//! * **rebalance** runs after completions, so freed bytes are reflected
//!   before anything is demoted.
//!
//! Migration time and energy accumulate in [`TieringMetrics`] on the
//! [`BatchOutcome`](crate::BatchOutcome) — never in per-request hardware
//! reports or engine statistics, which keeps every existing equivalence
//! identity (batch stats = sum of sequential turns) intact.

use crate::chaos::MigrationFaults;
use kelle_arch::MemorySubsystem;
use kelle_edram::{MemoryTier, TierAccounts, TierBudgets};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Transfer attempts per migration before it is abandoned for the tick (the
/// item then stays on its source tier and the next rebalance or
/// promote-before-tick retries from scratch).
const MAX_MIGRATION_ATTEMPTS: u32 = 3;

/// Parameters of the watermark-credit eviction scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatermarkConfig {
    /// Relative margin the watermark rises above the best credit demoted
    /// under budget pressure (`0.1` = 10 % above it).
    pub rise: f64,
    /// Multiplicative decay applied to a tier's watermark every tick the
    /// tier rebalances without pressure (`0.5` halves it).
    pub decay: f64,
    /// Ticks for an untouched item's utility to halve.  Smaller values make
    /// idle items cold (and demoted) faster.
    pub half_life_ticks: f64,
}

impl Default for WatermarkConfig {
    fn default() -> Self {
        WatermarkConfig {
            rise: 0.1,
            decay: 0.5,
            half_life_ticks: 8.0,
        }
    }
}

/// Configuration of the tiered KV memory hierarchy.
///
/// Attach to a scheduler via
/// [`SchedulerConfig::with_tiering`](crate::SchedulerConfig::with_tiering).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Per-tier byte budgets (full-scale KV bytes, the ledger's unit).
    pub budgets: TierBudgets,
    /// Watermark-credit eviction parameters.
    pub watermark: WatermarkConfig,
}

impl TierConfig {
    /// A hierarchy bounded by `edram_bytes` on chip, with the default 16 GiB
    /// DRAM tier, an unbounded NVMe bottom tier and default watermark
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `edram_bytes` is zero.
    pub fn with_edram_budget(edram_bytes: u64) -> Self {
        TierConfig {
            budgets: TierBudgets::with_edram(edram_bytes),
            watermark: WatermarkConfig::default(),
        }
    }

    /// Overrides all tier budgets (builder style).
    pub fn with_budgets(mut self, budgets: TierBudgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Overrides the watermark parameters (builder style).
    pub fn with_watermark(mut self, watermark: WatermarkConfig) -> Self {
        self.watermark = watermark;
        self
    }
}

/// Residency and migration-traffic summary of one tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierUsageMetrics {
    /// Peak bytes ever resident in the tier, including transient
    /// within-tick residency (promote-before-tick can briefly exceed the
    /// budget; the rebalance settles it back down).
    pub peak_bytes: u64,
    /// Peak bytes resident *after* a rebalance — the settled occupancy the
    /// budget actually bounds (≤ budget for eDRAM and DRAM whenever
    /// demotion had somewhere to go).
    pub settled_peak_bytes: u64,
    /// Bytes migrated into the tier.
    pub in_bytes: u64,
    /// Bytes migrated out of the tier.
    pub out_bytes: u64,
}

/// Batch-level tiering metrics, reported on
/// [`BatchOutcome::tiering`](crate::BatchOutcome::tiering).
///
/// All-zero (the `Default`) when tiering is disabled.  Migration time and
/// energy live *only* here: per-request hardware reports and
/// [`EngineStats`](crate::EngineStats) are untouched by tiering, so every
/// pre-tiering equivalence identity still holds bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TieringMetrics {
    /// eDRAM tier usage.
    pub edram: TierUsageMetrics,
    /// DRAM tier usage.
    pub dram: TierUsageMetrics,
    /// NVMe tier usage.
    pub nvme: TierUsageMetrics,
    /// Demotions performed (moves toward slower tiers).
    pub demotions: u64,
    /// Promotions performed (moves toward faster tiers).
    pub promotions: u64,
    /// Total bytes migrated in either direction.
    pub migrated_bytes: u64,
    /// Modelled migration latency in seconds (sum over migrations; each
    /// migration overlaps its read and write interfaces).
    pub migration_time_s: f64,
    /// Modelled migration energy in joules (on-chip + DRAM/NVMe sides).
    pub migration_energy_j: f64,
    /// Transfer attempts that failed transiently and were retried (chaos
    /// injection only; each retry burns migration time/energy without
    /// moving bytes).  `#[serde(default)]` keeps pre-chaos serialized
    /// metrics loadable.
    #[serde(default)]
    pub migration_retries: u64,
    /// Migrations abandoned after exhausting their per-tick transfer
    /// attempts — the item stayed on its source tier for the tick.
    #[serde(default)]
    pub failed_migrations: u64,
}

impl TieringMetrics {
    /// Usage of one tier by enum (convenience for sweeps and tables).
    pub fn tier(&self, tier: MemoryTier) -> TierUsageMetrics {
        match tier {
            MemoryTier::Edram => self.edram,
            MemoryTier::Dram => self.dram,
            MemoryTier::Nvme => self.nvme,
        }
    }
}

/// Identity of a tiered item.  The `Ord` derive is the deterministic
/// tie-break for equal credits: sessions (by request index) before segments
/// (by ledger tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ItemKey {
    /// A session's private KV lease, keyed by request index.
    Session(usize),
    /// A shared prefix segment, keyed by its ledger shared-pool tag.
    Segment(u64),
}

/// Placement state of one tiered item.
#[derive(Debug, Clone, Copy)]
struct TierItem {
    bytes: u64,
    tier: MemoryTier,
    last_touch: u64,
}

fn tier_index(tier: MemoryTier) -> usize {
    match tier {
        MemoryTier::Edram => 0,
        MemoryTier::Dram => 1,
        MemoryTier::Nvme => 2,
    }
}

/// The coordinator-owned tier placement manager.
///
/// Owned by the [`BatchScheduler`](crate::BatchScheduler) when
/// [`SchedulerConfig::tiering`](crate::SchedulerConfig::tiering) is set; all
/// mutation happens on the coordinating thread, in the deterministic order
/// the tick protocol dictates, so parallel serving observes identical
/// metrics.  The public surface is read-only.
#[derive(Debug)]
pub struct TierManager {
    config: TierConfig,
    accounts: TierAccounts,
    items: BTreeMap<ItemKey, TierItem>,
    /// Per-tier dynamic watermarks (eDRAM, DRAM; NVMe never demotes).
    watermarks: [f64; 2],
    /// Post-rebalance residency peaks per tier.
    settled_peak: [u64; 3],
    migrated_bytes: u64,
    migration_time_s: f64,
    migration_energy_j: f64,
    migration_retries: u64,
    failed_migrations: u64,
}

impl TierManager {
    /// An empty manager over the configured hierarchy.
    pub(crate) fn new(config: TierConfig) -> Self {
        TierManager {
            config,
            accounts: TierAccounts::new(config.budgets),
            items: BTreeMap::new(),
            watermarks: [0.0; 2],
            settled_peak: [0; 3],
            migrated_bytes: 0,
            migration_time_s: 0.0,
            migration_energy_j: 0.0,
            migration_retries: 0,
            failed_migrations: 0,
        }
    }

    /// The tiering configuration.
    pub fn config(&self) -> &TierConfig {
        &self.config
    }

    /// The byte-level truth: per-tier residency, peaks and traffic.
    pub fn accounts(&self) -> &TierAccounts {
        &self.accounts
    }

    /// Whether `bytes` more fit the eDRAM tier's budget right now — the
    /// admission gate (admission plans against the on-chip tier only).
    pub fn edram_fits(&self, bytes: u64) -> bool {
        self.accounts.fits(MemoryTier::Edram, bytes)
    }

    /// The tier a session's KV currently resides in.
    pub fn session_tier(&self, index: usize) -> Option<MemoryTier> {
        self.items.get(&ItemKey::Session(index)).map(|i| i.tier)
    }

    /// The tier a shared segment currently resides in.
    pub fn segment_tier(&self, tag: u64) -> Option<MemoryTier> {
        self.items.get(&ItemKey::Segment(tag)).map(|i| i.tier)
    }

    /// The current metrics snapshot (final values are taken at
    /// [`BatchScheduler::finish`](crate::BatchScheduler::finish)).
    pub fn metrics(&self) -> TieringMetrics {
        let usage = |tier: MemoryTier| TierUsageMetrics {
            peak_bytes: self.accounts.peak_bytes(tier),
            settled_peak_bytes: self.settled_peak[tier_index(tier)],
            in_bytes: self.accounts.traffic(tier).in_bytes,
            out_bytes: self.accounts.traffic(tier).out_bytes,
        };
        TieringMetrics {
            edram: usage(MemoryTier::Edram),
            dram: usage(MemoryTier::Dram),
            nvme: usage(MemoryTier::Nvme),
            demotions: self.accounts.demotions(),
            promotions: self.accounts.promotions(),
            migrated_bytes: self.migrated_bytes,
            migration_time_s: self.migration_time_s,
            migration_energy_j: self.migration_energy_j,
            migration_retries: self.migration_retries,
            failed_migrations: self.failed_migrations,
        }
    }

    /// Places a newly admitted session's private lease in eDRAM.
    pub(crate) fn place_session(&mut self, index: usize, bytes: u64, tick: u64) {
        self.place(ItemKey::Session(index), bytes, tick);
    }

    /// Places a newly charged shared segment in eDRAM.
    pub(crate) fn place_segment(&mut self, tag: u64, bytes: u64, tick: u64) {
        self.place(ItemKey::Segment(tag), bytes, tick);
    }

    fn place(&mut self, key: ItemKey, bytes: u64, tick: u64) {
        debug_assert!(!self.items.contains_key(&key), "item placed twice");
        self.accounts.place(MemoryTier::Edram, bytes);
        self.items.insert(
            key,
            TierItem {
                bytes,
                tier: MemoryTier::Edram,
                last_touch: tick,
            },
        );
    }

    /// Marks a dedup attachment of an already-charged segment: the segment
    /// is being replayed into the attaching session, so it is touched and —
    /// if a rebalance demoted it — promoted back to eDRAM with its
    /// migration cost charged.
    pub(crate) fn touch_segment(
        &mut self,
        tag: u64,
        memory: &MemorySubsystem,
        tick: u64,
        faults: Option<&mut dyn MigrationFaults>,
    ) {
        self.promote(ItemKey::Segment(tag), memory, tick, faults);
    }

    /// Promote-before-tick: an active session decodes out of eDRAM, so a
    /// demoted session is migrated back up (cost charged) before its step.
    pub(crate) fn promote_session(
        &mut self,
        index: usize,
        memory: &MemorySubsystem,
        tick: u64,
        faults: Option<&mut dyn MigrationFaults>,
    ) {
        self.promote(ItemKey::Session(index), memory, tick, faults);
    }

    fn promote(
        &mut self,
        key: ItemKey,
        memory: &MemorySubsystem,
        tick: u64,
        faults: Option<&mut dyn MigrationFaults>,
    ) {
        let Some(item) = self.items.get_mut(&key) else {
            return;
        };
        item.last_touch = tick;
        let from = item.tier;
        if from == MemoryTier::Edram {
            return;
        }
        let bytes = item.bytes;
        if !self.migration_succeeds(memory, from, MemoryTier::Edram, bytes, faults) {
            // Graceful degradation: the item keeps serving from its source
            // tier this tick; the next touch retries the promotion.
            return;
        }
        self.items
            .get_mut(&key)
            .expect("promoted item resolves")
            .tier = MemoryTier::Edram;
        self.accounts.migrate(from, MemoryTier::Edram, bytes);
        self.charge_migration(memory, from, MemoryTier::Edram, bytes);
    }

    /// Accounts a session's decode-time KV growth (lands on the session's
    /// current tier — eDRAM, since sessions are promoted before decoding).
    pub(crate) fn note_growth(&mut self, index: usize, grown: u64, tick: u64) {
        let Some(item) = self.items.get_mut(&ItemKey::Session(index)) else {
            return;
        };
        item.last_touch = tick;
        if grown > 0 {
            item.bytes += grown;
            self.accounts.place(item.tier, grown);
        }
    }

    /// Releases a completed session's bytes from its current tier.
    pub(crate) fn remove_session(&mut self, index: usize) {
        self.remove(ItemKey::Session(index));
    }

    /// Releases a shared segment whose last session detached.
    pub(crate) fn remove_segment(&mut self, tag: u64) {
        self.remove(ItemKey::Segment(tag));
    }

    fn remove(&mut self, key: ItemKey) {
        if let Some(item) = self.items.remove(&key) {
            self.accounts.remove(item.tier, item.bytes);
        }
    }

    /// Predicted near-term utility per byte: recency-decayed value density.
    fn credit(&self, item: &TierItem, tick: u64) -> f64 {
        let age = tick.saturating_sub(item.last_touch) as f64;
        let utility = 0.5_f64.powf(age / self.config.watermark.half_life_ticks.max(1e-9));
        utility / item.bytes.max(1) as f64
    }

    /// End-of-tick rebalance: demote under budget pressure and below the
    /// watermark, cascade eDRAM → DRAM → NVMe, then update watermarks and
    /// settled peaks (see the [module docs](self) for the scheme).  A
    /// migration the fault injector kills (after its per-tick retries) is
    /// skipped — the item stays put and the next rebalance reconsiders it.
    pub(crate) fn rebalance(
        &mut self,
        tick: u64,
        memory: &MemorySubsystem,
        mut faults: Option<&mut dyn MigrationFaults>,
    ) {
        for tier in [MemoryTier::Edram, MemoryTier::Dram] {
            let target = tier.slower().expect("bounded tiers have a slower tier");
            let budget = self.config.budgets.budget(tier);
            let mut candidates: Vec<(f64, ItemKey, u64)> = self
                .items
                .iter()
                .filter(|(_, item)| item.tier == tier && item.bytes > 0)
                .map(|(key, item)| (self.credit(item, tick), *key, item.bytes))
                .collect();
            candidates.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("credits are finite")
                    .then(a.1.cmp(&b.1))
            });
            let wi = tier_index(tier);
            let mut pressure_credit: Option<f64> = None;
            for (credit, key, bytes) in candidates {
                let over_budget = self.accounts.resident_bytes(tier) > budget;
                let below_watermark = credit < self.watermarks[wi];
                if !over_budget && !below_watermark {
                    break;
                }
                let reborrowed: Option<&mut dyn MigrationFaults> = match faults.as_mut() {
                    Some(injector) => Some(&mut **injector),
                    None => None,
                };
                if !self.migration_succeeds(memory, tier, target, bytes, reborrowed) {
                    // The demotion's transfer failed transiently: skip this
                    // candidate (its bytes stay resident here) and keep
                    // scanning — a smaller or luckier item may still
                    // relieve the pressure.
                    continue;
                }
                if over_budget {
                    pressure_credit = Some(credit);
                }
                self.items
                    .get_mut(&key)
                    .expect("candidate key resolves")
                    .tier = target;
                self.accounts.migrate(tier, target, bytes);
                self.charge_migration(memory, tier, target, bytes);
            }
            self.watermarks[wi] = match pressure_credit {
                Some(credit) => credit * (1.0 + self.config.watermark.rise),
                None => self.watermarks[wi] * self.config.watermark.decay,
            };
        }
        for tier in MemoryTier::all() {
            let i = tier_index(tier);
            self.settled_peak[i] = self.settled_peak[i].max(self.accounts.resident_bytes(tier));
        }
    }

    /// Runs a migration's transfer attempts against the fault injector.
    /// Without an injector the transfer succeeds immediately and for free;
    /// every *failed* attempt burns the migration's full time and energy
    /// (the bytes crossed the interface and were thrown away) without
    /// moving residency.
    fn migration_succeeds(
        &mut self,
        memory: &MemorySubsystem,
        from: MemoryTier,
        to: MemoryTier,
        bytes: u64,
        faults: Option<&mut dyn MigrationFaults>,
    ) -> bool {
        let Some(faults) = faults else {
            return true;
        };
        for _ in 0..MAX_MIGRATION_ATTEMPTS {
            if !faults.migration_fails(from, to, bytes) {
                return true;
            }
            self.migration_retries += 1;
            self.charge_attempt(memory, from, to, bytes);
        }
        self.failed_migrations += 1;
        false
    }

    /// Charges one transfer's time and energy without moving any bytes.
    fn charge_attempt(
        &mut self,
        memory: &MemorySubsystem,
        from: MemoryTier,
        to: MemoryTier,
        bytes: u64,
    ) {
        let cost = memory.kv_migration_cost(from, to, bytes);
        self.migration_time_s += cost.time_s;
        self.migration_energy_j += cost.onchip_energy_j + cost.dram_energy_j;
    }

    fn charge_migration(
        &mut self,
        memory: &MemorySubsystem,
        from: MemoryTier,
        to: MemoryTier,
        bytes: u64,
    ) {
        self.migrated_bytes += bytes;
        self.charge_attempt(memory, from, to, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> MemorySubsystem {
        MemorySubsystem::kelle_default()
    }

    fn manager(edram: u64) -> TierManager {
        TierManager::new(TierConfig::with_edram_budget(edram))
    }

    #[test]
    fn admission_gate_tracks_edram_budget() {
        let mut tiers = manager(100);
        assert!(tiers.edram_fits(100));
        tiers.place_session(0, 60, 0);
        assert!(tiers.edram_fits(40));
        assert!(!tiers.edram_fits(41));
        tiers.remove_session(0);
        assert!(tiers.edram_fits(100));
    }

    #[test]
    fn over_budget_session_is_demoted_then_promoted_back() {
        let mem = memory();
        let mut tiers = manager(100);
        tiers.place_session(0, 150, 0);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Edram));

        tiers.rebalance(1, &mem, None);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Dram));
        assert_eq!(tiers.accounts().resident_bytes(MemoryTier::Edram), 0);

        tiers.promote_session(0, &mem, 2, None);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Edram));
        let metrics = tiers.metrics();
        assert_eq!(metrics.demotions, 1);
        assert_eq!(metrics.promotions, 1);
        assert_eq!(metrics.migrated_bytes, 300);
        assert!(metrics.migration_time_s > 0.0);
        assert!(metrics.migration_energy_j > 0.0);
        // The round trip shows on both tiers' traffic.
        assert_eq!(metrics.edram.out_bytes, 150);
        assert_eq!(metrics.edram.in_bytes, 150);
        assert_eq!(metrics.dram.in_bytes, 150);
        assert_eq!(metrics.dram.out_bytes, 150);
    }

    #[test]
    fn lowest_credit_items_are_demoted_first() {
        let mem = memory();
        let mut tiers = manager(100);
        // Session 0 is old and large (lowest credit); session 1 fresh and
        // small.
        tiers.place_session(0, 80, 0);
        tiers.place_session(1, 40, 10);
        tiers.rebalance(10, &mem, None);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Dram));
        assert_eq!(tiers.session_tier(1), Some(MemoryTier::Edram));
        assert!(tiers.accounts().resident_bytes(MemoryTier::Edram) <= 100);
    }

    #[test]
    fn demotion_cascades_through_dram_to_nvme() {
        let mem = memory();
        let mut tiers = TierManager::new(
            TierConfig::with_edram_budget(100)
                .with_budgets(TierBudgets::with_edram(100).with_dram(50)),
        );
        // Too big for eDRAM *and* DRAM: one rebalance pushes it down one
        // level per bounded tier — eDRAM demotes to DRAM, DRAM's own pass
        // then demotes to NVMe.
        tiers.place_session(0, 200, 0);
        tiers.rebalance(1, &mem, None);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Nvme));
        assert_eq!(tiers.metrics().demotions, 2);
        assert_eq!(tiers.metrics().nvme.in_bytes, 200);
    }

    #[test]
    fn watermark_rises_under_pressure_and_decays_when_idle() {
        let mem = memory();
        let mut tiers = manager(100);
        tiers.place_session(0, 150, 0);
        tiers.rebalance(1, &mem, None); // pressure: watermark rises above 1/150
        let metrics_after_pressure = tiers.metrics();
        assert_eq!(metrics_after_pressure.demotions, 1);
        // A fresh small session now sits above the watermark and survives,
        // and the empty-tier rebalance decays the watermark back down.
        tiers.place_session(1, 10, 2);
        tiers.rebalance(2, &mem, None);
        assert_eq!(tiers.session_tier(1), Some(MemoryTier::Edram));
        for _ in 3..10 {
            tiers.rebalance(3, &mem, None);
        }
        assert_eq!(
            tiers.metrics().demotions,
            metrics_after_pressure.demotions,
            "no further demotions once the watermark decays"
        );
    }

    #[test]
    fn growth_lands_on_the_current_tier_and_touch_promotes_segments() {
        let mem = memory();
        let mut tiers = manager(1000);
        tiers.place_segment(7, 100, 0);
        tiers.note_growth(3, 10, 0); // unknown session: ignored
        tiers.place_session(3, 50, 0);
        tiers.note_growth(3, 10, 1);
        assert_eq!(tiers.accounts().resident_bytes(MemoryTier::Edram), 160);

        // Force the segment down, then a dedup attach touches it back up.
        let mut small = manager(10);
        small.place_segment(7, 100, 0);
        small.rebalance(1, &mem, None);
        assert_eq!(small.segment_tier(7), Some(MemoryTier::Dram));
        small.touch_segment(7, &mem, 2, None);
        assert_eq!(small.segment_tier(7), Some(MemoryTier::Edram));
        assert_eq!(small.metrics().promotions, 1);
        small.remove_segment(7);
        assert_eq!(small.accounts().total_resident_bytes(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Random fleets, budgets and rebalance schedules: bytes are
        /// conserved, bounded tiers never settle over budget, and promoting
        /// everything back restores the all-eDRAM residency exactly.
        #[test]
        fn accounting_is_conserved_and_round_trips_restore_residency(
            edram in 1u64..500,
            sizes in proptest::collection::vec(1u64..200, 1..8),
            ticks in 1u64..12,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let mem = memory();
            let mut tiers = manager(edram);
            let total: u64 = sizes.iter().sum();
            for (i, &bytes) in sizes.iter().enumerate() {
                tiers.place_session(i, bytes, 0);
            }
            for tick in 1..=ticks {
                tiers.rebalance(tick, &mem, None);
                prop_assert!(tiers.accounts().resident_bytes(MemoryTier::Edram) <= edram);
                prop_assert!(
                    tiers.accounts().resident_bytes(MemoryTier::Dram)
                        <= tiers.config().budgets.budget(MemoryTier::Dram)
                );
                prop_assert_eq!(tiers.accounts().total_resident_bytes(), total);
            }
            // Demote→promote round trips restore the placement exactly.
            for i in 0..sizes.len() {
                tiers.promote_session(i, &mem, ticks + 1, None);
            }
            prop_assert_eq!(tiers.accounts().resident_bytes(MemoryTier::Edram), total);
            prop_assert_eq!(tiers.accounts().resident_bytes(MemoryTier::Dram), 0);
            prop_assert_eq!(tiers.accounts().resident_bytes(MemoryTier::Nvme), 0);
            // Migration traffic is conserved: bytes out of one tier landed
            // in another, and the total is what the metrics report.
            let metrics = tiers.metrics();
            let out_total = metrics.edram.out_bytes + metrics.dram.out_bytes + metrics.nvme.out_bytes;
            let in_total = metrics.edram.in_bytes + metrics.dram.in_bytes + metrics.nvme.in_bytes;
            prop_assert_eq!(out_total, in_total);
            prop_assert_eq!(metrics.migrated_bytes, out_total);
        }
    }

    /// Fails the first `failures` transfer draws, then succeeds forever.
    struct FlakyTransfers {
        failures: u32,
        draws: u32,
    }

    impl MigrationFaults for FlakyTransfers {
        fn migration_fails(&mut self, _: MemoryTier, _: MemoryTier, _: u64) -> bool {
            self.draws += 1;
            self.draws <= self.failures
        }
    }

    #[test]
    fn transient_migration_faults_retry_and_charge_without_moving_bytes() {
        let mem = memory();
        let mut tiers = manager(100);
        tiers.place_session(0, 150, 0);
        // Two transient failures: the demotion still lands on the third
        // attempt, with the two wasted transfers charged on top.
        let mut flaky = FlakyTransfers {
            failures: 2,
            draws: 0,
        };
        tiers.rebalance(1, &mem, Some(&mut flaky));
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Dram));
        let metrics = tiers.metrics();
        assert_eq!(metrics.migration_retries, 2);
        assert_eq!(metrics.failed_migrations, 0);
        assert_eq!(metrics.migrated_bytes, 150, "only the success moved bytes");
        let clean_cost = {
            let mut clean = manager(100);
            clean.place_session(0, 150, 0);
            clean.rebalance(1, &mem, None);
            clean.metrics().migration_time_s
        };
        assert!(
            metrics.migration_time_s > clean_cost * 2.9,
            "three transfers were paid for one migration"
        );
    }

    #[test]
    fn exhausted_migration_attempts_degrade_to_the_source_tier() {
        let mem = memory();
        let mut tiers = manager(100);
        tiers.place_session(0, 150, 0);
        let mut dead = FlakyTransfers {
            failures: u32::MAX,
            draws: 0,
        };
        tiers.rebalance(1, &mem, Some(&mut dead));
        // The demotion was abandoned: the session stays (over budget) in
        // eDRAM and the accounts still conserve bytes.
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Edram));
        assert_eq!(tiers.accounts().total_resident_bytes(), 150);
        let metrics = tiers.metrics();
        assert_eq!(metrics.failed_migrations, 1);
        assert_eq!(metrics.migration_retries, MAX_MIGRATION_ATTEMPTS as u64);
        assert_eq!(metrics.migrated_bytes, 0);
        assert_eq!(metrics.demotions, 0);

        // A later fault-free rebalance recovers and demotes normally.
        tiers.rebalance(2, &mem, None);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Dram));
        assert_eq!(tiers.accounts().total_resident_bytes(), 150);
    }

    #[test]
    fn failed_promotion_leaves_the_session_serving_from_dram() {
        let mem = memory();
        let mut tiers = manager(100);
        tiers.place_session(0, 150, 0);
        tiers.rebalance(1, &mem, None);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Dram));
        let mut dead = FlakyTransfers {
            failures: u32::MAX,
            draws: 0,
        };
        tiers.promote_session(0, &mem, 2, Some(&mut dead));
        assert_eq!(
            tiers.session_tier(0),
            Some(MemoryTier::Dram),
            "failed promotion degrades gracefully"
        );
        assert_eq!(tiers.metrics().failed_migrations, 1);
        // The next (healthy) promote-before-tick recovers.
        tiers.promote_session(0, &mem, 3, None);
        assert_eq!(tiers.session_tier(0), Some(MemoryTier::Edram));
    }

    #[test]
    fn settled_peak_respects_budget_when_demotion_has_room() {
        let mem = memory();
        let mut tiers = manager(100);
        for i in 0..5 {
            tiers.place_session(i, 60, i as u64);
        }
        for tick in 1..6 {
            tiers.rebalance(tick, &mem, None);
        }
        let metrics = tiers.metrics();
        assert!(metrics.edram.settled_peak_bytes <= 100);
        assert!(metrics.edram.peak_bytes >= metrics.edram.settled_peak_bytes);
    }
}
