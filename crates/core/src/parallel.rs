//! Threaded serving front-end: deterministic multi-worker decode over the
//! batch scheduler.
//!
//! Kelle's edge-serving story assumes the accelerator pipeline is kept busy
//! by many concurrent sessions.  On the functional side that means the
//! per-session prefill/decode compute of a served batch — by far the
//! dominant cost — should spread across host cores, *without* the
//! nondeterminism that usually comes with threading.  This module is that
//! front-end: a work-stealing worker pool plus the task protocol the
//! [`BatchScheduler`] fans compute out through.
//!
//! # Threading model
//!
//! **Sharded per worker (moves):** whole [`Session`]s — the KV-cache backend
//! over its arenas, the fault-RNG stream, the generation cursor.  Sessions
//! are `Send` and mutually independent: a decode step touches only its own
//! session plus shared *read-only* state (the model weights through
//! `&KelleEngine`, and published prefix segments through their
//! `Arc<ArenaGrid>` bases — reads need no lock).  A session is owned by
//! exactly one task at a time, so workers never contend on session state.
//!
//! **Coordinator-owned (never crosses threads):** the admission pipeline,
//! the waiting queue, the [`CapacityLedger`](kelle_edram::CapacityLedger),
//! the prefix store's index and statistics, request timings and the engine's
//! lifetime statistics.  All mutations of shared serving state happen on the
//! coordinating thread, batched into a **per-tick commit** in request
//! submission order.
//!
//! **Intra-session (fork-join):** the second axis.  Under
//! [`ParallelAxis::Intra`] (or `Auto` on a narrow batch) sessions stay on
//! the coordinator and each decode step forks its per-head attention jobs
//! and row-blocked projection jobs across the *same* workers through
//! [`PoolRunner`].  Per-head fault-RNG draws come from deterministic
//! `(layer, head)` lanes (see [`kelle_model::fault::FaultInjector`]), so
//! fork order can never reorder a shared random stream; cache observation
//! callbacks are replayed serially in head order after the fork joins.
//! Both axes therefore produce **bit-identical** tokens, probability bits
//! and fault statistics — pinned by the `integration_intra` suite for all
//! five cache policies and re-checked in CI at `--workers 1,2,4`.
//!
//! # Sticky shards
//!
//! The work-stealing [`WorkerPool`] moves **whole sessions** through the
//! shared queue twice per tick (fan-out and result).  For long-lived,
//! mostly-idle fleets — the `kelle::front` shape — that per-tick traffic is
//! pure overhead: the session's KV backend never needed to leave its
//! worker.  The [`StickyShardPool`] fixes the shape: each session is
//! **pinned to a shard** (`index % workers`) and parked *on* its worker
//! between ticks; per tick only a [`StickyStep`] — the decoded step, two
//! cursors and the shard id, no session — crosses back to the coordinator.
//! Commit stays on the coordinator, sorted by request index, so streams
//! remain bit-identical to the stealing pool and to sequential serving
//! ([`ParallelMetrics::queue_crossings`] on the [`BatchOutcome`] is what
//! turns the saved traffic into a measured number).  Sessions never migrate
//! between shards, so a pinned fleet reports `sessions_migrated == 0`.
//!
//! # Why determinism holds
//!
//! Each scheduler tick is a fan-out/commit cycle
//! ([`BatchScheduler::step_with`]):
//!
//! 1. every active session moves into a [`SessionTask`]; workers steal tasks
//!    from a shared injector queue and run them in whatever order the OS
//!    schedules — which is fine, because task results are a pure function of
//!    the session they own;
//! 2. the coordinator collects all outputs, sorts them by request index, and
//!    commits the tick — token/trace bookkeeping, one batched ledger commit
//!    ([`commit_growth`](kelle_edram::CapacityLedger::commit_growth)),
//!    completions (hardware simulation + engine statistics, still in index
//!    order, so even f64 accumulation order is preserved) and admission
//!    back-fill — exactly as single-threaded serving would.
//!
//! Admission prefills follow the same split ([`BatchScheduler`]'s admission
//! pump): candidate selection, ledger reservations and the prefix-store
//! *plan* run on the coordinator in admission order; only the planned
//! compute fans out.  A plan that will publish a prefix boundary
//! (auto-publish) is flushed before the next admission is planned, so store
//! visibility matches the sequential order too.
//!
//! The result: token streams, probability bits, fault statistics and every
//! [`BatchOutcome`] metric are **bit-identical to single-threaded serving
//! for every worker count** — pinned by the `integration_parallel` suite
//! (all five cache policies, prefix hits, contention-limited admission) and
//! re-checked in CI at `--workers 1,2,4` by the determinism gate.
//! Throughput scaling lives in `BENCH_serving.json` (emitted by the
//! `bench_serving` binary: aggregate decode tokens/s vs worker count on the
//! 8-session shared-prompt fleet).
//!
//! # Entry points
//!
//! Most callers want [`KelleEngine::serve`] with [`ServeOptions::parallel`]
//! plus [`EngineBuilder::workers`]; driving a [`BatchScheduler`] manually
//! with a [`WorkerPool`] — as [`serve_batch_parallel`] does — is the
//! low-level interface benchmarks use to time individual phases.
//!
//! [`ServeOptions::parallel`]: crate::engine::ServeOptions::parallel
//! [`EngineBuilder::workers`]: crate::engine::EngineBuilder::workers

use crate::chaos::ServeError;
use crate::engine::KelleEngine;
use crate::scheduler::{BatchOutcome, BatchScheduler, SchedulerConfig};
use crate::session::{PrefillPlan, ServeRequest, Session};
use kelle_model::DecodeStep;
use kelle_tensor::par::{Job, ParallelRunner};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Scope;

/// Which axis of parallelism a scheduler tick fans decode compute out on
/// (the [`SchedulerConfig::with_parallel_axis`] knob).
///
/// Both axes produce **bit-identical** token streams, probability bits and
/// fault statistics — the axis changes wall-clock time only.  Session
/// parallelism wins when the batch is wide (many independent sessions keep
/// every worker busy); intra-session parallelism wins when the batch is
/// narrow (a single session cannot saturate the pool, so its per-head
/// attention and row-blocked projections are fanned out instead).
///
/// [`SchedulerConfig::with_parallel_axis`]: crate::scheduler::SchedulerConfig::with_parallel_axis
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ParallelAxis {
    /// One task per session; whole sessions move to workers (the classic
    /// batch axis).
    Session,
    /// Sessions decode one at a time on the coordinator; each decode step's
    /// per-head attention and projection row blocks fan out to the workers
    /// through a [`PoolRunner`].
    Intra,
    /// Pick per tick: intra-session when the batch is too narrow to keep
    /// the pool busy (one task, or fewer than half a task per worker),
    /// session-parallel otherwise.
    #[default]
    Auto,
}

/// Cross-thread traffic counters for one batch, reported on
/// [`BatchOutcome::parallel`](crate::scheduler::BatchOutcome::parallel).
///
/// These measure the *executor protocol*, not the streams: every execution
/// mode produces bit-identical tokens, and this struct is how the
/// sticky-shard win over work stealing becomes a number instead of a claim
/// (`bench_front` → `BENCH_front.json`).  Inline and intra-axis execution
/// move nothing across threads, so they count zero crossings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelMetrics {
    /// Whole-session cross-thread transfers: +2 per decode output and +2
    /// per admission prefill on the work-stealing pool (fan-out plus
    /// result), +1 per park and +1 per recall on the sticky pool.  Step
    /// results crossing back from a sticky shard move no session and count
    /// zero.
    pub queue_crossings: u64,
    /// Ticks on which a session's step ran on a *different* worker than its
    /// previous step — always zero for pinned (sticky) execution, typically
    /// nonzero under work stealing.
    pub sessions_migrated: u64,
    /// Scheduler ticks the batch ran for (the denominator of
    /// crossings-per-tick).
    pub ticks: u64,
}

impl ParallelMetrics {
    /// Queue crossings per scheduler tick (0 when the batch never ticked).
    pub fn crossings_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.queue_crossings as f64 / self.ticks as f64
        }
    }
}

/// One unit of per-session compute: a session together with the prefill or
/// decode step to run on it.
///
/// Tasks are created by the [`BatchScheduler`]'s fan-out phases and consumed
/// by a [`StepExecutor`]; an executor's only obligation is to call
/// [`run`](SessionTask::run) on every task exactly once (on any thread — the
/// task owns everything it needs) and hand all outputs back.
#[derive(Debug)]
pub struct SessionTask<'e> {
    index: usize,
    session: Session<'e>,
    work: Work,
    /// Chaos-plan sabotage: when set, the task panics *after* its step
    /// computes, so the mutated session is genuinely lost mid-tick (the
    /// strongest case for checkpoint/replay recovery).
    sabotage: bool,
}

#[derive(Debug)]
enum Work {
    /// One decode step ([`Session::decode_one`]).
    Decode,
    /// A planned prefill of the request's prompt (the plan was resolved on
    /// the coordinator; `Cold`/`Hit` executions touch no shared state).
    Prefill {
        tokens: Vec<usize>,
        plan: PrefillPlan,
    },
}

impl<'e> SessionTask<'e> {
    /// A decode-step task for request `index`.
    pub(crate) fn decode(index: usize, session: Session<'e>) -> Self {
        SessionTask {
            index,
            session,
            work: Work::Decode,
            sabotage: false,
        }
    }

    /// A planned-prefill task for request `index`.
    pub(crate) fn prefill(
        index: usize,
        session: Session<'e>,
        tokens: Vec<usize>,
        plan: PrefillPlan,
    ) -> Self {
        SessionTask {
            index,
            session,
            work: Work::Prefill { tokens, plan },
            sabotage: false,
        }
    }

    /// Arms the chaos sabotage: the task will panic after computing its step.
    pub(crate) fn arm_sabotage(&mut self) {
        self.sabotage = true;
    }

    /// The request index (submission order) this task belongs to.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Executes the task, consuming it and returning the session inside the
    /// output.
    pub fn run(self) -> TaskOutput<'e> {
        let SessionTask {
            index,
            mut session,
            work,
            sabotage,
        } = self;
        let payload = match work {
            Work::Decode => {
                let tokens_before = session.position();
                let step = session.decode_one();
                Payload::Decode {
                    step,
                    tokens_before,
                }
            }
            Work::Prefill { tokens, plan } => Payload::Prefill {
                computed: session.prefill_planned(&tokens, plan),
            },
        };
        if sabotage {
            panic!("chaos: injected worker panic (request {index})");
        }
        TaskOutput {
            index,
            session,
            payload,
            worker: None,
        }
    }

    /// [`run`](SessionTask::run) with decode compute fanned out through
    /// `runner` — the intra-session axis.  Prefill tasks ignore the runner
    /// (a prefill is a one-off cost the session axis already covers);
    /// decode output is bit-identical to [`run`](SessionTask::run) by the
    /// [`ParallelRunner`] partitioning contract.
    pub fn run_with(self, runner: &dyn ParallelRunner) -> TaskOutput<'e> {
        let SessionTask {
            index,
            mut session,
            work,
            sabotage,
        } = self;
        let payload = match work {
            Work::Decode => {
                let tokens_before = session.position();
                let step = session.decode_one_with(runner);
                Payload::Decode {
                    step,
                    tokens_before,
                }
            }
            Work::Prefill { tokens, plan } => Payload::Prefill {
                computed: session.prefill_planned(&tokens, plan),
            },
        };
        if sabotage {
            panic!("chaos: injected worker panic (request {index})");
        }
        TaskOutput {
            index,
            session,
            payload,
            worker: None,
        }
    }
}

/// The result of running one [`SessionTask`]: the session comes back to the
/// coordinator together with what the step produced.
#[derive(Debug)]
pub struct TaskOutput<'e> {
    index: usize,
    session: Session<'e>,
    payload: Payload,
    /// Worker thread that ran the task (`None` when it ran inline on the
    /// coordinator) — feeds [`ParallelMetrics::sessions_migrated`].
    worker: Option<usize>,
}

#[derive(Debug)]
enum Payload {
    Decode {
        step: DecodeStep,
        /// Session position before the step (for the lease-growth delta).
        tokens_before: usize,
    },
    Prefill {
        /// Prompt tokens whose prefill was actually computed.
        computed: usize,
    },
}

impl<'e> TaskOutput<'e> {
    /// The request index this output belongs to (the scheduler sorts outputs
    /// by it before committing a tick).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The worker thread that ran the task, or `None` when it ran inline on
    /// the coordinator (the [`InlineExecutor`] and the intra axis).
    pub fn worker(&self) -> Option<usize> {
        self.worker
    }

    pub(crate) fn into_decode(self) -> (usize, Session<'e>, DecodeStep, usize) {
        match self.payload {
            Payload::Decode {
                step,
                tokens_before,
            } => (self.index, self.session, step, tokens_before),
            Payload::Prefill { .. } => unreachable!("decode fan-out produced a prefill output"),
        }
    }

    pub(crate) fn into_prefill(self) -> (usize, Session<'e>, usize) {
        match self.payload {
            Payload::Prefill { computed } => (self.index, self.session, computed),
            Payload::Decode { .. } => unreachable!("admission fan-out produced a decode output"),
        }
    }
}

/// A task whose execution panicked: the session it owned is lost, but the
/// tick survives — surviving outputs still commit and the scheduler can
/// replay the lost step from checkpoint.
#[derive(Debug, Clone)]
pub struct TaskFailure {
    index: usize,
    message: String,
}

impl TaskFailure {
    /// The request index whose task failed.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The stringified panic payload.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// The partitioned result of one fallible fan-out: the outputs of every task
/// that completed plus a [`TaskFailure`] for every task that panicked.
#[derive(Debug)]
pub struct TickResult<'e> {
    /// Outputs of the tasks that completed (any order).
    pub outputs: Vec<TaskOutput<'e>>,
    /// One entry per task whose execution panicked.
    pub failures: Vec<TaskFailure>,
}

impl<'e> TickResult<'e> {
    /// Unwraps into the outputs, resurfacing the first failure as a panic —
    /// the legacy infallible behaviour.  The full batch has already been
    /// drained, so a caller that catches the panic keeps a reusable
    /// executor.
    pub fn into_outputs(self) -> Vec<TaskOutput<'e>> {
        if let Some(failure) = self.failures.into_iter().next() {
            std::panic::resume_unwind(Box::new(failure.message));
        }
        self.outputs
    }
}

/// Stringifies a caught panic payload (panics raise `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = cause.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = cause.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `tasks` through `run` one at a time, catching each panic into a
/// [`TaskFailure`] so one crashed task cannot take the rest of the batch
/// down with it.
fn run_tasks_caught<'e>(
    tasks: Vec<SessionTask<'e>>,
    mut run: impl FnMut(SessionTask<'e>) -> TaskOutput<'e>,
) -> TickResult<'e> {
    let mut result = TickResult {
        outputs: Vec::with_capacity(tasks.len()),
        failures: Vec::new(),
    };
    for task in tasks {
        let index = task.index();
        match std::panic::catch_unwind(AssertUnwindSafe(|| run(task))) {
            Ok(output) => result.outputs.push(output),
            Err(cause) => result.failures.push(TaskFailure {
                index,
                message: panic_message(cause.as_ref()),
            }),
        }
    }
    result
}

/// One decode step of a shard-resident session: everything the coordinator
/// needs to commit the tick, and nothing else — crucially, **not** the
/// session, which stays parked on its worker.
///
/// This is the sticky-shard protocol's whole point: a [`StickyStep`] is a
/// few dozen bytes where a [`TaskOutput`] round-trips the entire session
/// (KV backend, fault RNG, cursors) through the queue.
#[derive(Debug, Clone)]
pub struct StickyStep {
    /// The request index (submission order) the step belongs to.
    pub index: usize,
    /// The decoded step (token, probability bits, fault draws).
    pub step: DecodeStep,
    /// Session position before the step (for the lease-growth delta).
    pub tokens_before: usize,
    /// Session position after the step (the coordinator's cursor mirror —
    /// it can no longer ask the session directly).
    pub position: usize,
    /// The shard that ran the step (always `index % workers` for a pinned
    /// session; feeds [`ParallelMetrics::sessions_migrated`]).
    pub worker: usize,
}

/// The partitioned result of one sticky fan-out
/// ([`StepExecutor::step_parked`]): a [`StickyStep`] per surviving session
/// plus a [`TaskFailure`] per session whose step panicked (the panicking
/// session is dropped on its worker — exactly the loss semantics of a
/// crashed stealing-pool task).
#[derive(Debug)]
pub struct StickyOutcome {
    /// Steps of the sessions that survived (any order).
    pub steps: Vec<StickyStep>,
    /// One entry per session whose step panicked.
    pub failures: Vec<TaskFailure>,
}

/// Executes batches of [`SessionTask`]s for the [`BatchScheduler`].
///
/// The contract is deliberately loose — outputs may come back in any order,
/// tasks may run on any thread — because the scheduler re-establishes
/// determinism at commit time by sorting outputs on request index.  The
/// stock executors are [`InlineExecutor`] (sequential, the default behind
/// [`BatchScheduler::step`]), the work-stealing [`WorkerPool`] and the
/// pinned [`StickyShardPool`].
///
/// The `try_*` pair is the fallible surface the chaos-hardened scheduler
/// drives: a task panic becomes a [`TaskFailure`] in the returned
/// [`TickResult`] instead of unwinding the coordinator, so surviving
/// sessions commit and the lost step can replay from checkpoint.
///
/// # The sticky surface
///
/// Executors that can hold sessions resident between ticks return `true`
/// from [`is_sticky`](StepExecutor::is_sticky) and implement
/// [`park`](StepExecutor::park) /
/// [`step_parked`](StepExecutor::step_parked) /
/// [`recall`](StepExecutor::recall); the scheduler then keeps each active
/// session parked on the executor and commits from [`StickyStep`]s instead
/// of round-tripping whole sessions.  The defaults make every pre-existing
/// executor trivially correct: not sticky, nothing ever parked, `recall`
/// finds nothing.
pub trait StepExecutor<'e> {
    /// Runs every task exactly once and returns all outputs (any order).
    fn execute(&mut self, tasks: Vec<SessionTask<'e>>) -> Vec<TaskOutput<'e>>;

    /// [`execute`](StepExecutor::execute) with an axis hint (see
    /// [`ParallelAxis`]).  Executors without a second axis — like
    /// [`InlineExecutor`] — ignore the hint; this default delegates to
    /// `execute`.  Outputs must be bit-identical for every axis.
    fn execute_axis(
        &mut self,
        tasks: Vec<SessionTask<'e>>,
        axis: ParallelAxis,
    ) -> Vec<TaskOutput<'e>> {
        let _ = axis;
        self.execute(tasks)
    }

    /// Fallible [`execute`](StepExecutor::execute): partitions the batch
    /// into completed outputs and per-task failures.  This default delegates
    /// to `execute` (which panics on failure); the stock executors override
    /// it to catch task panics instead.
    fn try_execute(&mut self, tasks: Vec<SessionTask<'e>>) -> TickResult<'e> {
        TickResult {
            outputs: self.execute(tasks),
            failures: Vec::new(),
        }
    }

    /// Fallible [`execute_axis`](StepExecutor::execute_axis).
    fn try_execute_axis(
        &mut self,
        tasks: Vec<SessionTask<'e>>,
        axis: ParallelAxis,
    ) -> TickResult<'e> {
        let _ = axis;
        self.try_execute(tasks)
    }

    /// Whether this executor holds sessions resident between ticks (see the
    /// trait-level *sticky surface* section).  Defaults to `false`.
    fn is_sticky(&self) -> bool {
        false
    }

    /// Parks `session` on its shard, where it stays resident until
    /// [`recall`](StepExecutor::recall)ed.  The scheduler only calls this on
    /// executors whose [`is_sticky`](StepExecutor::is_sticky) is `true`.
    fn park(&mut self, index: usize, session: Session<'e>) {
        let _ = index;
        drop(session);
        panic!("park requires a sticky executor");
    }

    /// Runs one decode step on every parked session in `indices`, returning
    /// the steps without moving any session.  Sticky executors only.
    fn step_parked(&mut self, indices: &[usize]) -> StickyOutcome {
        let _ = indices;
        panic!("step_parked requires a sticky executor");
    }

    /// Takes the parked session for `index` back from its shard (completion,
    /// shed, cancellation).  Non-sticky executors never hold a session, so
    /// the default returns `None`.
    fn recall(&mut self, index: usize) -> Option<Session<'e>> {
        let _ = index;
        None
    }
}

/// Runs every task inline on the calling thread, in order — the executor
/// behind the classic single-threaded [`BatchScheduler::step`] /
/// [`BatchScheduler::submit`](crate::scheduler::BatchScheduler::submit).
#[derive(Debug, Default, Clone, Copy)]
pub struct InlineExecutor;

impl<'e> StepExecutor<'e> for InlineExecutor {
    fn execute(&mut self, tasks: Vec<SessionTask<'e>>) -> Vec<TaskOutput<'e>> {
        tasks.into_iter().map(SessionTask::run).collect()
    }

    fn try_execute(&mut self, tasks: Vec<SessionTask<'e>>) -> TickResult<'e> {
        run_tasks_caught(tasks, SessionTask::run)
    }
}

/// What the injector queue carries: whole session steps (the session axis)
/// or per-head/row-block jobs of a single decode step (the intra axis).
/// One tick fans out on exactly one axis, so the two variants never
/// interleave within a fan-out — a worker running a `Job` can never be
/// holding a `Task` the same fork's latch is waiting on.
//
// A `Task` is ~900 bytes (the session's planned work rides inline) versus a
// `Job`'s two pointers, but boxing tasks would trade two moves per task per
// tick for an allocation per task per tick on the session axis — the wrong
// trade for a queue that holds at most one tick's small task fan-out.
#[allow(clippy::large_enum_variant)]
enum WorkItem<'e> {
    Task(SessionTask<'e>),
    Job(HeapJob),
}

impl std::fmt::Debug for WorkItem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkItem::Task(task) => f.debug_tuple("Task").field(&task.index()).finish(),
            WorkItem::Job(_) => f.debug_tuple("Job").finish(),
        }
    }
}

/// One forked job of a [`PoolRunner::run`] call, heap-boxed for the queue.
///
/// The closure is transmuted to `'static` so it can sit in the `'e`-typed
/// queue; this is sound because the runner blocks on `latch` until every
/// forked job has run — the borrows inside the closure strictly outlive its
/// execution (the classic scoped-spawn argument).
struct HeapJob {
    job: Job<'static>,
    latch: Arc<Latch>,
}

impl HeapJob {
    /// Runs the job, folding any panic into the latch instead of unwinding
    /// the worker.
    fn run(self) {
        let HeapJob { job, latch } = self;
        let result = std::panic::catch_unwind(AssertUnwindSafe(job));
        latch.complete(result.err());
    }
}

/// Countdown latch synchronising a [`PoolRunner::run`] fork with its join.
struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            panic: Mutex::new(None),
        }
    }

    /// Records one finished job (and its panic payload, if it crashed).
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(cause) = panic {
            let mut slot = self.panic.lock().expect("latch panic slot poisoned");
            slot.get_or_insert(cause);
        }
        self.remaining.fetch_sub(1, Ordering::Release);
    }

    /// Spin-waits (yielding) until every forked job completed.  Jobs are a
    /// few microseconds of dense math each, so parking through a condvar
    /// would usually cost more than the remaining work.
    fn wait(&self) {
        while self.remaining.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// The first panic any forked job raised, if any.
    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("latch panic slot poisoned").take()
    }
}

/// The shared injector queue workers steal tasks from.
#[derive(Debug)]
struct TaskQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    tasks: VecDeque<T>,
    closed: bool,
}

impl<T> TaskQueue<T> {
    fn new() -> Self {
        TaskQueue {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Injects a batch of tasks and wakes every worker.
    fn push_all(&self, items: Vec<T>) {
        let mut state = self.state.lock().expect("task queue poisoned");
        state.tasks.extend(items);
        drop(state);
        self.ready.notify_all();
    }

    /// Steals the next task; blocks while the queue is open but empty,
    /// returns `None` once it is closed and drained.
    fn steal(&self) -> Option<T> {
        let mut state = self.state.lock().expect("task queue poisoned");
        loop {
            if let Some(task) = state.tasks.pop_front() {
                return Some(task);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("task queue poisoned");
        }
    }

    /// Closes the queue: workers drain what is left and exit.
    fn close(&self) {
        let mut state = self.state.lock().expect("task queue poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

impl<'e> TaskQueue<WorkItem<'e>> {
    /// Pops the next queued intra-axis job without blocking; leaves session
    /// tasks alone (the coordinator only helps with jobs while it waits on
    /// a fork's latch).
    fn try_steal_job(&self) -> Option<HeapJob> {
        let mut state = self.state.lock().expect("task queue poisoned");
        match state.tasks.front() {
            Some(WorkItem::Job(_)) => match state.tasks.pop_front() {
                Some(WorkItem::Job(job)) => Some(job),
                _ => unreachable!("front of the queue was a job"),
            },
            _ => None,
        }
    }
}

/// A work-stealing pool of scoped worker threads executing [`SessionTask`]s.
///
/// Tasks go into one shared injector queue; idle workers steal from it (the
/// degenerate — and provably balanced — form of work stealing: a single
/// global deque), run the task they won, and send the output back over a
/// channel.  Dynamic stealing rather than static sharding is what keeps all
/// workers busy when sessions finish at different ticks and the active set
/// shrinks unevenly.
///
/// The pool is tied to a [`std::thread::scope`] so tasks may borrow the
/// engine (`Session<'e>` holds `&'e KelleEngine`) without any `'static`
/// gymnastics; dropping the pool closes the queue and the scope joins the
/// workers.  A panic inside a task is caught on the worker, carried back,
/// and resurfaced on the coordinating thread by
/// [`execute`](StepExecutor::execute) — a crashed task can therefore never
/// deadlock the coordinator waiting for a result that will not come.
#[derive(Debug)]
pub struct WorkerPool<'e> {
    queue: Arc<TaskQueue<WorkItem<'e>>>,
    results: Receiver<Result<TaskOutput<'e>, TaskFailure>>,
    workers: usize,
}

impl<'e> WorkerPool<'e> {
    /// Spawns `workers` (clamped to at least 1) scoped worker threads.
    pub fn start<'scope>(scope: &'scope Scope<'scope, '_>, workers: usize) -> WorkerPool<'e>
    where
        'e: 'scope,
    {
        let workers = workers.max(1);
        let queue = Arc::new(TaskQueue::new());
        let (sender, results) = channel::<Result<TaskOutput<'e>, TaskFailure>>();
        for id in 0..workers {
            let queue: Arc<TaskQueue<WorkItem<'e>>> = Arc::clone(&queue);
            let sender: Sender<Result<TaskOutput<'e>, TaskFailure>> = sender.clone();
            scope.spawn(move || {
                while let Some(item) = queue.steal() {
                    match item {
                        WorkItem::Task(task) => {
                            let index = task.index();
                            let output = std::panic::catch_unwind(AssertUnwindSafe(|| task.run()))
                                .map(|mut output| {
                                    output.worker = Some(id);
                                    output
                                })
                                .map_err(|cause| TaskFailure {
                                    index,
                                    message: panic_message(cause.as_ref()),
                                });
                            if sender.send(output).is_err() {
                                // The coordinator is gone; nothing left to
                                // work for.
                                break;
                            }
                        }
                        // Intra-axis job: completion is reported through its
                        // fork's latch, not the result channel.
                        WorkItem::Job(job) => job.run(),
                    }
                }
            });
        }
        WorkerPool {
            queue,
            results,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A fork-join [`ParallelRunner`] over this pool's workers, with the
    /// calling thread participating as one extra lane — the intra-session
    /// axis ([`ParallelAxis::Intra`]).
    pub fn runner(&self) -> PoolRunner<'e> {
        PoolRunner {
            queue: Arc::clone(&self.queue),
            lanes: self.workers + 1,
        }
    }
}

/// Fork-join executor for the **intra-session axis**: fans the per-head /
/// per-row-block [`Job`]s of one decode step out across a [`WorkerPool`]'s
/// workers, with the thread calling [`run`](ParallelRunner::run)
/// participating as one lane.
///
/// `run` pushes `jobs[1..]` onto the pool's injector queue, executes
/// `jobs[0]` inline, helps drain remaining jobs while it waits, and blocks
/// on a countdown latch until every job has finished — only then does it
/// return, which is what lets jobs borrow the caller's stack (the
/// [`ParallelRunner`] contract).  A panicking job is resurfaced here after
/// the join, so a crashed head can never leave the pool stuck.
#[derive(Debug)]
pub struct PoolRunner<'e> {
    queue: Arc<TaskQueue<WorkItem<'e>>>,
    lanes: usize,
}

impl<'e> ParallelRunner for PoolRunner<'e> {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn run<'a>(&self, jobs: Vec<Job<'a>>) {
        if jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len() - 1));
        let mut jobs = jobs.into_iter();
        let first = jobs.next().expect("jobs.len() > 1");
        let items: Vec<WorkItem<'e>> = jobs
            .map(|job| {
                // SAFETY: `run` does not return until the latch counts every
                // forked job down (even if `first` panics — see below), so
                // the `'a` borrows inside the closure strictly outlive its
                // execution although the queue's type erases them to
                // `'static`.
                let job: Job<'static> =
                    unsafe { std::mem::transmute::<Job<'a>, Job<'static>>(job) };
                WorkItem::Job(HeapJob {
                    job,
                    latch: Arc::clone(&latch),
                })
            })
            .collect();
        self.queue.push_all(items);
        // The first job runs inline: the caller is a full lane, and with
        // more jobs than lanes it keeps helping below.  Its panic (if any)
        // must not unwind past the latch wait — forked jobs still borrow
        // this stack frame.
        let first_result = std::panic::catch_unwind(AssertUnwindSafe(first));
        while let Some(job) = self.queue.try_steal_job() {
            job.run();
        }
        latch.wait();
        if let Err(cause) = first_result {
            std::panic::resume_unwind(cause);
        }
        if let Some(cause) = latch.take_panic() {
            std::panic::resume_unwind(cause);
        }
    }
}

impl<'e> StepExecutor<'e> for WorkerPool<'e> {
    fn execute(&mut self, tasks: Vec<SessionTask<'e>>) -> Vec<TaskOutput<'e>> {
        // Resurface the first task panic so the failure mode matches
        // single-threaded serving; the full batch has been drained by then,
        // so the pool stays reusable by a caller that catches it.
        self.try_execute(tasks).into_outputs()
    }

    fn execute_axis(
        &mut self,
        tasks: Vec<SessionTask<'e>>,
        axis: ParallelAxis,
    ) -> Vec<TaskOutput<'e>> {
        self.try_execute_axis(tasks, axis).into_outputs()
    }

    fn try_execute(&mut self, tasks: Vec<SessionTask<'e>>) -> TickResult<'e> {
        let count = tasks.len();
        let mut result = TickResult {
            outputs: Vec::with_capacity(count),
            failures: Vec::new(),
        };
        if count == 0 {
            return result;
        }
        self.queue
            .push_all(tasks.into_iter().map(WorkItem::Task).collect());
        // Every task sends exactly one result (panics are caught and carried
        // back as failures), so draining `count` results — even past the
        // first failure — leaves the channel empty and the pool reusable.
        for _ in 0..count {
            match self.results.recv() {
                Ok(Ok(output)) => result.outputs.push(output),
                Ok(Err(failure)) => result.failures.push(failure),
                Err(_) => unreachable!("workers outlive the pool (scoped) and senders persist"),
            }
        }
        result
    }

    fn try_execute_axis(
        &mut self,
        tasks: Vec<SessionTask<'e>>,
        axis: ParallelAxis,
    ) -> TickResult<'e> {
        let intra = match axis {
            ParallelAxis::Session => false,
            ParallelAxis::Intra => true,
            ParallelAxis::Auto => tasks.len() == 1 || tasks.len() * 2 <= self.workers,
        };
        if !intra {
            return self.try_execute(tasks);
        }
        // Narrow batch: decode the sessions one at a time on this thread,
        // each step fanned out per head / per row block across the pool.
        // Running in index order here makes the scheduler's commit-time sort
        // a no-op, exactly like sequential serving.  Each task's panic is
        // caught individually — one crashed session must not drop the
        // not-yet-run sessions queued behind it mid-tick.
        let runner = self.runner();
        run_tasks_caught(tasks, |task| task.run_with(&runner))
    }
}

impl Drop for WorkerPool<'_> {
    fn drop(&mut self) {
        self.queue.close();
    }
}

/// What a sticky shard is asked to do.  Per-shard channels are FIFO, so a
/// `Park` is always observed before the `Step`/`Recall` that targets it.
enum ShardCommand<'e> {
    /// Hold this session resident until it is stepped or recalled.
    Park(usize, Session<'e>),
    /// Decode one step on each of these resident sessions (all pinned to
    /// this shard), replying with a [`StickyStep`] per session.
    Step(Vec<usize>),
    /// Run a moved task (admission prefill, or a chaos-mode decode) and
    /// reply with its [`TaskOutput`].
    Task(SessionTask<'e>),
    /// Hand the resident session back over the dedicated reply channel.
    Recall(usize, Sender<Option<Session<'e>>>),
}

impl std::fmt::Debug for ShardCommand<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCommand::Park(index, _) => f.debug_tuple("Park").field(index).finish(),
            ShardCommand::Step(indices) => f.debug_tuple("Step").field(indices).finish(),
            ShardCommand::Task(task) => f.debug_tuple("Task").field(&task.index()).finish(),
            ShardCommand::Recall(index, _) => f.debug_tuple("Recall").field(index).finish(),
        }
    }
}

/// A shard's answer on the shared reply channel.  Each coordinator call
/// drains exactly the replies it asked for before returning, so step and
/// task replies never interleave across calls.
#[derive(Debug)]
enum ShardReply<'e> {
    Step(Result<StickyStep, TaskFailure>),
    // Boxed: a TaskOutput carries a whole session, dwarfing a StickyStep.
    Task(Box<Result<TaskOutput<'e>, TaskFailure>>),
}

/// A pool of scoped worker threads with **pinned sessions**: request `index`
/// always lives on shard `index % workers`, parked in the worker's local map
/// between ticks, so per-tick traffic to the coordinator is one
/// [`StickyStep`] per session instead of the whole session twice.
///
/// # Determinism
///
/// The commit discipline is untouched: shards compute, the coordinator
/// sorts step results by request index and commits in submission order —
/// the same fan-out/commit cycle as the [`WorkerPool`], minus the session
/// moves.  Pinning also cannot change *what* a step computes: a session is
/// a pure function of its own state, and it is on exactly one thread at a
/// time either way.  Streams are therefore bit-identical to the stealing
/// pool and to sequential serving (`integration_front`, CI-gated at
/// workers 1/2/4).
///
/// Moved tasks — admission prefills, and every decode when chaos is active
/// (checkpoint/replay needs sessions on the coordinator between attempts) —
/// are routed to the owning shard too, so a fleet served through this pool
/// reports [`ParallelMetrics::sessions_migrated`] `== 0`.
///
/// The [`ParallelAxis`] hint is ignored: sticky execution is already
/// session-sharded, and the hint is a wall-clock knob that can never change
/// output bits.
#[derive(Debug)]
pub struct StickyShardPool<'e> {
    shards: Vec<Sender<ShardCommand<'e>>>,
    replies: Receiver<ShardReply<'e>>,
    workers: usize,
}

impl<'e> StickyShardPool<'e> {
    /// Spawns `workers` (clamped to at least 1) scoped shard threads.
    pub fn start<'scope>(scope: &'scope Scope<'scope, '_>, workers: usize) -> StickyShardPool<'e>
    where
        'e: 'scope,
    {
        let workers = workers.max(1);
        let (reply_sender, replies) = channel::<ShardReply<'e>>();
        let mut shards = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (sender, commands) = channel::<ShardCommand<'e>>();
            let replies = reply_sender.clone();
            scope.spawn(move || {
                let mut resident: HashMap<usize, Session<'e>> = HashMap::new();
                while let Ok(command) = commands.recv() {
                    match command {
                        ShardCommand::Park(index, session) => {
                            resident.insert(index, session);
                        }
                        ShardCommand::Step(indices) => {
                            for index in indices {
                                let reply = match resident.remove(&index) {
                                    // The session moves *into* the unwind
                                    // boundary: a panicking step drops it
                                    // here, mirroring a lost stealing-pool
                                    // task.
                                    Some(mut session) => {
                                        std::panic::catch_unwind(AssertUnwindSafe(move || {
                                            let tokens_before = session.position();
                                            let step = session.decode_one();
                                            (session, step, tokens_before)
                                        }))
                                        .map(|(session, step, tokens_before)| {
                                            let position = session.position();
                                            resident.insert(index, session);
                                            StickyStep {
                                                index,
                                                step,
                                                tokens_before,
                                                position,
                                                worker: shard,
                                            }
                                        })
                                        .map_err(
                                            |cause| TaskFailure {
                                                index,
                                                message: panic_message(cause.as_ref()),
                                            },
                                        )
                                    }
                                    None => Err(TaskFailure {
                                        index,
                                        message: format!(
                                            "sticky shard {shard}: request {index} is not parked"
                                        ),
                                    }),
                                };
                                if replies.send(ShardReply::Step(reply)).is_err() {
                                    return;
                                }
                            }
                        }
                        ShardCommand::Task(task) => {
                            let index = task.index();
                            let output = std::panic::catch_unwind(AssertUnwindSafe(|| task.run()))
                                .map(|mut output| {
                                    output.worker = Some(shard);
                                    output
                                })
                                .map_err(|cause| TaskFailure {
                                    index,
                                    message: panic_message(cause.as_ref()),
                                });
                            if replies.send(ShardReply::Task(Box::new(output))).is_err() {
                                return;
                            }
                        }
                        ShardCommand::Recall(index, back) => {
                            // A closed reply channel means the coordinator
                            // gave up mid-recall; keep serving.
                            let _ = back.send(resident.remove(&index));
                        }
                    }
                }
                // Channel closed: the pool was dropped.  Parked sessions are
                // dropped here, on the shard that owns them.
            });
            shards.push(sender);
        }
        StickyShardPool {
            shards,
            replies,
            workers,
        }
    }

    /// Number of shard threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shard that owns request `index` — the pinning function.
    fn shard_of(&self, index: usize) -> usize {
        index % self.workers
    }

    fn send(&self, shard: usize, command: ShardCommand<'e>) {
        self.shards[shard]
            .send(command)
            .expect("shard threads outlive the pool (scoped)");
    }

    /// Drains exactly `count` task replies (the step variant cannot appear:
    /// every call drains its own replies fully before returning).
    fn drain_task_replies(&self, count: usize) -> TickResult<'e> {
        let mut result = TickResult {
            outputs: Vec::with_capacity(count),
            failures: Vec::new(),
        };
        for _ in 0..count {
            match self.replies.recv() {
                Ok(ShardReply::Task(reply)) => match *reply {
                    Ok(output) => result.outputs.push(output),
                    Err(failure) => result.failures.push(failure),
                },
                Ok(ShardReply::Step(_)) => {
                    unreachable!("step replies are drained by the call that requested them")
                }
                Err(_) => unreachable!("shards outlive the pool (scoped) and senders persist"),
            }
        }
        result
    }
}

impl<'e> StepExecutor<'e> for StickyShardPool<'e> {
    fn execute(&mut self, tasks: Vec<SessionTask<'e>>) -> Vec<TaskOutput<'e>> {
        self.try_execute(tasks).into_outputs()
    }

    fn try_execute(&mut self, tasks: Vec<SessionTask<'e>>) -> TickResult<'e> {
        let count = tasks.len();
        for task in tasks {
            let shard = self.shard_of(task.index());
            self.send(shard, ShardCommand::Task(task));
        }
        self.drain_task_replies(count)
    }

    fn is_sticky(&self) -> bool {
        true
    }

    fn park(&mut self, index: usize, session: Session<'e>) {
        let shard = self.shard_of(index);
        self.send(shard, ShardCommand::Park(index, session));
    }

    fn step_parked(&mut self, indices: &[usize]) -> StickyOutcome {
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.workers];
        for &index in indices {
            per_shard[self.shard_of(index)].push(index);
        }
        for (shard, mine) in per_shard.into_iter().enumerate() {
            if !mine.is_empty() {
                self.send(shard, ShardCommand::Step(mine));
            }
        }
        let mut outcome = StickyOutcome {
            steps: Vec::with_capacity(indices.len()),
            failures: Vec::new(),
        };
        for _ in 0..indices.len() {
            match self.replies.recv() {
                Ok(ShardReply::Step(Ok(step))) => outcome.steps.push(step),
                Ok(ShardReply::Step(Err(failure))) => outcome.failures.push(failure),
                Ok(ShardReply::Task(_)) => {
                    unreachable!("task replies are drained by the call that requested them")
                }
                Err(_) => unreachable!("shards outlive the pool (scoped) and senders persist"),
            }
        }
        outcome
    }

    fn recall(&mut self, index: usize) -> Option<Session<'e>> {
        let shard = self.shard_of(index);
        let (back, session) = channel();
        self.send(shard, ShardCommand::Recall(index, back));
        session
            .recv()
            .expect("the shard answers every recall before exiting")
    }
}

/// Serves `requests` through a [`BatchScheduler`] whose per-session compute
/// fans out across `workers` threads — the driver behind
/// [`KelleEngine::serve`] with [`crate::engine::ServeOptions::parallel`].
///
/// `on_token` runs on the coordinating thread and observes `(request,
/// token)` pairs in exactly the single-threaded order.  The outcome is
/// bit-identical to
/// sequential serving with the same scheduler config for every worker
/// count.
pub fn serve_batch_parallel(
    engine: &KelleEngine,
    requests: Vec<ServeRequest>,
    config: SchedulerConfig,
    workers: usize,
    on_token: impl FnMut(usize, usize),
) -> BatchOutcome {
    std::thread::scope(|scope| {
        let mut pool = WorkerPool::start(scope, workers);
        let mut scheduler = BatchScheduler::with_config(engine, config);
        for request in requests {
            scheduler.submit_with(request, &mut pool);
        }
        scheduler.run_to_completion_streaming_with(&mut pool, on_token)
    })
}

/// Fallible [`serve_batch_parallel`]: an unrecoverable worker loss (a task
/// panic the chaos replay budget could not absorb) surfaces as
/// [`ServeError::WorkerLost`] instead of unwinding the coordinator, so
/// callers can distinguish infrastructure failure from request failure.
pub fn try_serve_batch_parallel(
    engine: &KelleEngine,
    requests: Vec<ServeRequest>,
    config: SchedulerConfig,
    workers: usize,
    on_token: impl FnMut(usize, usize),
) -> Result<BatchOutcome, ServeError> {
    std::thread::scope(|scope| {
        let mut pool = WorkerPool::start(scope, workers);
        let mut scheduler = BatchScheduler::with_config(engine, config);
        for request in requests {
            scheduler.submit_with(request, &mut pool);
        }
        scheduler.try_run_to_completion_streaming_with(&mut pool, on_token)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> KelleEngine {
        KelleEngine::new(EngineConfig::default())
    }

    fn requests() -> Vec<ServeRequest> {
        vec![
            ServeRequest::new(vec![1, 2, 3, 4], 3),
            ServeRequest::new(vec![5, 6], 5),
            ServeRequest::new(vec![7, 8, 9], 2),
        ]
    }

    #[test]
    fn pool_matches_inline_execution_for_any_worker_count() {
        let engine = engine();
        let baseline = engine
            .serve(requests(), crate::engine::ServeOptions::new())
            .unwrap();
        for workers in [1, 2, 4] {
            let parallel = serve_batch_parallel(
                &engine,
                requests(),
                SchedulerConfig::default(),
                workers,
                |_, _| {},
            );
            for (a, b) in baseline.outcomes.iter().zip(parallel.outcomes.iter()) {
                assert_eq!(a.generated, b.generated, "workers={workers}");
                assert_eq!(a.faults, b.faults, "workers={workers}");
            }
            assert_eq!(baseline.stats, parallel.stats, "workers={workers}");
            assert_eq!(
                baseline.contention, parallel.contention,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn streaming_order_is_the_sequential_order() {
        let engine = engine();
        let mut sequential = Vec::new();
        let mut sink = |request: usize, token: usize| sequential.push((request, token));
        engine
            .serve(
                requests(),
                crate::engine::ServeOptions::new().streaming(&mut sink),
            )
            .unwrap();
        let mut parallel = Vec::new();
        serve_batch_parallel(
            &engine,
            requests(),
            SchedulerConfig::default(),
            4,
            |request, token| parallel.push((request, token)),
        );
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn every_axis_matches_inline_serving_bitwise() {
        let engine = engine();
        let baseline = engine
            .serve(requests(), crate::engine::ServeOptions::new())
            .unwrap();
        for axis in [
            ParallelAxis::Session,
            ParallelAxis::Intra,
            ParallelAxis::Auto,
        ] {
            for workers in [1, 2, 4] {
                let config = SchedulerConfig::default().with_parallel_axis(axis);
                let parallel =
                    serve_batch_parallel(&engine, requests(), config, workers, |_, _| {});
                for (a, b) in baseline.outcomes.iter().zip(parallel.outcomes.iter()) {
                    assert_eq!(a.generated, b.generated, "axis={axis:?} workers={workers}");
                    assert_eq!(a.faults, b.faults, "axis={axis:?} workers={workers}");
                }
                assert_eq!(
                    baseline.stats, parallel.stats,
                    "axis={axis:?} workers={workers}"
                );
                assert_eq!(
                    baseline.contention, parallel.contention,
                    "axis={axis:?} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn pool_runner_joins_before_returning_and_stays_reusable_after_a_panic() {
        std::thread::scope(|scope| {
            let pool: WorkerPool<'_> = WorkerPool::start(scope, 2);
            let runner = pool.runner();
            assert_eq!(runner.lanes(), 3);
            // Jobs may borrow the caller's stack: disjoint chunks of a local.
            let mut data = vec![0u32; 8];
            let jobs: Vec<Job<'_>> = data
                .chunks_mut(2)
                .enumerate()
                .map(|(i, chunk)| {
                    let job: Job<'_> = Box::new(move || {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = (i * 2 + j) as u32;
                        }
                    });
                    job
                })
                .collect();
            runner.run(jobs);
            assert_eq!(data, (0..8).collect::<Vec<u32>>());
            // A panicking forked job resurfaces on the caller after the
            // join...
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                runner.run(vec![
                    Box::new(|| {}) as Job<'_>,
                    Box::new(|| panic!("boom")) as Job<'_>,
                ]);
            }));
            assert!(result.is_err(), "the job panic must reach the caller");
            // ...and the pool keeps serving the next fork.
            let counter = AtomicUsize::new(0);
            runner.run(
                (0..4)
                    .map(|_| {
                        let job: Job<'_> = Box::new(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                        job
                    })
                    .collect(),
            );
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        });
    }

    #[test]
    fn worker_count_is_clamped_to_one() {
        std::thread::scope(|scope| {
            let pool: WorkerPool<'_> = WorkerPool::start(scope, 0);
            assert_eq!(pool.workers(), 1);
        });
    }

    #[test]
    fn empty_task_batch_is_a_no_op() {
        std::thread::scope(|scope| {
            let mut pool: WorkerPool<'_> = WorkerPool::start(scope, 2);
            assert!(StepExecutor::execute(&mut pool, Vec::new()).is_empty());
        });
    }

    #[test]
    fn coordinator_unwind_mid_tick_joins_cleanly() {
        // Regression: a coordinator that unwinds mid-tick — after fanning
        // tasks out but before draining results — must still join the pool
        // cleanly.  Drop closes the queue, the workers drain the in-flight
        // task (their send fails once the receiver is gone) and exit; the
        // scope joins instead of hanging.
        let engine = engine();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let pool: WorkerPool<'_> = WorkerPool::start(scope, 2);
                let mut session = engine.open_session();
                session.prefill(&[1, 2, 3]);
                pool.queue
                    .push_all(vec![WorkItem::Task(SessionTask::decode(0, session))]);
                panic!("coordinator unwinds mid-tick");
            });
        }));
        assert!(result.is_err(), "the coordinator panic must propagate");
        // Reaching this assertion at all is the point: the scope returned.
    }

    #[test]
    fn intra_axis_failures_spare_queued_sessions() {
        // Regression for the intra-axis fan-out: a panicking session must
        // not take the sessions queued behind it down with it mid-map.
        let engine = engine();
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::start(scope, 2);
            // An un-prefilled session panics inside decode_one.
            let broken = engine.open_session();
            let mut healthy = engine.open_session();
            healthy.prefill(&[1, 2, 3]);
            let tasks = vec![
                SessionTask::decode(0, broken),
                SessionTask::decode(1, healthy),
            ];
            let result = pool.try_execute_axis(tasks, ParallelAxis::Intra);
            assert_eq!(result.outputs.len(), 1, "the healthy session survives");
            assert_eq!(result.outputs[0].index(), 1);
            assert_eq!(result.failures.len(), 1);
            assert_eq!(result.failures[0].index(), 0);
        });
    }

    #[test]
    fn try_execute_partitions_outputs_and_failures() {
        let engine = engine();
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::start(scope, 2);
            let broken = engine.open_session();
            let mut healthy = engine.open_session();
            healthy.prefill(&[4, 5, 6]);
            let tasks = vec![
                SessionTask::decode(3, healthy),
                SessionTask::decode(9, broken),
            ];
            let result = pool.try_execute(tasks);
            assert_eq!(result.outputs.len(), 1);
            assert_eq!(result.outputs[0].index(), 3);
            assert_eq!(result.failures.len(), 1);
            assert_eq!(result.failures[0].index(), 9);
            // The channel was fully drained: the pool serves the next batch.
            let mut next = engine.open_session();
            next.prefill(&[7, 8]);
            let outputs = pool.execute(vec![SessionTask::decode(0, next)]);
            assert_eq!(outputs.len(), 1);
        });
    }

    #[test]
    fn sabotaged_task_fails_with_the_chaos_message() {
        let engine = engine();
        let mut session = engine.open_session();
        session.prefill(&[1, 2, 3]);
        let mut task = SessionTask::decode(5, session);
        task.arm_sabotage();
        let result = InlineExecutor.try_execute(vec![task]);
        assert!(result.outputs.is_empty());
        assert_eq!(result.failures.len(), 1);
        assert_eq!(result.failures[0].index(), 5);
        assert!(
            result.failures[0].message().contains("chaos"),
            "message: {}",
            result.failures[0].message()
        );
    }

    #[test]
    fn sticky_pool_steps_parked_sessions_without_moving_them() {
        let engine = engine();
        std::thread::scope(|scope| {
            let mut pool = StickyShardPool::start(scope, 2);
            assert!(pool.is_sticky());
            assert_eq!(pool.workers(), 2);
            for index in 0..3 {
                let mut session = engine.open_session();
                session.prefill(&[1, 2, 3 + index]);
                pool.park(index, session);
            }
            let indices = [0, 1, 2];
            let outcome = pool.step_parked(&indices);
            assert!(outcome.failures.is_empty());
            assert_eq!(outcome.steps.len(), 3);
            let mut steps = outcome.steps;
            steps.sort_by_key(|s| s.index);
            for (i, step) in steps.iter().enumerate() {
                assert_eq!(step.index, i);
                assert_eq!(step.tokens_before, 3);
                assert_eq!(step.position, 4);
                // Pinned: the shard is always index % workers.
                assert_eq!(step.worker, i % 2);
            }
            // The sessions stayed resident: a second tick steps them again.
            let outcome = pool.step_parked(&indices);
            assert_eq!(outcome.steps.len(), 3);
            assert!(outcome.steps.iter().all(|s| s.tokens_before == 4));
            // Recall hands the stepped session back; recalling twice (or an
            // unknown index) finds nothing.
            let session = pool.recall(1).expect("request 1 is parked");
            assert_eq!(session.position(), 5);
            assert!(pool.recall(1).is_none());
            assert!(pool.recall(99).is_none());
        });
    }

    #[test]
    fn sticky_pool_matches_inline_decode_bitwise() {
        let engine = engine();
        let mut reference = engine.open_session();
        reference.prefill(&[1, 2, 3]);
        std::thread::scope(|scope| {
            let mut pool = StickyShardPool::start(scope, 3);
            let mut session = engine.open_session();
            session.prefill(&[1, 2, 3]);
            pool.park(7, session);
            for _ in 0..5 {
                let expected = reference.decode_one();
                let outcome = pool.step_parked(&[7]);
                assert!(outcome.failures.is_empty());
                assert_eq!(outcome.steps.len(), 1);
                let step = &outcome.steps[0];
                assert_eq!(step.step.token, expected.token);
                assert_eq!(step.worker, 7 % 3);
            }
        });
    }

    #[test]
    fn sticky_step_panic_loses_only_that_session() {
        let engine = engine();
        std::thread::scope(|scope| {
            let mut pool = StickyShardPool::start(scope, 2);
            // An un-prefilled session panics inside decode_one.
            pool.park(0, engine.open_session());
            let mut healthy = engine.open_session();
            healthy.prefill(&[4, 5, 6]);
            pool.park(1, healthy);
            let outcome = pool.step_parked(&[0, 1]);
            assert_eq!(outcome.steps.len(), 1, "the healthy session survives");
            assert_eq!(outcome.steps[0].index, 1);
            assert_eq!(outcome.failures.len(), 1);
            assert_eq!(outcome.failures[0].index(), 0);
            // The crashed session is gone from its shard...
            assert!(pool.recall(0).is_none());
            // ...and the survivor keeps ticking.
            let outcome = pool.step_parked(&[1]);
            assert_eq!(outcome.steps.len(), 1);
        });
    }

    #[test]
    fn sticky_pool_runs_moved_tasks_on_the_owning_shard() {
        let engine = engine();
        std::thread::scope(|scope| {
            let mut pool = StickyShardPool::start(scope, 2);
            let mut a = engine.open_session();
            a.prefill(&[1, 2]);
            let mut b = engine.open_session();
            b.prefill(&[3, 4]);
            let outputs = pool.execute(vec![SessionTask::decode(4, a), SessionTask::decode(5, b)]);
            assert_eq!(outputs.len(), 2);
            for output in &outputs {
                assert_eq!(
                    output.worker(),
                    Some(output.index() % 2),
                    "moved tasks stay pinned to the owning shard"
                );
            }
        });
    }

    #[test]
    fn stealing_pool_stamps_the_worker_that_ran_each_task() {
        let engine = engine();
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::start(scope, 2);
            let mut session = engine.open_session();
            session.prefill(&[1, 2, 3]);
            let outputs = pool.execute(vec![SessionTask::decode(0, session)]);
            assert_eq!(outputs.len(), 1);
            assert!(
                matches!(outputs[0].worker(), Some(w) if w < 2),
                "stealing-pool outputs carry the worker id"
            );
        });
        // Inline execution never crosses a thread.
        let mut session = engine.open_session();
        session.prefill(&[1, 2, 3]);
        let outputs = InlineExecutor.execute(vec![SessionTask::decode(0, session)]);
        assert_eq!(outputs[0].worker(), None);
    }

    #[test]
    fn parallel_metrics_crossings_per_tick_handles_zero_ticks() {
        let zero = ParallelMetrics::default();
        assert_eq!(zero.crossings_per_tick(), 0.0);
        let metrics = ParallelMetrics {
            queue_crossings: 12,
            sessions_migrated: 3,
            ticks: 4,
        };
        assert_eq!(metrics.crossings_per_tick(), 3.0);
    }

    #[test]
    fn worker_panics_propagate_and_leave_the_pool_reusable() {
        let engine = engine();
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::start(scope, 2);
            let mut session = engine.open_session();
            session.prefill(&[1, 2, 3]);
            // An un-prefilled session panics inside decode_one; the pool
            // must resurface that panic instead of deadlocking.
            let broken = engine.open_session();
            let tasks = vec![
                SessionTask::decode(0, session),
                SessionTask::decode(1, broken),
            ];
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| pool.execute(tasks)));
            assert!(result.is_err(), "the task panic must reach the caller");
            // The failed batch was fully drained: a fresh batch on the same
            // pool sees only its own outputs.
            let mut healthy = engine.open_session();
            healthy.prefill(&[4, 5, 6]);
            let outputs = pool.execute(vec![SessionTask::decode(7, healthy)]);
            assert_eq!(outputs.len(), 1);
            assert_eq!(outputs[0].index(), 7);
        });
    }
}
