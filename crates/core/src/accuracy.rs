//! Functional-fidelity experiments (Tables 2–6, Fig. 8).
//!
//! Each experiment builds the surrogate model for the requested architecture,
//! generates deterministic task prompts, runs the full-cache / fault-free
//! reference, then replays the same prompts under a *method* — a KV-cache
//! policy plus an optional retention-fault model and KV quantization — and
//! reports the fidelity metrics mapped onto the paper's score scale (PPL-style
//! scores for WK2/PG19, accuracy-style scores for the zero-shot and QA tasks,
//! quality scores for Table 5).  See `DESIGN.md` §2 for why these proxies
//! preserve the orderings the paper's tables compare.

use crate::faults::fault_injector_for_policy;
use kelle_cache::{CacheBudget, CachePolicy};
use kelle_edram::{RefreshPolicy, RetentionModel};
use kelle_model::fault::{BitFlipRates, NoFaults, ProbabilisticFaults};
use kelle_model::generation::{evaluate_against_reference, run_reference};
use kelle_model::{FidelityMetrics, GenerationConfig, ModelConfig, ModelKind, SurrogateModel};
use kelle_workloads::{TaskKind, TaskMetric, TokenStreamGenerator};
use serde::{Deserialize, Serialize};

/// A KV-cache management method compared in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Full KV cache in FP16 (the reference row).
    Fp16,
    /// StreamingLLM (sink + recent window).
    StreamingLlm,
    /// H2O heavy-hitter eviction.
    H2o,
    /// QuaRot-style 4-bit KV quantization with full retention.
    QuaRot,
    /// Kelle's AERP with the 2DRP retention-fault model.
    Kelle,
}

impl Method {
    /// All methods in Table 2 column order.
    pub fn all() -> [Method; 5] {
        [
            Method::Fp16,
            Method::StreamingLlm,
            Method::H2o,
            Method::QuaRot,
            Method::Kelle,
        ]
    }

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Fp16 => "FP16",
            Method::StreamingLlm => "SL",
            Method::H2o => "H2O",
            Method::QuaRot => "QR",
            Method::Kelle => "Kelle",
        }
    }

    /// The serving-side [`CachePolicy`] realising this method, so the
    /// accuracy experiments and the engine build their backends from the same
    /// registry.
    pub fn policy(self) -> CachePolicy {
        match self {
            Method::Fp16 => CachePolicy::Full,
            Method::StreamingLlm => CachePolicy::StreamingLlm,
            Method::H2o => CachePolicy::H2o,
            Method::QuaRot => CachePolicy::QuaRotInt4,
            Method::Kelle => CachePolicy::Aerp,
        }
    }

    /// The method realising a serving-side policy (inverse of
    /// [`Method::policy`]).
    pub fn from_policy(policy: CachePolicy) -> Method {
        match policy {
            CachePolicy::Full => Method::Fp16,
            CachePolicy::StreamingLlm => Method::StreamingLlm,
            CachePolicy::H2o => Method::H2o,
            CachePolicy::QuaRotInt4 => Method::QuaRot,
            CachePolicy::Aerp => Method::Kelle,
        }
    }
}

/// Configuration of one accuracy experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyConfig {
    /// Model architecture to emulate.
    pub model: ModelKind,
    /// Task to evaluate.
    pub task: TaskKind,
    /// Cache budget (scaled to the surrogate sequence lengths).
    pub budget: CacheBudget,
    /// Refresh policy used to derive retention faults (Kelle method only).
    pub refresh_policy: RefreshPolicy,
    /// Explicit bit-flip rates overriding the refresh policy (used by the
    /// Fig. 8 sweeps); `None` derives rates from `refresh_policy`.
    pub explicit_rates: Option<BitFlipRates>,
    /// Number of prompts averaged per result.
    pub prompts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AccuracyConfig {
    /// The default configuration for a task on LLaMA2-7B, mirroring §7.1:
    /// task-dependent budgets scaled to the surrogate lengths and the default
    /// 2DRP refresh setting.
    pub fn for_task(task: TaskKind) -> Self {
        let (prompt_len, _) = task.surrogate_lengths();
        // Scale the paper's budget so that budget/sequence-length ratios stay
        // comparable at surrogate scale: keep roughly half the prompt.
        let budget = CacheBudget::new((prompt_len / 2).max(8))
            .with_recent_window((prompt_len / 4).max(4))
            .with_sink_tokens(2);
        AccuracyConfig {
            model: ModelKind::Llama2_7b,
            task,
            budget,
            refresh_policy: RefreshPolicy::two_dimensional_default(),
            explicit_rates: None,
            prompts: 3,
            seed: 42,
        }
    }

    /// Overrides the evaluated model (builder style).
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Overrides the cache budget (builder style).
    pub fn with_budget(mut self, budget: CacheBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the refresh policy (builder style).
    pub fn with_refresh_policy(mut self, policy: RefreshPolicy) -> Self {
        self.refresh_policy = policy;
        self
    }

    /// Uses explicit bit-flip rates instead of policy-derived ones.
    pub fn with_explicit_rates(mut self, rates: BitFlipRates) -> Self {
        self.explicit_rates = Some(rates);
        self
    }
}

/// Result of evaluating one method on one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyResult {
    /// The evaluated method.
    pub method: Method,
    /// The task.
    pub task: TaskKind,
    /// Raw fidelity metrics against the reference run.
    pub fidelity: FidelityMetrics,
    /// The score mapped onto the paper's scale (PPL-like for perplexity tasks,
    /// percentage for accuracy/quality tasks).
    pub score: f64,
}

/// Runs one method on one task configuration.
pub fn evaluate_method(config: &AccuracyConfig, method: Method) -> AccuracyResult {
    let model_config = ModelConfig::for_kind(config.model);
    let heads = model_config.surrogate.heads;
    let model = SurrogateModel::new(model_config, config.seed);
    let generator = TokenStreamGenerator::new(model.dims().vocab, config.seed ^ 0x9e37);

    let mut aggregate = FidelityAggregate::default();

    for prompt_index in 0..config.prompts.max(1) {
        let prompt = generator.prompt(config.task, prompt_index);
        let gen_config = GenerationConfig::greedy(prompt.decode_len);
        let reference = run_reference(&model, &prompt.tokens, gen_config);

        // One factory for every policy: the same registry the serving engine
        // and sessions build their backends from.
        let mut cache = method.policy().build(config.budget, heads);

        let metrics = if method == Method::Kelle {
            let mut faults: ProbabilisticFaults = match config.explicit_rates {
                Some(rates) => ProbabilisticFaults::new(rates, config.seed ^ 0xfa17),
                None => fault_injector_for_policy(
                    &config.refresh_policy,
                    &RetentionModel::default(),
                    config.seed ^ 0xfa17,
                ),
            };
            evaluate_against_reference(
                &model,
                &prompt.tokens,
                gen_config,
                &reference,
                cache.as_mut(),
                &mut faults,
            )
            .0
        } else {
            let mut faults = NoFaults;
            evaluate_against_reference(
                &model,
                &prompt.tokens,
                gen_config,
                &reference,
                cache.as_mut(),
                &mut faults,
            )
            .0
        };
        aggregate.add(metrics);
    }

    let fidelity = aggregate.mean();
    AccuracyResult {
        method,
        task: config.task,
        fidelity,
        score: score_on_paper_scale(config.task, fidelity),
    }
}

/// Runs all Table-2 methods for a task.
pub fn evaluate_all_methods(config: &AccuracyConfig) -> Vec<AccuracyResult> {
    Method::all()
        .into_iter()
        .map(|m| evaluate_method(config, m))
        .collect()
}

/// Maps fidelity metrics onto the paper's reporting scale for a task.
pub fn score_on_paper_scale(task: TaskKind, fidelity: FidelityMetrics) -> f64 {
    let reference = task.llama2_7b_fp16_reference();
    match task.metric() {
        // Perplexity tasks: the reference PPL is inflated by the distributional
        // drift (a perfectly faithful run reports the reference PPL itself).
        TaskMetric::Perplexity => reference + fidelity.mean_kl.min(50.0) * reference,
        TaskMetric::Accuracy => fidelity.accuracy_proxy(reference, task.chance_score()),
        TaskMetric::Quality => fidelity.quality_proxy(reference),
    }
}

#[derive(Debug, Default)]
struct FidelityAggregate {
    ppl: f64,
    kl: f64,
    agreement: f64,
    steps: usize,
    runs: usize,
}

impl FidelityAggregate {
    fn add(&mut self, metrics: FidelityMetrics) {
        self.ppl += metrics.ppl_proxy;
        self.kl += metrics.mean_kl;
        self.agreement += metrics.top1_agreement;
        self.steps += metrics.steps;
        self.runs += 1;
    }

    fn mean(&self) -> FidelityMetrics {
        let n = self.runs.max(1) as f64;
        FidelityMetrics {
            ppl_proxy: self.ppl / n,
            mean_kl: self.kl / n,
            top1_agreement: self.agreement / n,
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(task: TaskKind) -> AccuracyConfig {
        let mut config = AccuracyConfig::for_task(task);
        config.prompts = 1;
        config
    }

    #[test]
    fn fp16_reference_is_faithful() {
        let config = quick_config(TaskKind::Piqa);
        let result = evaluate_method(&config, Method::Fp16);
        assert_eq!(result.fidelity.top1_agreement, 1.0);
        assert!(result.fidelity.mean_kl < 1e-6);
        // Accuracy proxy equals the published reference when agreement is 1.
        assert!((result.score - TaskKind::Piqa.llama2_7b_fp16_reference()).abs() < 1e-6);
    }

    #[test]
    fn streaming_llm_degrades_more_than_kelle() {
        let config = quick_config(TaskKind::ArcEasy);
        let sl = evaluate_method(&config, Method::StreamingLlm);
        let kelle = evaluate_method(&config, Method::Kelle);
        assert!(
            kelle.fidelity.top1_agreement >= sl.fidelity.top1_agreement,
            "kelle {} vs streaming {}",
            kelle.fidelity.top1_agreement,
            sl.fidelity.top1_agreement
        );
        assert!(kelle.score >= sl.score);
    }

    #[test]
    fn kelle_stays_in_the_reference_band_and_tracks_h2o() {
        let config = quick_config(TaskKind::Piqa);
        let kelle = evaluate_method(&config, Method::Kelle);
        let h2o = evaluate_method(&config, Method::H2o);
        let reference = TaskKind::Piqa.llama2_7b_fp16_reference();
        // Table 2 shows Kelle within a couple of points of FP16 on the real
        // models.  The surrogate's decision margins are far narrower, so the
        // absolute proxy drop is larger; what must hold is that Kelle stays
        // inside the [chance, reference] band and tracks the closest prior
        // policy (H2O).
        assert!(
            kelle.score >= TaskKind::Piqa.chance_score() - 1e-9,
            "score {}",
            kelle.score
        );
        assert!(kelle.score <= reference * 1.001, "score {}", kelle.score);
        assert!(
            kelle.score >= h2o.score * 0.85,
            "kelle {} vs h2o {}",
            kelle.score,
            h2o.score
        );
    }

    #[test]
    fn perplexity_tasks_report_ppl_scale() {
        let config = quick_config(TaskKind::WikiText2);
        let fp16 = evaluate_method(&config, Method::Fp16);
        assert!((fp16.score - 5.47).abs() < 0.2);
        let kelle = evaluate_method(&config, Method::Kelle);
        assert!(kelle.score >= fp16.score);
    }

    #[test]
    fn method_registry_round_trips() {
        for (method, policy) in Method::all().into_iter().zip(CachePolicy::all()) {
            assert_eq!(method.policy(), policy, "{method:?}");
            assert_eq!(Method::from_policy(policy), method, "{policy:?}");
        }
    }

    #[test]
    fn all_methods_run() {
        let config = quick_config(TaskKind::Lambada);
        let results = evaluate_all_methods(&config);
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|r| r.score.is_finite()));
    }
}
