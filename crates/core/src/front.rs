//! Non-blocking serving front-end: `submit`/`poll` sessions with
//! per-request token streams, backpressure, and worker-pinned execution.
//!
//! [`KelleEngine::front`] opens a [`ServingFront`] over the engine's
//! [`BatchScheduler`]: callers [`submit`](ServingFront::submit) requests
//! without blocking and read tokens back through bounded per-session
//! [`TokenStream`]s, while the scheduler's admission queue, deadlines,
//! [`cancel`](ServingFront::cancel) and [`drain`](ServingFront::drain) are
//! all first-class on the handle.  Two executor protocols drive the decode
//! ticks:
//!
//! * [`ExecutorKind::Sticky`] (the default) pins every session to a worker
//!   shard ([`StickyShardPool`]): the session object is parked on its shard
//!   and only per-tick step results cross threads to the coordinator
//!   commit, so a fleet of long-lived sessions generates O(steps) queue
//!   traffic instead of O(steps × session moves);
//! * [`ExecutorKind::Stealing`] round-trips whole sessions through the
//!   shared task queue every tick ([`WorkerPool`]) — the PR-5 protocol,
//!   better when per-tick work is heavily skewed.
//!
//! # Cooperative pumping
//!
//! The front is deliberately runtime-free: there is no background thread
//! and nothing happens between calls.  Every [`recv`](ServingFront::recv),
//! [`submit_blocking`](ServingFront::submit_blocking),
//! [`pump`](ServingFront::pump) or [`drain`](ServingFront::drain) advances
//! the scheduler by whole ticks on the calling thread.  That is what makes
//! the subsystem deterministic: ticks are totally ordered, commits happen
//! in submission order on one thread, and the interleaving of `submit` /
//! `poll` calls can change *when* tokens are produced but never *which*
//! tokens.
//!
//! # Backpressure
//!
//! Two independent valves:
//!
//! * **Admission**: [`FrontConfig::with_queue_capacity`] bounds the waiting
//!   queue; a full queue rejects [`submit`](ServingFront::submit) with the
//!   typed [`SubmitError::QueueFull`] (callers that prefer to wait use
//!   [`submit_blocking`](ServingFront::submit_blocking), which pumps ticks
//!   until a slot frees or progress becomes impossible).
//! * **Streams**: [`FrontConfig::with_stream_capacity`] bounds each token
//!   buffer; a session whose consumer stopped polling is *paused* — skipped
//!   by decode fan-out, its parked KV untouched, consuming zero queue
//!   traffic — and resumes when the consumer catches up.  Pausing changes
//!   scheduling, never token bits.
//!
//! # Determinism
//!
//! For a fixed submission sequence, the committed token streams,
//! probability bits and fault statistics are bit-identical to the
//! synchronous parallel [`KelleEngine::serve`] path for all five
//! cache policies, both [`ParallelAxis`](crate::parallel::ParallelAxis)
//! modes and any worker count, with either executor — gated by
//! `tests/integration_front.rs`.
//!
//! ```
//! use kelle::front::{FrontConfig, StreamPoll};
//! use kelle::{EngineConfig, KelleEngine, ServeRequest};
//!
//! let engine = KelleEngine::new(EngineConfig::default());
//! let (tokens, outcome) = engine.front(FrontConfig::default(), |front| {
//!     let stream = front
//!         .submit(ServeRequest::new(vec![1, 2, 3], 4))
//!         .expect("unbounded queue admits everything");
//!     let mut tokens = Vec::new();
//!     loop {
//!         match front.recv(&stream) {
//!             StreamPoll::Token(token) => tokens.push(token),
//!             StreamPoll::Finished { .. } => break,
//!             StreamPoll::Pending => unreachable!("recv pumps until terminal"),
//!         }
//!     }
//!     tokens
//! });
//! assert_eq!(tokens.len(), 4);
//! assert_eq!(outcome.outcomes[0].generated, tokens);
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::chaos::{ServeError, ShedReason};
use crate::engine::KelleEngine;
use crate::parallel::{StepExecutor, StickyShardPool, WorkerPool};
use crate::scheduler::{BatchOutcome, BatchScheduler, SchedulerConfig, StepEvent};
use crate::session::ServeRequest;

/// Which executor protocol drives the front-end's decode ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Pin sessions to worker shards ([`StickyShardPool`]); only per-tick
    /// step results cross threads.  The right default for long-lived
    /// session fleets.
    #[default]
    Sticky,
    /// Round-trip whole sessions through the shared task queue every tick
    /// ([`WorkerPool`]); work-stealing balances skewed per-tick load.
    Stealing,
}

/// Configuration for [`KelleEngine::front`].
#[derive(Debug, Clone, Default)]
pub struct FrontConfig {
    /// Scheduler configuration (capacity, admission policy, tiering,
    /// chaos, parallel axis) the front drives.
    pub scheduler: SchedulerConfig,
    /// Executor protocol for decode ticks.
    pub executor: ExecutorKind,
    /// Admission backpressure: maximum waiting (queued, unadmitted)
    /// requests before [`ServingFront::submit`] rejects with
    /// [`SubmitError::QueueFull`].  `None` (default) never rejects.
    pub queue_capacity: Option<usize>,
    /// Stream backpressure: maximum undelivered tokens buffered per
    /// session before its decode is paused.  `None` (default) never
    /// pauses.
    pub stream_capacity: Option<usize>,
}

impl FrontConfig {
    /// Default configuration: sticky executor, unbounded queue and streams,
    /// default scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the executor protocol.
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Bounds the admission queue (see [`FrontConfig::queue_capacity`]).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Bounds each per-session token buffer (see
    /// [`FrontConfig::stream_capacity`]).
    pub fn with_stream_capacity(mut self, capacity: usize) -> Self {
        self.stream_capacity = Some(capacity);
        self
    }
}

/// Why [`ServingFront::submit`] rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at [`FrontConfig::queue_capacity`]; retry
    /// after polling some streams, or use
    /// [`submit_blocking`](ServingFront::submit_blocking).
    QueueFull {
        /// Requests currently waiting for admission.
        waiting: usize,
    },
    /// [`drain`](ServingFront::drain) already stopped admission; draining
    /// is terminal.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { waiting } => {
                write!(f, "admission queue is full ({waiting} requests waiting)")
            }
            SubmitError::Draining => write!(f, "the front-end is draining; admission is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One non-blocking read from a [`TokenStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPoll {
    /// No token buffered yet; pump the front (or use
    /// [`recv`](ServingFront::recv)) to make progress.
    Pending,
    /// The next generated token, in stream order.
    Token(usize),
    /// The stream is over: every token has been delivered.
    Finished {
        /// `None` for natural completion; `Some` when the request was shed
        /// (deadline, queue timeout, cancellation, drain, worker loss) —
        /// already-delivered tokens are the kept partial output.
        shed: Option<ShedReason>,
    },
}

#[derive(Debug, Default)]
struct StreamState {
    tokens: VecDeque<usize>,
    /// `Some(None)` = finished; `Some(Some(reason))` = shed.  Buffered
    /// tokens are always delivered before the terminal state.
    terminal: Option<Option<ShedReason>>,
}

/// Caller's handle to one request's token stream — a bounded buffer the
/// front fills as the request's decode ticks commit.
///
/// Reads never block: [`try_next`](TokenStream::try_next) pops a buffered
/// token or reports [`StreamPoll::Pending`];
/// [`ServingFront::recv`] pumps scheduler ticks until this stream
/// progresses.  Dropping the handle does not cancel the request — use
/// [`ServingFront::cancel`].
#[derive(Debug, Clone)]
pub struct TokenStream {
    request: usize,
    shared: Arc<Mutex<StreamState>>,
}

impl TokenStream {
    /// The scheduler request index this stream belongs to — the same index
    /// [`BatchOutcome::outcomes`] uses, and the argument to
    /// [`ServingFront::cancel`].
    pub fn request(&self) -> usize {
        self.request
    }

    /// Pops the next buffered token without pumping the scheduler.
    pub fn try_next(&self) -> StreamPoll {
        let mut state = self.shared.lock();
        if let Some(token) = state.tokens.pop_front() {
            return StreamPoll::Token(token);
        }
        match state.terminal {
            Some(shed) => StreamPoll::Finished { shed },
            None => StreamPoll::Pending,
        }
    }

    /// Tokens currently buffered (generated but not yet read).
    pub fn buffered(&self) -> usize {
        self.shared.lock().tokens.len()
    }

    /// Whether the stream reached its terminal state (buffered tokens may
    /// still be unread).
    pub fn is_terminated(&self) -> bool {
        self.shared.lock().terminal.is_some()
    }
}

/// The live serving front-end inside [`KelleEngine::front`] — submit
/// requests, poll streams, cancel, drain.  See the [module docs](crate::front)
/// for the pumping and backpressure model.
pub struct ServingFront<'x, 'e> {
    scheduler: BatchScheduler<'e>,
    executor: &'x mut dyn StepExecutor<'e>,
    streams: Vec<Arc<Mutex<StreamState>>>,
    queue_capacity: Option<usize>,
    stream_capacity: Option<usize>,
    worker_losses: Vec<ServeError>,
}

impl std::fmt::Debug for ServingFront<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingFront")
            .field("submitted", &self.streams.len())
            .field("active", &self.scheduler.active())
            .field("waiting", &self.scheduler.waiting())
            .field("worker_losses", &self.worker_losses.len())
            .finish()
    }
}

impl<'x, 'e> ServingFront<'x, 'e> {
    fn new(
        scheduler: BatchScheduler<'e>,
        executor: &'x mut dyn StepExecutor<'e>,
        queue_capacity: Option<usize>,
        stream_capacity: Option<usize>,
    ) -> Self {
        Self {
            scheduler,
            executor,
            streams: Vec::new(),
            queue_capacity,
            stream_capacity,
            worker_losses: Vec::new(),
        }
    }

    /// Submits a request without blocking.  The request is admitted
    /// (pre-filled through the executor) immediately if capacity allows,
    /// else it queues; either way the returned [`TokenStream`] will carry
    /// its tokens.  Rejects with [`SubmitError::QueueFull`] when the
    /// waiting queue is at [`FrontConfig::queue_capacity`], and
    /// [`SubmitError::Draining`] after [`drain`](ServingFront::drain).
    pub fn submit(&mut self, request: ServeRequest) -> Result<TokenStream, SubmitError> {
        if self.scheduler.is_draining() {
            return Err(SubmitError::Draining);
        }
        let waiting = self.scheduler.waiting();
        if self.queue_capacity.is_some_and(|cap| waiting >= cap) {
            return Err(SubmitError::QueueFull { waiting });
        }
        let index = self.scheduler.submit_with(request, self.executor);
        debug_assert_eq!(
            index,
            self.streams.len(),
            "front registers every submission"
        );
        let shared = Arc::new(Mutex::new(StreamState::default()));
        self.streams.push(Arc::clone(&shared));
        self.deliver_sheds();
        Ok(TokenStream {
            request: index,
            shared,
        })
    }

    /// [`submit`](ServingFront::submit), pumping scheduler ticks while the
    /// queue is full.  Returns [`SubmitError::QueueFull`] only when no
    /// further progress is possible without caller action (every active
    /// stream is paused at its capacity), and
    /// [`SubmitError::Draining`] once draining.
    pub fn submit_blocking(&mut self, request: ServeRequest) -> Result<TokenStream, SubmitError> {
        loop {
            if self.scheduler.is_draining() {
                return Err(SubmitError::Draining);
            }
            let waiting = self.scheduler.waiting();
            if self.queue_capacity.is_some_and(|cap| waiting >= cap) {
                if !self.pump() {
                    return Err(SubmitError::QueueFull { waiting });
                }
                continue;
            }
            return self.submit(request);
        }
    }

    /// Runs one cooperative scheduler tick: applies stream backpressure,
    /// steps every unpaused active session through the executor, and
    /// delivers the committed tokens and sheds into their streams.  Returns
    /// whether the call made progress (delivered an event or changed
    /// admission state); `false` means pumping again is futile until the
    /// caller reads a stream or submits/cancels.
    ///
    /// An unrecoverable worker loss during the tick sheds the lost request
    /// (its stream terminates with [`ShedReason::WorkerLost`]) and is
    /// recorded in [`worker_losses`](ServingFront::worker_losses) — the
    /// front itself keeps serving.
    pub fn pump(&mut self) -> bool {
        self.apply_backpressure();
        if self.scheduler.is_idle() {
            return false;
        }
        let before = (self.scheduler.active(), self.scheduler.waiting());
        let mut delivered = 0usize;
        match self.scheduler.try_step_with(self.executor) {
            Ok(events) => {
                delivered += events.len();
                self.deliver(&events);
            }
            Err(error) => {
                self.worker_losses.push(error);
            }
        }
        delivered += self.deliver_sheds();
        let after = (self.scheduler.active(), self.scheduler.waiting());
        delivered > 0 || before != after
    }

    /// Reads the next event from `stream`, pumping scheduler ticks until it
    /// progresses.  Returns [`StreamPoll::Pending`] only if the front can
    /// make no progress at all (which cannot happen for an unpaused live
    /// stream: its request either steps or sheds).
    pub fn recv(&mut self, stream: &TokenStream) -> StreamPoll {
        loop {
            match stream.try_next() {
                StreamPoll::Pending => {
                    if !self.pump() {
                        return StreamPoll::Pending;
                    }
                }
                poll => return poll,
            }
        }
    }

    /// Cancels a request mid-stream through the executor (a parked session
    /// is recalled so its partial turn finalizes for real).  The stream
    /// terminates with [`ShedReason::Cancelled`]; tokens generated so far
    /// stay buffered and in the final outcome.  Returns `false` when the
    /// request is unknown or already finished.
    pub fn cancel(&mut self, request: usize) -> bool {
        let cancelled = self.scheduler.cancel_with(request, self.executor);
        self.deliver_sheds();
        cancelled
    }

    /// Gracefully drains the front: admission closes (terminally), every
    /// waiting request's stream terminates with [`ShedReason::Drained`],
    /// paused streams are resumed, and the active sessions are pumped to
    /// completion.  On return the scheduler is idle; worker losses along
    /// the way are absorbed into
    /// [`worker_losses`](ServingFront::worker_losses).
    pub fn drain(&mut self) {
        self.scheduler.begin_drain();
        self.deliver_sheds();
        while !self.scheduler.is_idle() {
            self.pump();
        }
    }

    /// The scheduler behind the front — queue depths, contention and
    /// [`parallel_metrics`](BatchScheduler::parallel_metrics) are all
    /// observable mid-serve.
    pub fn scheduler(&self) -> &BatchScheduler<'e> {
        &self.scheduler
    }

    /// Unrecoverable worker losses absorbed so far (each one shed its
    /// request and terminated that stream with [`ShedReason::WorkerLost`]).
    pub fn worker_losses(&self) -> &[ServeError] {
        &self.worker_losses
    }

    /// Pauses streams at their buffer capacity, resumes the ones below it.
    /// Skipped entirely while draining (drain must not stall).
    fn apply_backpressure(&mut self) {
        let Some(capacity) = self.stream_capacity else {
            return;
        };
        if self.scheduler.is_draining() {
            return;
        }
        for (index, shared) in self.streams.iter().enumerate() {
            let state = shared.lock();
            if state.terminal.is_some() {
                continue;
            }
            let paused = state.tokens.len() >= capacity;
            drop(state);
            self.scheduler.set_paused(index, paused);
        }
    }

    fn deliver(&mut self, events: &[StepEvent]) {
        for event in events {
            let mut state = self.streams[event.request].lock();
            state.tokens.push_back(event.token);
            if event.finished {
                state.terminal = Some(None);
            }
        }
    }

    fn deliver_sheds(&mut self) -> usize {
        let sheds = self.scheduler.take_shed_events();
        let count = sheds.len();
        for (request, reason) in sheds {
            let mut state = self.streams[request].lock();
            if state.terminal.is_none() {
                state.terminal = Some(Some(reason));
            }
        }
        count
    }

    /// Finishes the front after the serve closure returned: resumes every
    /// paused stream, pumps the remaining work to completion and collects
    /// the batch outcome.
    fn into_outcome(mut self) -> BatchOutcome {
        for index in 0..self.streams.len() {
            self.scheduler.set_paused(index, false);
        }
        while !self.scheduler.is_idle() {
            match self.scheduler.try_step_with(self.executor) {
                Ok(events) => self.deliver(&events),
                Err(error) => self.worker_losses.push(error),
            }
            self.deliver_sheds();
        }
        self.scheduler
            .finish()
            .expect("scheduler is idle, finish cannot fail")
    }
}

impl KelleEngine {
    /// Opens a [`ServingFront`] over this engine and hands it to `serve`.
    ///
    /// The executor ([`FrontConfig::executor`]) runs on
    /// [`workers`](crate::engine::EngineBuilder::workers) scoped threads for
    /// the duration of the call.  When `serve` returns, any requests still
    /// in flight are pumped to completion (paused streams are resumed), and
    /// the final [`BatchOutcome`] — bit-identical to
    /// the parallel [`serve`](KelleEngine::serve) path
    /// over the same submission sequence — is returned alongside the
    /// closure's result.
    ///
    /// See the [module docs](crate::front) for an end-to-end example.
    pub fn front<R>(
        &self,
        config: FrontConfig,
        serve: impl FnOnce(&mut ServingFront<'_, '_>) -> R,
    ) -> (R, BatchOutcome) {
        let FrontConfig {
            scheduler,
            executor,
            queue_capacity,
            stream_capacity,
        } = config;
        let workers = self.config().workers;
        std::thread::scope(|scope| {
            let scheduler = BatchScheduler::with_config(self, scheduler);
            match executor {
                ExecutorKind::Sticky => {
                    let mut pool = StickyShardPool::start(scope, workers);
                    let mut front =
                        ServingFront::new(scheduler, &mut pool, queue_capacity, stream_capacity);
                    let result = serve(&mut front);
                    (result, front.into_outcome())
                }
                ExecutorKind::Stealing => {
                    let mut pool = WorkerPool::start(scope, workers);
                    let mut front =
                        ServingFront::new(scheduler, &mut pool, queue_capacity, stream_capacity);
                    let result = serve(&mut front);
                    (result, front.into_outcome())
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> KelleEngine {
        KelleEngine::new(EngineConfig::default())
    }

    fn requests() -> Vec<ServeRequest> {
        vec![
            ServeRequest::new(vec![1, 2, 3, 4], 3),
            ServeRequest::new(vec![5, 6], 5),
            ServeRequest::new(vec![7, 8, 9], 2),
        ]
    }

    #[test]
    fn front_streams_match_the_synchronous_batch() {
        let engine = engine();
        let baseline = engine
            .serve(requests(), crate::engine::ServeOptions::new())
            .unwrap();
        for kind in [ExecutorKind::Sticky, ExecutorKind::Stealing] {
            let (streams, outcome) =
                engine.front(FrontConfig::default().with_executor(kind), |front| {
                    let handles: Vec<TokenStream> = requests()
                        .into_iter()
                        .map(|request| front.submit(request).expect("unbounded queue"))
                        .collect();
                    handles
                        .iter()
                        .map(|stream| {
                            let mut tokens = Vec::new();
                            loop {
                                match front.recv(stream) {
                                    StreamPoll::Token(token) => tokens.push(token),
                                    StreamPoll::Finished { shed } => {
                                        assert_eq!(shed, None);
                                        break;
                                    }
                                    StreamPoll::Pending => unreachable!("live streams progress"),
                                }
                            }
                            tokens
                        })
                        .collect::<Vec<_>>()
                });
            for (index, (tokens, reference)) in
                streams.iter().zip(baseline.outcomes.iter()).enumerate()
            {
                assert_eq!(tokens, &reference.generated, "request {index} ({kind:?})");
            }
            assert_eq!(outcome.stats, baseline.stats, "{kind:?}");
        }
    }

    #[test]
    fn queue_full_is_typed_and_submit_blocking_waits_it_out() {
        let engine = engine();
        let config = FrontConfig::default()
            .with_queue_capacity(1)
            .with_scheduler(
                SchedulerConfig::unbounded().with_kv_capacity_bytes(engine.kv_footprint_bytes(4)),
            );
        let ((), outcome) = engine.front(config, |front| {
            // Capacity hosts roughly one request: the rest queue.
            let mut streams = Vec::new();
            let mut rejected = 0usize;
            for request in requests() {
                match front.submit(request.clone()) {
                    Ok(stream) => streams.push(stream),
                    Err(SubmitError::QueueFull { waiting }) => {
                        assert_eq!(waiting, 1);
                        rejected += 1;
                        streams.push(
                            front
                                .submit_blocking(request)
                                .expect("blocking submit waits for a slot"),
                        );
                    }
                    Err(SubmitError::Draining) => unreachable!("not draining"),
                }
            }
            assert!(rejected > 0, "the tiny queue must reject at least once");
            for stream in &streams {
                loop {
                    match front.recv(stream) {
                        StreamPoll::Finished { shed } => {
                            assert_eq!(shed, None);
                            break;
                        }
                        StreamPoll::Token(_) => {}
                        StreamPoll::Pending => unreachable!("live streams progress"),
                    }
                }
            }
        });
        let baseline = engine
            .serve(requests(), crate::engine::ServeOptions::new())
            .unwrap();
        for (a, b) in outcome.outcomes.iter().zip(baseline.outcomes.iter()) {
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn stream_capacity_pauses_and_resumes_without_changing_tokens() {
        let engine = engine();
        let config = FrontConfig::default().with_stream_capacity(1);
        let (tokens, outcome) = engine.front(config, |front| {
            let slow = front
                .submit(ServeRequest::new(vec![1, 2, 3], 6))
                .expect("unbounded queue");
            let fast = front
                .submit(ServeRequest::new(vec![4, 5], 6))
                .expect("unbounded queue");
            // Drive only the fast stream; the slow one pauses at 1 buffered
            // token instead of accumulating.
            let mut fast_tokens = Vec::new();
            loop {
                match front.recv(&fast) {
                    StreamPoll::Token(token) => fast_tokens.push(token),
                    StreamPoll::Finished { .. } => break,
                    StreamPoll::Pending => unreachable!("live streams progress"),
                }
                assert!(slow.buffered() <= 1, "paused stream must not run ahead");
            }
            // Now catch up on the slow stream.
            let mut slow_tokens = Vec::new();
            loop {
                match front.recv(&slow) {
                    StreamPoll::Token(token) => slow_tokens.push(token),
                    StreamPoll::Finished { .. } => break,
                    StreamPoll::Pending => unreachable!("live streams progress"),
                }
            }
            (slow_tokens, fast_tokens)
        });
        assert_eq!(tokens.0, outcome.outcomes[0].generated);
        assert_eq!(tokens.1, outcome.outcomes[1].generated);
        let baseline = engine
            .serve(
                vec![
                    ServeRequest::new(vec![1, 2, 3], 6),
                    ServeRequest::new(vec![4, 5], 6),
                ],
                crate::engine::ServeOptions::new(),
            )
            .unwrap();
        assert_eq!(tokens.0, baseline.outcomes[0].generated);
        assert_eq!(tokens.1, baseline.outcomes[1].generated);
    }

    #[test]
    fn cancel_and_drain_terminate_streams_with_reasons() {
        let engine = engine();
        let ((), outcome) = engine.front(FrontConfig::default(), |front| {
            let doomed = front
                .submit(ServeRequest::new(vec![1, 2, 3], 50))
                .expect("unbounded queue");
            let survivor = front
                .submit(ServeRequest::new(vec![4, 5, 6], 4))
                .expect("unbounded queue");
            // A couple of ticks, then cancel the long request mid-stream.
            front.pump();
            front.pump();
            assert!(front.cancel(doomed.request()));
            assert!(!front.cancel(doomed.request()), "cancel is idempotent");
            let mut saw = Vec::new();
            loop {
                match front.recv(&doomed) {
                    StreamPoll::Token(token) => saw.push(token),
                    StreamPoll::Finished { shed } => {
                        assert_eq!(shed, Some(ShedReason::Cancelled));
                        break;
                    }
                    StreamPoll::Pending => unreachable!("terminated streams resolve"),
                }
            }
            assert!(!saw.is_empty(), "partial output is kept");
            front.drain();
            assert!(matches!(
                front.submit(ServeRequest::new(vec![9], 1)),
                Err(SubmitError::Draining)
            ));
            loop {
                match front.recv(&survivor) {
                    StreamPoll::Token(_) => {}
                    StreamPoll::Finished { shed } => {
                        assert_eq!(shed, None, "drain completes active requests");
                        break;
                    }
                    StreamPoll::Pending => unreachable!("drained front is idle"),
                }
            }
        });
        assert_eq!(outcome.outcomes[0].shed, Some(ShedReason::Cancelled));
        assert_eq!(outcome.outcomes[1].shed, None);
        assert_eq!(outcome.outcomes[1].generated.len(), 4);
    }

    #[test]
    fn sticky_front_crosses_the_queue_less_than_stealing() {
        let engine = KelleEngine::builder().workers(2).build();
        let long_lived: Vec<ServeRequest> = (0..6)
            .map(|i| ServeRequest::new(vec![i + 1, i + 2], 24))
            .collect();
        let run = |kind: ExecutorKind| {
            let requests = long_lived.clone();
            engine
                .front(FrontConfig::default().with_executor(kind), move |front| {
                    for request in requests {
                        front.submit(request).expect("unbounded queue");
                    }
                })
                .1
        };
        let sticky = run(ExecutorKind::Sticky);
        let stealing = run(ExecutorKind::Stealing);
        for (a, b) in sticky.outcomes.iter().zip(stealing.outcomes.iter()) {
            assert_eq!(a.generated, b.generated);
        }
        assert_eq!(sticky.parallel.ticks, stealing.parallel.ticks);
        assert!(
            sticky.parallel.queue_crossings < stealing.parallel.queue_crossings,
            "sticky {} !< stealing {}",
            sticky.parallel.queue_crossings,
            stealing.parallel.queue_crossings,
        );
        assert_eq!(
            sticky.parallel.sessions_migrated, 0,
            "pinning never migrates"
        );
    }
}
