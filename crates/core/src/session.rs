//! Requests and persistent serving sessions.
//!
//! A [`ServeRequest`] describes one unit of serving work — prompt, decode
//! length, and optional per-request overrides of the engine's cache policy,
//! budget and fault seed.  A [`Session`] owns the KV-cache backend and decode
//! cursor for one conversation: across turns it pre-fills *only the new
//! tokens* and reuses all earlier KV state, which is the serving lever the
//! single-shot `serve` API could not express (it re-pre-filled the whole
//! conversation every turn).

use crate::engine::KelleEngine;
use crate::faults::fault_injector_for_policy;
use crate::prefix::{PrefixHit, PrefixKey};
use kelle_arch::{InferenceWorkload, PlatformReport};
use kelle_cache::{CacheBudget, CachePolicy};
use kelle_edram::RetentionModel;
use kelle_model::fault::{FaultInjector, FaultStats, ProbabilisticFaults};
use kelle_model::generation::{
    decode_step, decode_step_with_runner, prefill, prefill_extend, DecodeStep, GenerationState,
};
use kelle_model::{CacheStats, DecodeTrace, KvCacheBackend, SegmentRecorder, SharedSegment};
use kelle_tensor::par::ParallelRunner;
use std::sync::Arc;

/// One unit of serving work.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    prompt: Vec<usize>,
    decode_len: usize,
    policy: Option<CachePolicy>,
    budget: Option<CacheBudget>,
    seed: Option<u64>,
    label: &'static str,
    deadline_ticks: Option<u64>,
    queue_timeout_ticks: Option<u64>,
    arrival_tick: u64,
}

impl ServeRequest {
    /// A request decoding `decode_len` tokens after `prompt`, with engine
    /// defaults for everything else.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `decode_len` is zero.
    pub fn new(prompt: impl Into<Vec<usize>>, decode_len: usize) -> Self {
        ServeRequestBuilder::new(prompt)
            .decode_len(decode_len)
            .build()
    }

    /// Starts builder-style construction from a prompt.
    pub fn builder(prompt: impl Into<Vec<usize>>) -> ServeRequestBuilder {
        ServeRequestBuilder::new(prompt)
    }

    /// The prompt tokens.
    pub fn prompt(&self) -> &[usize] {
        &self.prompt
    }

    /// The number of decode steps requested.
    pub fn decode_len(&self) -> usize {
        self.decode_len
    }

    /// The cache-policy override, if any.
    pub fn policy(&self) -> Option<CachePolicy> {
        self.policy
    }

    /// The budget override, if any.
    pub fn budget(&self) -> Option<CacheBudget> {
        self.budget
    }

    /// The fault-seed override, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// The workload label used in hardware reports.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The end-to-end deadline in scheduler ticks, if any.  A request still
    /// active this many ticks after submission is shed with its partial
    /// output ([`ShedReason::DeadlineExceeded`](crate::chaos::ShedReason)).
    pub fn deadline_ticks(&self) -> Option<u64> {
        self.deadline_ticks
    }

    /// The admission-queue timeout in scheduler ticks, if any.  A request
    /// still waiting this many ticks after submission is shed unserved
    /// ([`ShedReason::QueueTimeout`](crate::chaos::ShedReason)).
    pub fn queue_timeout_ticks(&self) -> Option<u64> {
        self.queue_timeout_ticks
    }

    /// The scheduler tick this request arrives at (default 0: immediately).
    /// A request submitted before its arrival tick stays invisible to
    /// admission until the scheduler's clock reaches it — the mechanism
    /// workload traces use to replay an arrival process deterministically.
    pub fn arrival_tick(&self) -> u64 {
        self.arrival_tick
    }
}

/// Builder for [`ServeRequest`].
#[derive(Debug, Clone)]
pub struct ServeRequestBuilder {
    prompt: Vec<usize>,
    decode_len: usize,
    policy: Option<CachePolicy>,
    budget: Option<CacheBudget>,
    seed: Option<u64>,
    label: &'static str,
    deadline_ticks: Option<u64>,
    queue_timeout_ticks: Option<u64>,
    arrival_tick: u64,
}

impl ServeRequestBuilder {
    fn new(prompt: impl Into<Vec<usize>>) -> Self {
        ServeRequestBuilder {
            prompt: prompt.into(),
            decode_len: 16,
            policy: None,
            budget: None,
            seed: None,
            label: "serve",
            deadline_ticks: None,
            queue_timeout_ticks: None,
            arrival_tick: 0,
        }
    }

    /// Sets the number of decode steps (default 16).
    pub fn decode_len(mut self, decode_len: usize) -> Self {
        self.decode_len = decode_len;
        self
    }

    /// Overrides the engine's default cache policy for this request.
    pub fn policy(mut self, policy: CachePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Overrides the engine's default cache budget for this request.
    pub fn budget(mut self, budget: CacheBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Overrides the engine's fault-injection seed for this request.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the workload label used in hardware reports (default `"serve"`).
    pub fn label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// Sets an end-to-end deadline in scheduler ticks (default: none).
    ///
    /// Note that a deadline changes *scheduling*, not compute: combining
    /// deadlines with bit-identity comparisons across chaos configurations
    /// is meaningless, because chaos shifts admission timing and therefore
    /// which requests get shed.
    pub fn deadline_ticks(mut self, ticks: u64) -> Self {
        self.deadline_ticks = Some(ticks);
        self
    }

    /// Sets an admission-queue timeout in scheduler ticks (default: none).
    pub fn queue_timeout_ticks(mut self, ticks: u64) -> Self {
        self.queue_timeout_ticks = Some(ticks);
        self
    }

    /// Sets the arrival tick (default 0: arrive immediately).  Deadlines and
    /// queue timeouts count from arrival, not from when the trace was loaded.
    pub fn arrival_tick(mut self, tick: u64) -> Self {
        self.arrival_tick = tick;
        self
    }

    /// Finalises the request.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or the decode length is zero.
    pub fn build(self) -> ServeRequest {
        assert!(
            !self.prompt.is_empty(),
            "prompt must contain at least one token"
        );
        assert!(self.decode_len > 0, "decode length must be non-zero");
        ServeRequest {
            prompt: self.prompt,
            decode_len: self.decode_len,
            policy: self.policy,
            budget: self.budget,
            seed: self.seed,
            label: self.label,
            deadline_ticks: self.deadline_ticks,
            queue_timeout_ticks: self.queue_timeout_ticks,
            arrival_tick: self.arrival_tick,
        }
    }
}

/// How a session's next [`prefill`](Session::prefill) call will interact
/// with the engine's prefix store, resolved *before* any model compute runs.
///
/// Planning is separated from execution for the threaded front-end
/// (`kelle::parallel`): the coordinator resolves every plan in admission
/// order (all prefix-store reads and statistics updates happen there,
/// exactly as in single-threaded serving), and the compute-only execution
/// ([`Session::prefill_planned`]) can then run on any worker.  [`Cold`]
/// (on a non-first prefill or a store miss) and [`Hit`] executions never
/// touch the store; a [`Publish`] execution writes the recorded segment to
/// the store when it completes, so the scheduler serialises admission
/// planning around it.
///
/// [`Cold`]: PrefillPlan::Cold
/// [`Hit`]: PrefillPlan::Hit
/// [`Publish`]: PrefillPlan::Publish
#[derive(Debug)]
pub(crate) enum PrefillPlan {
    /// Plain computed prefill: every token runs through the model.
    Cold,
    /// Replay the matched shared segment, then compute only the suffix.
    Hit(PrefixHit),
    /// Cold pass that records and publishes the first `boundary` tokens as a
    /// shared prefix while serving normally (the auto-publish path).
    Publish(usize),
}

impl PrefillPlan {
    /// Whether executing this plan mutates the prefix store.
    pub(crate) fn publishes(&self) -> bool {
        matches!(self, PrefillPlan::Publish(_))
    }
}

/// Everything produced by one session turn.
#[derive(Debug, Clone)]
pub struct TurnOutcome {
    /// Tokens generated during this turn's decode phase.
    pub generated: Vec<usize>,
    /// Decode trace of this turn.
    pub trace: DecodeTrace,
    /// Cache occupancy statistics at the end of the turn (cumulative over the
    /// session).
    pub cache: CacheStats,
    /// Hardware cost of this turn: pre-fill of the *new* tokens only, plus
    /// the decode steps, on the configured platform.
    pub hardware: PlatformReport,
    /// Pre-fill work actually performed this turn (new tokens only; tokens
    /// served from a shared prefix segment are excluded — their compute was
    /// paid once, at publication).
    pub prefilled_tokens: usize,
    /// Total context length (all processed tokens) after the turn.
    pub context_len: usize,
    /// Evictions performed during this turn (as opposed to the session-wide
    /// cumulative count in `cache.evictions`).
    pub evictions_delta: u64,
    /// Prompt tokens served from a shared prefix segment during this turn
    /// (non-zero only on the session's first turn, where prefix lookup
    /// happens).
    pub prefix_hit_tokens: usize,
    /// Fault-injection counters of the session at the end of the turn
    /// (cumulative across the session's turns, like `cache`).  Deterministic
    /// per seed — the parallel-equivalence suite asserts these bit-match
    /// single-threaded serving.
    pub faults: FaultStats,
}

/// A persistent serving session: one conversation's KV cache, fault stream
/// and decode cursor.
///
/// Obtained from [`KelleEngine::open_session`] or
/// [`KelleEngine::open_session_for`].  Each [`turn`](Session::turn) appends
/// new prompt tokens (pre-filling only those), decodes the requested number
/// of tokens, and reports both functional and hardware outcomes.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e KelleEngine,
    policy: CachePolicy,
    cache: Box<dyn KvCacheBackend>,
    faults: ProbabilisticFaults,
    state: GenerationState,
    context: Vec<usize>,
    turns: usize,
    recorded_evictions: u64,
    /// The session's effective configuration fingerprint for prefix sharing.
    key: PrefixKey,
    /// Tokens adopted from a shared prefix segment on the first pre-fill.
    prefix_hit_tokens: usize,
    /// Keeps the matched segment (and its refcount) alive while this
    /// session may still read its arenas zero-copy.
    prefix_segment: Option<Arc<SharedSegment>>,
    /// Prefix-hit tokens not yet attributed to a finished turn.
    pending_prefix_hit: usize,
}

impl<'e> Session<'e> {
    /// Opens a session with the engine's default policy, budget and seed.
    pub(crate) fn with_defaults(engine: &'e KelleEngine) -> Self {
        Session::build(engine, None, None, None)
    }

    /// Opens a session honouring a request's overrides.
    pub(crate) fn for_request(engine: &'e KelleEngine, request: &ServeRequest) -> Self {
        Session::build(engine, request.policy(), request.budget(), request.seed())
    }

    fn build(
        engine: &'e KelleEngine,
        policy: Option<CachePolicy>,
        budget: Option<CacheBudget>,
        seed: Option<u64>,
    ) -> Self {
        let config = engine.config();
        let policy = policy.unwrap_or(config.policy);
        let budget = budget.unwrap_or(config.budget);
        let seed = seed.unwrap_or(config.seed);
        let heads = engine.model().dims().heads;
        let cache = policy.build(budget, heads);
        let faults = fault_injector_for_policy(
            &config.refresh_policy,
            &RetentionModel::default(),
            seed ^ 0x5eed,
        );
        Session {
            engine,
            policy,
            cache,
            faults,
            state: GenerationState::new(),
            context: Vec::new(),
            turns: 0,
            recorded_evictions: 0,
            // The registry clamps budgets when building backends; the key
            // must fingerprint the same effective budget.  The seed is
            // normalised away when the refresh policy injects no faults, so
            // seed-only configuration differences still share segments.
            key: PrefixKey {
                policy,
                budget: budget.clamped(),
                seed: engine.effective_prefix_seed(seed),
            },
            prefix_hit_tokens: 0,
            prefix_segment: None,
            pending_prefix_hit: 0,
        }
    }

    /// A deep copy of this session for checkpoint/replay recovery.
    ///
    /// Everything the next decode step reads is duplicated: the KV-cache
    /// backend (via [`KvCacheBackend::clone_box`]), the fault-RNG stream,
    /// the generation cursor and the context.  A shared prefix segment is
    /// *not* duplicated — the `Arc` is cloned, which is exactly right: the
    /// segment is immutable and its ledger/tier accounting is keyed on the
    /// original attach, so a fork is accounting-neutral.  Replaying a step
    /// on the fork therefore produces bit-identical tokens, probability
    /// bits and fault statistics to the step the original would have run.
    pub(crate) fn fork(&self) -> Session<'e> {
        Session {
            engine: self.engine,
            policy: self.policy,
            cache: self.cache.clone_box(),
            faults: self.faults.clone(),
            state: self.state.clone(),
            context: self.context.clone(),
            turns: self.turns,
            recorded_evictions: self.recorded_evictions,
            key: self.key,
            prefix_hit_tokens: self.prefix_hit_tokens,
            prefix_segment: self.prefix_segment.clone(),
            pending_prefix_hit: self.pending_prefix_hit,
        }
    }

    /// The cache policy this session runs.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// All input tokens processed so far (prompt tokens of every turn plus
    /// the decode-time input chain), in sequence order.  Feeding this exact
    /// sequence to a fresh one-shot request reproduces the session's KV state
    /// under a non-evicting policy.
    pub fn context(&self) -> &[usize] {
        &self.context
    }

    /// The next sequence position (total tokens processed).
    pub fn position(&self) -> usize {
        self.state.position()
    }

    /// Total prompt tokens whose prefill was actually **computed** across all
    /// turns.  Two kinds of prompt tokens are excluded: earlier turns'
    /// context (each turn pre-fills only its new tokens), and tokens replayed
    /// from a shared prefix segment on the first turn — their transformer
    /// compute was paid once, at publication, and is reported by
    /// [`prefix_hit_tokens`](Session::prefix_hit_tokens) instead.
    ///
    /// ```
    /// use kelle::{KelleEngine, PrefixSharingConfig};
    ///
    /// let engine = KelleEngine::builder()
    ///     .prefix_sharing(PrefixSharingConfig::enabled())
    ///     .build();
    /// let prefix: Vec<usize> = (0..8).collect();
    /// assert!(engine.publish_prefix(&prefix));
    ///
    /// let mut session = engine.open_session();
    /// let mut prompt = prefix.clone();
    /// prompt.extend([100, 101]);
    /// session.prefill(&prompt);
    /// // The 8 prefix tokens were replayed, not computed: only the
    /// // two-token suffix counts as prefill work.
    /// assert_eq!(session.prefilled_tokens(), 2);
    /// assert_eq!(session.prefix_hit_tokens(), 8);
    /// ```
    pub fn prefilled_tokens(&self) -> usize {
        self.state.prefilled_tokens()
    }

    /// Number of completed turns.
    pub fn turns(&self) -> usize {
        self.turns
    }

    /// Current cache occupancy statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fault-injection counters accumulated by this session (words examined,
    /// bits flipped).  A prefix-cache hit resumes the publication snapshot's
    /// stream, so these match a cold session's counters bit for bit.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Prompt tokens this session served from a shared prefix segment (zero
    /// when sharing is disabled or the first prompt missed).
    pub fn prefix_hit_tokens(&self) -> usize {
        self.prefix_hit_tokens
    }

    /// The session's effective configuration fingerprint for prefix sharing.
    pub(crate) fn prefix_key(&self) -> &PrefixKey {
        &self.key
    }

    /// Appends `tokens` to the session context, pre-filling only them (no
    /// decoding).  Returns the number of tokens whose prefill was actually
    /// *computed*: on the session's first pre-fill with prefix sharing
    /// enabled, a store hit replays the matched prefix from its shared
    /// segment (bit-identical state, zero model compute) and only the
    /// unmatched suffix is computed.
    ///
    /// # Panics
    ///
    /// Panics if the session has no context yet and `tokens` is empty.
    pub fn prefill(&mut self, tokens: &[usize]) -> usize {
        let plan = self.plan_prefill(tokens);
        self.prefill_planned(tokens, plan)
    }

    /// Resolves how the next [`prefill`](Session::prefill) of `tokens` will
    /// interact with the prefix store — this is where *all* store reads (and
    /// their hit/miss statistics) happen, so the batch scheduler can plan
    /// admissions in order on the coordinating thread and execute the
    /// compute anywhere.
    pub(crate) fn plan_prefill(&mut self, tokens: &[usize]) -> PrefillPlan {
        if self.context.is_empty() && !tokens.is_empty() {
            // Publishing the configured boundary takes precedence over
            // hitting a *shorter* published prefix: one cold pass here and
            // the whole fleet hits the deeper boundary from now on.  (The
            // boundary check probes the exact boundary, so once it is
            // published this arm stays cold.)
            if let Some(boundary) = self.auto_publish_boundary(tokens) {
                return PrefillPlan::Publish(boundary);
            }
            if let Some(hit) = self.engine.prefix_lookup(tokens, &self.key) {
                return PrefillPlan::Hit(hit);
            }
        }
        PrefillPlan::Cold
    }

    /// Executes a previously resolved [`PrefillPlan`] for `tokens`.  `Cold`
    /// and `Hit` plans never touch the prefix store; a `Publish` plan writes
    /// the recorded segment when the pass completes.  `prefill` is exactly
    /// `plan_prefill` + `prefill_planned`, so the two-phase path is
    /// bit-identical to single-call prefilling by construction.
    pub(crate) fn prefill_planned(&mut self, tokens: &[usize], plan: PrefillPlan) -> usize {
        match plan {
            PrefillPlan::Publish(boundary) => self.prefill_publishing(tokens, boundary),
            PrefillPlan::Hit(hit) => self.prefill_shared(tokens, hit),
            PrefillPlan::Cold => {
                let count = prefill(
                    self.engine.model(),
                    &mut self.state,
                    tokens,
                    self.cache.as_mut(),
                    &mut self.faults,
                );
                self.context.extend_from_slice(tokens);
                count
            }
        }
    }

    /// The prefix-store hit path: replay the matched segment, compute only
    /// the suffix, and finish pre-fill once (the cold call sequence).
    /// Returns the computed token count.
    fn prefill_shared(&mut self, tokens: &[usize], hit: PrefixHit) -> usize {
        let matched = hit.matched;
        debug_assert_eq!(
            hit.segment.len(),
            matched,
            "store hands out exact boundaries"
        );
        hit.segment.attach_and_replay(self.cache.as_mut());
        self.state.adopt_prefix(matched, hit.segment.logits());
        self.faults = hit.segment.faults_snapshot();
        self.context.extend_from_slice(&tokens[..matched]);
        let rest = &tokens[matched..];
        let computed = if rest.is_empty() {
            0
        } else {
            let computed = prefill_extend(
                self.engine.model(),
                &mut self.state,
                rest,
                self.cache.as_mut(),
                &mut self.faults,
            );
            self.context.extend_from_slice(rest);
            computed
        };
        self.cache.finish_prefill(self.state.position());
        self.prefix_hit_tokens = matched;
        self.pending_prefix_hit = matched;
        self.prefix_segment = Some(hit.segment);
        computed
    }

    /// Whether this cold first prompt should auto-publish a boundary, and
    /// where.
    fn auto_publish_boundary(&self, tokens: &[usize]) -> Option<usize> {
        let config = self.engine.prefix_config();
        if !config.enabled {
            return None;
        }
        let boundary = config.auto_publish_tokens?;
        if boundary < config.min_tokens || tokens.len() < boundary {
            return None;
        }
        // Probe the exact boundary: once it is published, sessions take the
        // hit path instead of re-recording.  A *shorter* published match
        // deliberately still returns `Some` — the fleet should deepen to
        // the configured boundary rather than keep hitting the shallow one.
        match self.engine.prefix_probe(&tokens[..boundary], &self.key) {
            Some((_, matched)) if matched == boundary => None,
            _ => Some(boundary),
        }
    }

    /// Cold first pre-fill that records and publishes `tokens[..boundary]`
    /// as a shared boundary while serving normally.
    fn prefill_publishing(&mut self, tokens: &[usize], boundary: usize) -> usize {
        let segment = {
            let mut recorder = SegmentRecorder::new(self.cache.as_mut());
            prefill_extend(
                self.engine.model(),
                &mut self.state,
                &tokens[..boundary],
                &mut recorder,
                &mut self.faults,
            );
            recorder
        };
        let segment = Arc::new(segment.finish(self.state.last_logits(), self.faults.clone()));
        self.engine
            .prefix_publish(&tokens[..boundary], self.key, segment);
        let rest = &tokens[boundary..];
        let mut count = boundary;
        if !rest.is_empty() {
            count += prefill_extend(
                self.engine.model(),
                &mut self.state,
                rest,
                self.cache.as_mut(),
                &mut self.faults,
            );
        }
        self.cache.finish_prefill(self.state.position());
        self.context.extend_from_slice(tokens);
        count
    }

    /// Records a publication pre-fill of `tokens` on this fresh session and
    /// returns the frozen segment (the engine's `publish_prefix` driver).
    ///
    /// # Panics
    ///
    /// Panics if the session already has context or `tokens` is empty.
    pub(crate) fn record_prefix(&mut self, tokens: &[usize]) -> Arc<SharedSegment> {
        assert!(
            self.context.is_empty(),
            "prefix publication requires a fresh session"
        );
        assert!(!tokens.is_empty(), "cannot publish an empty prefix");
        let recorder = {
            let mut recorder = SegmentRecorder::new(self.cache.as_mut());
            prefill_extend(
                self.engine.model(),
                &mut self.state,
                tokens,
                &mut recorder,
                &mut self.faults,
            );
            recorder
        };
        self.context.extend_from_slice(tokens);
        Arc::new(recorder.finish(self.state.last_logits(), self.faults.clone()))
    }

    /// Records a *nested prefix hierarchy* in one pre-fill pass: the
    /// transformer runs over `tokens` exactly once, and a segment is frozen
    /// at every boundary in `boundaries` (strictly increasing prefix
    /// lengths; the last may equal `tokens.len()`).  Each returned segment
    /// carries the cursor state (logits + fault RNG) *at its own boundary*,
    /// so replaying it is bit-identical to a cold pre-fill of just that
    /// prefix — this is how system prompt → tool preamble → user history
    /// hierarchies publish every level for the cost of one recording.
    ///
    /// Chunked pre-fill is bit-identical to one-shot pre-fill (the
    /// generation suite proves it), so segment `k` is exactly what
    /// [`record_prefix`](Session::record_prefix) of `tokens[..boundaries[k]]`
    /// would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the session has context, `boundaries` is empty or not
    /// strictly increasing, or any boundary is zero or beyond `tokens`.
    pub(crate) fn record_prefix_hierarchy(
        &mut self,
        tokens: &[usize],
        boundaries: &[usize],
    ) -> Vec<Arc<SharedSegment>> {
        assert!(
            self.context.is_empty(),
            "prefix publication requires a fresh session"
        );
        assert!(
            !boundaries.is_empty(),
            "hierarchy needs at least one boundary"
        );
        let mut recorder = SegmentRecorder::new(self.cache.as_mut());
        let mut start = 0;
        for &boundary in boundaries {
            assert!(
                boundary > start && boundary <= tokens.len(),
                "boundaries must be strictly increasing and within the prefix"
            );
            prefill_extend(
                self.engine.model(),
                &mut self.state,
                &tokens[start..boundary],
                &mut recorder,
                &mut self.faults,
            );
            recorder.mark_boundary(self.state.last_logits(), self.faults.clone());
            start = boundary;
        }
        let segments = recorder.finish_hierarchy();
        self.context.extend_from_slice(&tokens[..start]);
        segments.into_iter().map(Arc::new).collect()
    }

    /// Runs exactly one decode step, returning the chosen token, its
    /// distribution and the trace record.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pre-filled yet.
    pub fn decode_one(&mut self) -> DecodeStep {
        if let Some(input) = self.state.next_token() {
            self.context.push(input);
        }
        decode_step(
            self.engine.model(),
            &mut self.state,
            None,
            self.cache.as_mut(),
            &mut self.faults,
        )
    }

    /// [`decode_one`](Session::decode_one) with the step's per-head
    /// attention and projection row blocks fanned out through `runner` —
    /// the intra-session axis of `kelle::parallel`.  Bit-identical to
    /// [`decode_one`](Session::decode_one) for every lane count: same
    /// token, same probability bits, same fault statistics.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pre-filled yet.
    pub fn decode_one_with(&mut self, runner: &dyn ParallelRunner) -> DecodeStep {
        if let Some(input) = self.state.next_token() {
            self.context.push(input);
        }
        decode_step_with_runner(
            self.engine.model(),
            &mut self.state,
            None,
            self.cache.as_mut(),
            &mut self.faults,
            runner,
        )
    }

    /// Serves one turn: pre-fills the turn's `tokens` (reusing all earlier
    /// KV state) and decodes `decode_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `decode_len` is zero, or on the first turn if `tokens` is
    /// empty.
    pub fn turn(&mut self, tokens: &[usize], decode_len: usize) -> TurnOutcome {
        self.turn_streaming(tokens, decode_len, |_| {})
    }

    /// Like [`turn`](Session::turn), invoking `on_token` as each token is
    /// generated.
    pub fn turn_streaming(
        &mut self,
        tokens: &[usize],
        decode_len: usize,
        on_token: impl FnMut(usize),
    ) -> TurnOutcome {
        self.run_turn(tokens, decode_len, "serve", on_token)
    }

    /// [`turn_streaming`](Session::turn_streaming) with an explicit workload
    /// label for the hardware report (used by the request-driven entry
    /// points so `ServeRequest::label` is honoured everywhere).
    pub(crate) fn run_turn(
        &mut self,
        tokens: &[usize],
        decode_len: usize,
        label: &'static str,
        mut on_token: impl FnMut(usize),
    ) -> TurnOutcome {
        assert!(decode_len > 0, "decode length must be non-zero");
        let prefilled = self.prefill(tokens);
        let mut generated = Vec::with_capacity(decode_len);
        let mut trace = DecodeTrace::default();
        for _ in 0..decode_len {
            let step = self.decode_one();
            on_token(step.token);
            generated.push(step.token);
            trace.steps.push(step.record);
        }
        self.finish_turn(generated, trace, prefilled, decode_len, label, None)
    }

    /// Assembles a [`TurnOutcome`] from collected decode results, simulates
    /// the turn's hardware cost and folds it into the engine statistics.
    /// Shared by [`run_turn`](Session::run_turn) and the batch scheduler.
    ///
    /// `kv_capacity_bytes` is the on-chip KV residency granted to this turn
    /// under shared-capacity arbitration (`None` = the whole KV memory, the
    /// single-tenant default): KV bytes beyond the grant are charged at DRAM
    /// access cost.  The grant only changes the *hardware* cost model — the
    /// generated tokens were already sampled and are never affected.
    pub(crate) fn finish_turn(
        &mut self,
        generated: Vec<usize>,
        trace: DecodeTrace,
        prefilled_tokens: usize,
        decode_len: usize,
        label: &'static str,
        kv_capacity_bytes: Option<u64>,
    ) -> TurnOutcome {
        let config = self.engine.config();
        // The decode phase attends over the whole accumulated context, while
        // pre-fill work covers only this turn's new tokens — the reused
        // prefix is charged to the turns that built it.
        let context_at_decode_start = self.state.position().saturating_sub(decode_len).max(1);
        let reused = context_at_decode_start - prefilled_tokens.min(context_at_decode_start);
        let workload = InferenceWorkload::new(
            label,
            context_at_decode_start,
            decode_len.max(1),
            config.batch,
        )
        .with_reused_context(reused)
        .with_kv_capacity_bytes(kv_capacity_bytes);
        let hardware = self.engine.platform().simulate(
            self.engine.model().config(),
            &workload,
            Some(config.hardware_n_prime),
        );
        let cache = self.cache.stats();
        let evictions_delta = cache.evictions - self.recorded_evictions;
        self.recorded_evictions = cache.evictions;
        self.turns += 1;
        let outcome = TurnOutcome {
            generated,
            trace,
            cache,
            hardware,
            prefilled_tokens,
            context_len: self.state.position(),
            evictions_delta,
            prefix_hit_tokens: std::mem::take(&mut self.pending_prefix_hit),
            faults: self.faults.stats(),
        };
        self.engine.record_turn(&outcome);
        outcome
    }
}

// Sessions move between the coordinator and the worker shards of the
// threaded serving front-end (`crate::parallel`).  This fails the build —
// here, with a comment — if any per-session component (cache backend, fault
// RNG, generation state, prefix segment handle) stops being `Send`.
#[allow(dead_code)]
fn assert_sessions_are_send(session: Session<'_>) -> impl Send + '_ {
    session
}
