//! Cross-session prefix KV sharing: the radix-indexed shared-segment store.
//!
//! Edge chatbots serve many concurrent sessions that overwhelmingly share a
//! common system prompt.  Without sharing, that prompt's KV is recomputed
//! *and stored* once per session — pure waste on a device whose whole design
//! problem is that on-chip KV capacity is scarce.  This module is the fix: a
//! token-level **radix-tree prefix index** mapping published token prefixes
//! to refcounted [`SharedSegment`]s (recorded, replayable KV snapshots built
//! on `kelle_model::arena` — see that module for the copy-on-evict arena
//! mechanics), plus the [`PrefixStore`] the engine consults on every
//! session's first pre-fill.
//!
//! # Lifecycle
//!
//! ```text
//!   publish ─────────────────────────────────────────────────────────────
//!     KelleEngine::publish_prefix(tokens)   (or auto-publish at a
//!         │                                  configured boundary)
//!         ▼
//!     one cold pre-fill through a SegmentRecorder
//!         │   · raw per-(layer, head) KV arenas      (the refcounted base)
//!         │   · insert/observe call sequence          (the replay script)
//!         │   · post-prefix logits + fault-RNG state  (the cursor snapshot)
//!         ▼
//!     PrefixStore::publish → radix node gains an entry under the
//!     session's PrefixKey (policy, budget, seed)
//!
//!   hit ─────────────────────────────────────────────────────────────────
//!     Session::prefill(first prompt)
//!         │  radix longest-match under the session's PrefixKey
//!         ▼
//!     SharedSegment::attach_and_replay
//!         │   · backend adopts the shared arenas zero-copy (raw-KV
//!         │     policies) or replays private copies (quantizing policies)
//!         │   · replayed call sequence ⇒ bit-identical backend state
//!         │   · logits + fault snapshot ⇒ bit-identical decode stream
//!         ▼
//!     prefill continues over the unmatched suffix only
//!     (the prefix's transformer compute is *skipped*)
//!
//!   miss ────────────────────────────────────────────────────────────────
//!     plain cold pre-fill (optionally recording, see auto-publish)
//!
//!   evict (per session) ─────────────────────────────────────────────────
//!     a policy eviction reaching into the shared region privatizes that
//!     arena first (copy-on-evict); the published copy is immutable and
//!     other sessions keep reading it
//! ```
//!
//! # Equivalence guarantee
//!
//! A cache-hit session produces **bit-identical token streams, probability
//! distributions and fault statistics** to a cold session serving the same
//! prompt under the same configuration.  This holds because (a) a backend's
//! state is a deterministic function of its insert/observe call sequence,
//! which the replay reproduces verbatim; (b) the fault-injector RNG is
//! snapshotted at the publication boundary and restored on every hit; and
//! (c) sharing is only offered under an exactly-matching [`PrefixKey`] —
//! the integration and property tests assert this for all five policies.
//!
//! # Complexity
//!
//! [`RadixPrefixIndex::longest_match`] walks compressed edges and compares
//! at most one token per matched position: **O(matched prefix length)**,
//! independent of how many prefixes are published (pinned by a unit test on
//! [`RadixPrefixIndex::match_cost`] and a criterion micro-benchmark with
//! 1 000 published prefixes).

use kelle_cache::{CacheBudget, CachePolicy};
use kelle_model::{FastHashMap, SharedSegment};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of engine-level prefix sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixSharingConfig {
    /// Master switch.  Disabled by default: sharing never changes token
    /// streams, but it does change capacity accounting and store state, so
    /// it is opt-in.
    pub enabled: bool,
    /// When set, a session's *first* cold prompt auto-publishes its first
    /// `auto_publish_tokens` tokens as a shared boundary (if the prompt is
    /// at least that long and no boundary is published there yet).  This is
    /// how a fleet sharing a known-length system prompt warms the store
    /// without an explicit [`publish_prefix`](crate::KelleEngine::publish_prefix)
    /// call.
    pub auto_publish_tokens: Option<usize>,
    /// Minimum prefix length worth publishing (guards the store against
    /// trivial one-token boundaries).
    pub min_tokens: usize,
    /// Byte budget for the store's resident segments.  When a publication
    /// pushes [`PrefixStoreStats::resident_bytes`] past this budget, the
    /// least-recently-used entries are evicted until the store fits again
    /// (`None` = unbounded, the default).  Eviction never changes token
    /// streams: sessions holding the segment keep their `Arc` (and the
    /// capacity ledger keeps its shared-pool entry until the last detach);
    /// later sessions simply take the cold path, which is bit-identical to
    /// the hit path by the store's equivalence guarantee.
    pub store_budget_bytes: Option<u64>,
    /// Time-to-live for store entries, measured in store operations
    /// (publications + lookups).  An entry not matched for this many
    /// operations is expired at the next publication (`None` = never, the
    /// default).
    pub ttl_lookups: Option<u64>,
}

impl Default for PrefixSharingConfig {
    fn default() -> Self {
        PrefixSharingConfig {
            enabled: false,
            auto_publish_tokens: None,
            min_tokens: 4,
            store_budget_bytes: None,
            ttl_lookups: None,
        }
    }
}

impl PrefixSharingConfig {
    /// Sharing enabled with explicit publication only.
    pub fn enabled() -> Self {
        PrefixSharingConfig {
            enabled: true,
            ..PrefixSharingConfig::default()
        }
    }

    /// Sharing enabled with auto-publication at a fixed boundary (builder
    /// style).
    pub fn with_auto_publish(mut self, tokens: usize) -> Self {
        self.auto_publish_tokens = Some(tokens);
        self
    }

    /// Overrides the minimum publishable prefix length (builder style).
    pub fn with_min_tokens(mut self, tokens: usize) -> Self {
        self.min_tokens = tokens;
        self
    }

    /// Caps the store's resident segment bytes, enabling LRU eviction
    /// (builder style).
    pub fn with_store_budget_bytes(mut self, bytes: u64) -> Self {
        self.store_budget_bytes = Some(bytes);
        self
    }

    /// Expires entries unmatched for `ops` store operations (builder style).
    pub fn with_ttl_lookups(mut self, ops: u64) -> Self {
        self.ttl_lookups = Some(ops);
        self
    }
}

/// The configuration fingerprint a published segment is only valid for.
///
/// A segment snapshots policy state and the fault-RNG stream, so a hit is
/// only bit-equivalent for sessions running the *exact* same effective
/// policy, budget and fault seed.  (The refresh policy and model are fixed
/// per engine; the store lives on the engine, so they need no key field.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixKey {
    /// Effective cache policy of the session.
    pub policy: CachePolicy,
    /// Effective cache budget.
    pub budget: CacheBudget,
    /// Effective fault seed.
    pub seed: u64,
}

/// One published entry: a segment under its configuration key.
#[derive(Debug, Clone)]
struct PrefixEntry {
    id: u64,
    key: PrefixKey,
    segment: Arc<SharedSegment>,
}

/// A successful prefix lookup.
#[derive(Debug, Clone)]
pub struct PrefixHit {
    /// Store-wide identity of the matched entry (the shared-pool lease tag).
    pub id: u64,
    /// Matched prefix length in tokens.
    pub matched: usize,
    /// The segment to attach and replay.
    pub segment: Arc<SharedSegment>,
}

/// Aggregate statistics of a [`PrefixStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PrefixStoreStats {
    /// Boundaries published.
    pub published: u64,
    /// Tokens covered by published boundaries (sum of prefix lengths).
    pub published_tokens: u64,
    /// Lookups that matched a boundary.
    pub hits: u64,
    /// First-prefill lookups that matched nothing.
    pub misses: u64,
    /// Tokens whose prefill compute was skipped thanks to hits.
    pub hit_tokens: u64,
    /// Surrogate-scale KV bytes of all published segments (each counted
    /// once — the resident cost of the store itself).
    pub resident_bytes: u64,
    /// Entries evicted to honour the store budget or TTL.
    pub evictions: u64,
    /// Segment bytes released by those evictions.
    pub evicted_bytes: u64,
}

// ---------------------------------------------------------------------------
// Radix index
// ---------------------------------------------------------------------------

/// A compressed (Patricia-style) radix tree over token sequences.
///
/// Each edge carries a multi-token label; values live at the node a
/// published sequence ends on.  `V` is generic so the index can be tested
/// and benchmarked independently of segments.
#[derive(Debug)]
pub struct RadixPrefixIndex<V> {
    root: RadixNode<V>,
    boundaries: usize,
}

#[derive(Debug)]
struct RadixNode<V> {
    values: Vec<V>,
    children: FastHashMap<usize, RadixEdge<V>>,
}

#[derive(Debug)]
struct RadixEdge<V> {
    label: Vec<usize>,
    node: Box<RadixNode<V>>,
}

impl<V> Default for RadixNode<V> {
    fn default() -> Self {
        RadixNode {
            values: Vec::new(),
            children: FastHashMap::default(),
        }
    }
}

fn common_len(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl<V> Default for RadixPrefixIndex<V> {
    fn default() -> Self {
        RadixPrefixIndex {
            root: RadixNode::default(),
            boundaries: 0,
        }
    }
}

impl<V> RadixPrefixIndex<V> {
    /// An empty index.
    pub fn new() -> Self {
        RadixPrefixIndex::default()
    }

    /// Number of boundary nodes holding at least one value.
    pub fn boundaries(&self) -> usize {
        self.boundaries
    }

    /// The value list at the exact boundary `seq`, creating the path (and
    /// splitting edges) as needed.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is empty (the empty prefix is not a boundary).
    pub fn values_at_mut(&mut self, seq: &[usize]) -> &mut Vec<V> {
        assert!(!seq.is_empty(), "cannot index the empty prefix");
        Self::descend_mut(&mut self.root, seq)
    }

    /// Records that a previously empty boundary now holds values (called by
    /// the store after pushing into [`values_at_mut`](Self::values_at_mut)).
    fn note_boundary(&mut self) {
        self.boundaries += 1;
    }

    fn descend_mut<'a>(node: &'a mut RadixNode<V>, seq: &[usize]) -> &'a mut Vec<V> {
        if seq.is_empty() {
            return &mut node.values;
        }
        let first = seq[0];
        // Not the entry API: an early `return` of the vacant-entry borrow
        // would pin `node.children` for `'a` and conflict with the re-borrow
        // after the edge split below.
        #[allow(clippy::map_entry)]
        if !node.children.contains_key(&first) {
            node.children.insert(
                first,
                RadixEdge {
                    label: seq.to_vec(),
                    node: Box::new(RadixNode::default()),
                },
            );
            return &mut node
                .children
                .get_mut(&first)
                .expect("just inserted")
                .node
                .values;
        }
        let edge = node.children.get_mut(&first).expect("checked above");
        let common = common_len(&edge.label, seq);
        if common < edge.label.len() {
            // Split the edge: keep the common part, push the old child one
            // level down under the label remainder.
            let suffix = edge.label.split_off(common);
            let old_child = std::mem::replace(&mut edge.node, Box::new(RadixNode::default()));
            edge.node.children.insert(
                suffix[0],
                RadixEdge {
                    label: suffix,
                    node: old_child,
                },
            );
        }
        let edge = node.children.get_mut(&first).expect("checked above");
        Self::descend_mut(&mut edge.node, &seq[common..])
    }

    /// The deepest published boundary that is a prefix of `seq` and holds a
    /// value accepted by `pred`.  Returns `(matched_len, value)`.
    ///
    /// Cost: O(matched prefix length) token comparisons — never a function
    /// of how many boundaries are published (see
    /// [`match_cost`](Self::match_cost)).
    pub fn longest_match<'a>(
        &'a self,
        seq: &[usize],
        mut pred: impl FnMut(&V) -> bool,
    ) -> Option<(usize, &'a V)> {
        let mut node = &self.root;
        let mut depth = 0usize;
        let mut best: Option<(usize, &V)> = None;
        loop {
            if depth > 0 {
                if let Some(v) = node.values.iter().find(|v| pred(v)) {
                    best = Some((depth, v));
                }
            }
            let Some(edge) = seq.get(depth).and_then(|t| node.children.get(t)) else {
                return best;
            };
            let rest = &seq[depth..];
            if rest.len() < edge.label.len() || common_len(&edge.label, rest) < edge.label.len() {
                // The edge label is not fully contained in `seq`: no deeper
                // boundary can be a prefix of it.
                return best;
            }
            depth += edge.label.len();
            node = &edge.node;
        }
    }

    /// Removes the values accepted by `pred` at the exact boundary `seq`,
    /// returning them.  The boundary count drops when a node's value list
    /// empties.  Edges are deliberately *not* merged back: the compressed
    /// paths stay valid for matching, and re-publication at the same
    /// boundary reuses them — matching cost stays O(query length) either
    /// way.
    pub fn remove_at(&mut self, seq: &[usize], mut pred: impl FnMut(&V) -> bool) -> Vec<V> {
        let RadixPrefixIndex { root, boundaries } = self;
        let mut node = root;
        let mut depth = 0usize;
        loop {
            if depth == seq.len() {
                let had_values = !node.values.is_empty();
                let mut kept = Vec::new();
                let mut removed = Vec::new();
                for v in node.values.drain(..) {
                    if pred(&v) {
                        removed.push(v);
                    } else {
                        kept.push(v);
                    }
                }
                node.values = kept;
                if had_values && node.values.is_empty() {
                    *boundaries -= 1;
                }
                return removed;
            }
            let rest = &seq[depth..];
            let Some(edge) = node.children.get_mut(&rest[0]) else {
                return Vec::new();
            };
            if rest.len() < edge.label.len() || common_len(&edge.label, rest) < edge.label.len() {
                return Vec::new();
            }
            depth += edge.label.len();
            node = &mut edge.node;
        }
    }

    /// Number of token comparisons a [`longest_match`](Self::longest_match)
    /// of `seq` performs — the instrumented twin the O(matched) tests and
    /// the criterion micro-benchmark pin.
    pub fn match_cost(&self, seq: &[usize]) -> usize {
        let mut node = &self.root;
        let mut depth = 0usize;
        let mut cost = 0usize;
        loop {
            let Some(edge) = seq.get(depth).and_then(|t| node.children.get(t)) else {
                return cost;
            };
            let rest = &seq[depth..];
            let common = common_len(&edge.label, rest);
            cost += common.min(rest.len()).max(1);
            if rest.len() < edge.label.len() || common < edge.label.len() {
                return cost;
            }
            depth += edge.label.len();
            node = &edge.node;
        }
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Recency/size bookkeeping for one published entry, kept outside the radix
/// tree so eviction can scan candidates without walking it.
#[derive(Debug, Clone)]
struct EntryMeta {
    /// The exact boundary the entry is published at (needed to remove it).
    tokens: Vec<usize>,
    /// Resident segment bytes.
    bytes: u64,
    /// Store clock at publication or last matching lookup.
    last_used: u64,
}

/// The engine-owned store of published prefixes (behind the engine's mutex).
#[derive(Debug, Default)]
pub struct PrefixStore {
    index: RadixPrefixIndex<PrefixEntry>,
    next_id: u64,
    stats: PrefixStoreStats,
    /// Resident-byte budget (`None` = unbounded).
    budget_bytes: Option<u64>,
    /// Idle-operation TTL (`None` = never expire).
    ttl_lookups: Option<u64>,
    /// Logical clock: one tick per mutating store operation (publish or
    /// lookup).  Wholly deterministic — no wall time anywhere.
    clock: u64,
    /// Per-entry recency metadata, keyed by entry id.
    meta: FastHashMap<u64, EntryMeta>,
}

impl PrefixStore {
    /// An empty store.
    pub fn new() -> Self {
        PrefixStore::default()
    }

    /// An empty store with a resident-byte budget and/or an idle TTL (in
    /// store operations), per [`PrefixSharingConfig::store_budget_bytes`]
    /// and [`PrefixSharingConfig::ttl_lookups`].
    pub fn with_limits(budget_bytes: Option<u64>, ttl_lookups: Option<u64>) -> Self {
        PrefixStore {
            budget_bytes,
            ttl_lookups,
            ..PrefixStore::default()
        }
    }

    /// Store statistics.
    pub fn stats(&self) -> PrefixStoreStats {
        self.stats
    }

    /// Number of published boundaries (radix nodes with entries).
    pub fn boundaries(&self) -> usize {
        self.index.boundaries()
    }

    /// Whether an entry for exactly `tokens` under `key` exists.
    pub fn contains(&self, tokens: &[usize], key: &PrefixKey) -> bool {
        self.index
            .longest_match(tokens, |e| e.key == *key)
            .is_some_and(|(len, _)| len == tokens.len())
    }

    /// Publishes a segment at the exact boundary `tokens` under `key`.
    /// Returns the entry id, or `None` if an entry for that boundary and key
    /// already exists (first publication wins; segments are immutable).
    pub fn publish(
        &mut self,
        tokens: &[usize],
        key: PrefixKey,
        segment: Arc<SharedSegment>,
    ) -> Option<u64> {
        assert_eq!(
            segment.len(),
            tokens.len(),
            "segment length must match the published boundary"
        );
        self.clock += 1;
        let values = self.index.values_at_mut(tokens);
        if values.iter().any(|e| e.key == key) {
            return None;
        }
        let was_empty = values.is_empty();
        let id = self.next_id;
        self.next_id += 1;
        let bytes = segment.bytes_fp16() as u64;
        self.stats.published += 1;
        self.stats.published_tokens += tokens.len() as u64;
        self.stats.resident_bytes += bytes;
        values.push(PrefixEntry { id, key, segment });
        if was_empty {
            self.index.note_boundary();
        }
        self.meta.insert(
            id,
            EntryMeta {
                tokens: tokens.to_vec(),
                bytes,
                last_used: self.clock,
            },
        );
        self.enforce();
        Some(id)
    }

    /// Longest-prefix lookup under `key`, updating hit/miss statistics and
    /// the matched entry's recency.
    pub fn lookup(&mut self, tokens: &[usize], key: &PrefixKey) -> Option<PrefixHit> {
        self.clock += 1;
        match self.index.longest_match(tokens, |e| e.key == *key) {
            Some((matched, entry)) => {
                self.stats.hits += 1;
                self.stats.hit_tokens += matched as u64;
                let hit = PrefixHit {
                    id: entry.id,
                    matched,
                    segment: Arc::clone(&entry.segment),
                };
                if let Some(meta) = self.meta.get_mut(&hit.id) {
                    meta.last_used = self.clock;
                }
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Applies TTL expiry and LRU eviction until the store honours its
    /// resident-byte budget.  Called after every publication; a store built
    /// by [`new`](Self::new) has no limits and this is a no-op.
    ///
    /// Eviction order is fully deterministic: stalest `last_used` first,
    /// entry id as the tie-break.  Evicting an entry that sessions still
    /// reference is safe — they hold their own `Arc<SharedSegment>` (and the
    /// capacity ledger keeps the shared-pool lease until the last detach),
    /// so only *future* lookups are affected, and those take the cold path
    /// which is bit-identical by the store's equivalence guarantee.
    fn enforce(&mut self) {
        if let Some(ttl) = self.ttl_lookups {
            let mut expired: Vec<u64> = self
                .meta
                .iter()
                .filter(|(_, m)| self.clock.saturating_sub(m.last_used) > ttl)
                .map(|(id, _)| *id)
                .collect();
            expired.sort_unstable();
            for id in expired {
                self.evict(id);
            }
        }
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while self.stats.resident_bytes > budget {
            let Some(victim) = self
                .meta
                .iter()
                .min_by_key(|(id, m)| (m.last_used, **id))
                .map(|(id, _)| *id)
            else {
                break;
            };
            self.evict(victim);
        }
    }

    /// Removes entry `id` from the index and books the eviction.
    fn evict(&mut self, id: u64) {
        let Some(meta) = self.meta.remove(&id) else {
            return;
        };
        let removed = self.index.remove_at(&meta.tokens, |e| e.id == id);
        debug_assert_eq!(removed.len(), 1, "meta and index agree on residency");
        self.stats.resident_bytes -= meta.bytes;
        self.stats.evictions += 1;
        self.stats.evicted_bytes += meta.bytes;
    }

    /// Like [`lookup`](Self::lookup) but without touching statistics or
    /// handing out the segment — used by the batch scheduler to size
    /// admission footprints before the session actually pre-fills.
    pub fn probe(&self, tokens: &[usize], key: &PrefixKey) -> Option<(u64, usize, u64)> {
        self.index
            .longest_match(tokens, |e| e.key == *key)
            .map(|(matched, entry)| (entry.id, matched, entry.segment.bytes_fp16() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> PrefixKey {
        PrefixKey {
            policy: CachePolicy::Full,
            budget: CacheBudget::new(64),
            seed,
        }
    }

    #[test]
    fn radix_inserts_and_longest_matches() {
        let mut index: RadixPrefixIndex<&'static str> = RadixPrefixIndex::new();
        index.values_at_mut(&[1, 2, 3]).push("abc");
        index.values_at_mut(&[1, 2, 3, 4, 5]).push("abcde");
        index.values_at_mut(&[1, 9]).push("az");
        // Longest boundary that prefixes the query wins.
        let (len, v) = index.longest_match(&[1, 2, 3, 4, 5, 6], |_| true).unwrap();
        assert_eq!((len, *v), (5, "abcde"));
        let (len, v) = index.longest_match(&[1, 2, 3, 4, 9], |_| true).unwrap();
        assert_eq!((len, *v), (3, "abc"));
        let (len, v) = index.longest_match(&[1, 9, 9], |_| true).unwrap();
        assert_eq!((len, *v), (2, "az"));
        assert!(index.longest_match(&[2, 2], |_| true).is_none());
        // A query shorter than any boundary matches nothing.
        assert!(index.longest_match(&[1, 2], |_| true).is_none());
    }

    #[test]
    fn radix_edge_splitting_preserves_existing_boundaries() {
        let mut index: RadixPrefixIndex<u32> = RadixPrefixIndex::new();
        index.values_at_mut(&[5, 6, 7, 8]).push(1);
        // Diverges inside the existing edge, forcing a split.
        index.values_at_mut(&[5, 6, 9]).push(2);
        // Boundary in the middle of the (former) edge.
        index.values_at_mut(&[5, 6]).push(3);
        assert_eq!(index.longest_match(&[5, 6, 7, 8], |_| true).unwrap().0, 4);
        assert_eq!(index.longest_match(&[5, 6, 9, 1], |_| true).unwrap().0, 3);
        assert_eq!(index.longest_match(&[5, 6, 1], |_| true).unwrap().0, 2);
    }

    #[test]
    fn radix_predicate_filters_entries() {
        let mut index: RadixPrefixIndex<u64> = RadixPrefixIndex::new();
        index.values_at_mut(&[1, 2]).push(10);
        index.values_at_mut(&[1, 2, 3]).push(20);
        // Only the shorter boundary carries an acceptable value.
        let (len, v) = index.longest_match(&[1, 2, 3], |v| *v == 10).unwrap();
        assert_eq!((len, *v), (2, 10));
        assert!(index.longest_match(&[1, 2, 3], |v| *v == 99).is_none());
    }

    #[test]
    fn match_cost_is_bounded_by_query_not_store_size() {
        let mut index: RadixPrefixIndex<usize> = RadixPrefixIndex::new();
        // 1000 published prefixes fanning out at the first token.
        for i in 0..1000usize {
            let seq: Vec<usize> = (0..16).map(|p| i * 31 + p).collect();
            index.values_at_mut(&seq).push(i);
        }
        let query: Vec<usize> = (0..16).collect();
        let cost = index.match_cost(&query);
        // O(matched): bounded by the query length plus one mismatch probe,
        // regardless of the 1000 published boundaries.
        assert!(cost <= query.len() + 1, "cost {cost}");
        // And a long query against a deep store still pays only its own
        // length.
        let mut deep: RadixPrefixIndex<usize> = RadixPrefixIndex::new();
        for i in 0..1000usize {
            let mut seq: Vec<usize> = (0..64).collect();
            seq.push(1000 + i);
            deep.values_at_mut(&seq).push(i);
        }
        let query: Vec<usize> = (0..64).collect();
        assert!(deep.match_cost(&query) <= query.len() + 1);
    }

    #[test]
    fn store_publishes_once_per_key_and_boundary() {
        let mut store = PrefixStore::new();
        let segment = dummy_segment(3);
        assert!(store
            .publish(&[1, 2, 3], key(7), Arc::clone(&segment))
            .is_some());
        assert!(store
            .publish(&[1, 2, 3], key(7), Arc::clone(&segment))
            .is_none());
        assert!(store
            .publish(&[1, 2, 3], key(8), Arc::clone(&segment))
            .is_some());
        assert_eq!(store.stats().published, 2);
        assert_eq!(store.boundaries(), 1);
        assert!(store.contains(&[1, 2, 3], &key(7)));
        assert!(!store.contains(&[1, 2], &key(7)));
    }

    #[test]
    fn store_lookup_matches_key_and_counts() {
        let mut store = PrefixStore::new();
        let segment = dummy_segment(2);
        store.publish(&[4, 5], key(1), segment);
        let hit = store.lookup(&[4, 5, 6], &key(1)).unwrap();
        assert_eq!(hit.matched, 2);
        assert!(store.lookup(&[4, 5, 6], &key(2)).is_none());
        assert!(store.lookup(&[9], &key(1)).is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.hit_tokens), (1, 2, 2));
        // Probe is side-effect free.
        assert!(store.probe(&[4, 5, 6], &key(1)).is_some());
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn remove_at_drops_boundary_and_keeps_neighbours() {
        let mut index: RadixPrefixIndex<u32> = RadixPrefixIndex::new();
        index.values_at_mut(&[1, 2, 3]).push(1);
        index.values_at_mut(&[1, 2, 3, 4]).push(2);
        index.boundaries = 2;
        let removed = index.remove_at(&[1, 2, 3], |v| *v == 1);
        assert_eq!(removed, vec![1]);
        assert_eq!(index.boundaries(), 1);
        assert!(index.longest_match(&[1, 2, 3], |_| true).is_none());
        // The deeper boundary survives and still matches.
        assert_eq!(index.longest_match(&[1, 2, 3, 4], |_| true).unwrap().0, 4);
        // Removing at a non-boundary path is a no-op.
        assert!(index.remove_at(&[9, 9], |_| true).is_empty());
        assert!(index.remove_at(&[1, 2], |_| true).is_empty());
    }

    #[test]
    fn store_budget_evicts_lru_first() {
        let seg = dummy_segment(3);
        let bytes = seg.bytes_fp16() as u64;
        // Budget fits exactly two segments.
        let mut store = PrefixStore::with_limits(Some(2 * bytes), None);
        store.publish(&[1, 2, 3], key(1), Arc::clone(&seg));
        store.publish(&[4, 5, 6], key(1), dummy_segment(3));
        // Touch the older entry so the *middle* one becomes LRU.
        assert!(store.lookup(&[1, 2, 3], &key(1)).is_some());
        store.publish(&[7, 8, 9], key(1), dummy_segment(3));
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.evicted_bytes, bytes);
        assert_eq!(stats.resident_bytes, 2 * bytes);
        // The recently-touched and newest entries survive; the stale middle
        // entry is gone.
        assert!(store.contains(&[1, 2, 3], &key(1)));
        assert!(!store.contains(&[4, 5, 6], &key(1)));
        assert!(store.contains(&[7, 8, 9], &key(1)));
    }

    #[test]
    fn store_ttl_expires_idle_entries() {
        let mut store = PrefixStore::with_limits(None, Some(2));
        store.publish(&[1, 2, 3], key(1), dummy_segment(3));
        // Two idle lookups elsewhere, then a publication: the first entry is
        // now 3 operations stale (> ttl 2) and expires.
        store.lookup(&[9], &key(1));
        store.lookup(&[9], &key(1));
        store.publish(&[4, 5, 6], key(1), dummy_segment(3));
        assert_eq!(store.stats().evictions, 1);
        assert!(!store.contains(&[1, 2, 3], &key(1)));
        assert!(store.contains(&[4, 5, 6], &key(1)));
    }

    #[test]
    fn evicted_entries_free_resident_bytes_and_miss_cleanly() {
        let seg = dummy_segment(4);
        let bytes = seg.bytes_fp16() as u64;
        let mut store = PrefixStore::with_limits(Some(bytes), None);
        store.publish(&[1, 2, 3, 4], key(1), Arc::clone(&seg));
        // A session attached before eviction keeps its Arc alive.
        let held = store.lookup(&[1, 2, 3, 4], &key(1)).unwrap();
        store.publish(&[5, 6, 7, 8], key(1), dummy_segment(4));
        assert_eq!(store.stats().resident_bytes, bytes);
        assert!(store.lookup(&[1, 2, 3, 4], &key(1)).is_none());
        // The held segment is unaffected by the store-side eviction.
        assert_eq!(held.segment.len(), 4);
    }

    /// A tiny real segment (recorded through a FullKvCache) for store tests.
    pub(crate) fn dummy_segment(tokens: usize) -> Arc<SharedSegment> {
        use kelle_model::fault::{BitFlipRates, ProbabilisticFaults};
        use kelle_model::{FullKvCache, KvCacheBackend, SegmentRecorder};
        let mut inner = FullKvCache::new();
        let mut recorder = SegmentRecorder::new(&mut inner);
        for t in 0..tokens {
            recorder.insert(0, t, &[t as f32; 4], &[t as f32; 4], &[-(t as f32); 4], 4);
            recorder.observe_attention(0, 0, &[(t, 1.0)]);
        }
        Arc::new(recorder.finish(
            &[0.0, 1.0],
            ProbabilisticFaults::new(BitFlipRates::zero(), 1),
        ))
    }
}
