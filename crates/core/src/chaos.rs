//! Deterministic fault injection and the recovery vocabulary of the
//! chaos-hardened scheduler.
//!
//! The serving stack promises bit-identical token streams for every worker
//! count and both parallel axes.  This module extends that promise to a
//! *failing* machine: a seeded [`ChaosPlan`] injects worker-thread panics
//! mid-tick, transient tier-migration I/O errors and transient
//! [`CapacityLedger`](kelle_edram::CapacityLedger) reservation failures, and
//! the scheduler recovers from all three such that every surviving session's
//! stream — tokens, probability bits, fault statistics — is bit-identical to
//! a chaos-free run.
//!
//! Determinism is the whole design:
//!
//! * **Worker panics** are drawn from a hash of `(seed, tick, session,
//!   attempt)`, so the *same* decode steps fail regardless of executor,
//!   worker count or completion order.  The panic is injected *after* the
//!   step computes (the session is mutated and then lost), which makes the
//!   checkpoint/replay path do real work rather than re-running an untouched
//!   session.
//! * **Migration and ledger faults** are drawn from per-stream counters.
//!   Both are only ever consulted on the coordinator thread, whose decision
//!   sequence is identical for every worker count, so the draws are too.
//!
//! Recovery leans on the scheduler's per-tick commit protocol: sessions are
//! snapshotted into cheap [`Checkpoint`]s at committed tick boundaries, a
//! panicked worker's in-flight session steps are re-executed from checkpoint
//! with a bounded retry budget, and exhaustion surfaces as the typed
//! [`ServeError::WorkerLost`] instead of a raw `resume_unwind`.

use std::fmt;

use kelle_edram::MemoryTier;
use serde::{Deserialize, Serialize};

use crate::session::Session;

/// Configuration of the deterministic fault-injection plan.
///
/// Rates are expressed in *per-mille* (0–1000) so the config stays `Copy`,
/// `Eq` and exactly serializable.  A rate of `0` disables that fault class;
/// an all-zero config (`ChaosConfig::default()`) disables chaos entirely and
/// the scheduler takes no checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the fault plan; different seeds fail different steps.
    pub seed: u64,
    /// Per-mille probability that a decode step's worker panics mid-tick.
    pub worker_panic_per_mille: u32,
    /// Per-mille probability that a tier-migration attempt fails with a
    /// transient I/O error (the KV stays on its source tier and the attempt
    /// is charged to [`TieringMetrics`](crate::tier::TieringMetrics)).
    pub migration_fault_per_mille: u32,
    /// Per-mille probability that a capacity-ledger reservation transiently
    /// fails during admission (the candidate retries on a later tick).
    pub ledger_blip_per_mille: u32,
    /// How many times a panicked session step is replayed from checkpoint
    /// before the request is abandoned as [`ServeError::WorkerLost`].
    pub max_retries: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            worker_panic_per_mille: 0,
            migration_fault_per_mille: 0,
            ledger_blip_per_mille: 0,
            max_retries: 3,
        }
    }
}

impl ChaosConfig {
    /// Overrides the plan seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-panic rate in per-mille (builder style).
    pub fn with_worker_panics(mut self, per_mille: u32) -> Self {
        self.worker_panic_per_mille = per_mille.min(1000);
        self
    }

    /// Overrides the migration-fault rate in per-mille (builder style).
    pub fn with_migration_faults(mut self, per_mille: u32) -> Self {
        self.migration_fault_per_mille = per_mille.min(1000);
        self
    }

    /// Derives the migration-fault rate from an NVMe device model's
    /// [`transient_error_rate`](kelle_edram::NvmeSpec::transient_error_rate)
    /// (builder style).
    pub fn with_nvme_error_model(self, nvme: &kelle_edram::NvmeSpec) -> Self {
        self.with_migration_faults((nvme.transient_error_rate * 1000.0).round() as u32)
    }

    /// Overrides the ledger-blip rate in per-mille (builder style).
    pub fn with_ledger_blips(mut self, per_mille: u32) -> Self {
        self.ledger_blip_per_mille = per_mille.min(1000);
        self
    }

    /// Overrides the replay budget (builder style).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Whether any fault class is enabled.
    pub fn enabled(&self) -> bool {
        self.worker_panic_per_mille > 0
            || self.migration_fault_per_mille > 0
            || self.ledger_blip_per_mille > 0
    }
}

/// A source of transient tier-migration failures.
///
/// [`TierManager`](crate::tier::TierManager) consults this before every
/// migration attempt; a `true` return means the transfer failed mid-flight
/// (its cost is charged, no bytes move) and the manager retries a bounded
/// number of times before leaving the KV on its source tier.
pub trait MigrationFaults {
    /// Draws the fate of one migration attempt of `bytes` from `from` to
    /// `to`.  Implementations may be stateful (each call consumes a draw).
    fn migration_fails(&mut self, from: MemoryTier, to: MemoryTier, bytes: u64) -> bool;
}

/// The instantiated fault plan: a [`ChaosConfig`] plus the draw state of the
/// counter-based fault streams.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    config: ChaosConfig,
    migration_draws: u64,
    ledger_draws: u64,
}

impl ChaosPlan {
    /// Instantiates the plan for a config.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosPlan {
            config,
            migration_draws: 0,
            ledger_draws: 0,
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Whether execution `attempt` of session `index`'s decode step on tick
    /// `tick` is sabotaged.
    ///
    /// Pure in its arguments: the draw is a hash of the full coordinate, not
    /// a counter, so injection is independent of executor, worker count and
    /// task completion order.
    pub fn worker_panic(&self, tick: u64, index: usize, attempt: u32) -> bool {
        hits(
            self.config.seed,
            1,
            tick,
            index as u64,
            attempt as u64,
            self.config.worker_panic_per_mille,
        )
    }

    /// Draws the fate of the next capacity-ledger reservation.
    pub(crate) fn ledger_blip(&mut self) -> bool {
        let draw = self.ledger_draws;
        self.ledger_draws += 1;
        hits(
            self.config.seed,
            3,
            draw,
            0,
            0,
            self.config.ledger_blip_per_mille,
        )
    }
}

impl MigrationFaults for ChaosPlan {
    fn migration_fails(&mut self, _from: MemoryTier, _to: MemoryTier, _bytes: u64) -> bool {
        let draw = self.migration_draws;
        self.migration_draws += 1;
        hits(
            self.config.seed,
            2,
            draw,
            0,
            0,
            self.config.migration_fault_per_mille,
        )
    }
}

/// SplitMix64 finalizer (same mixing constants as `kelle_tensor::rng`).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One deterministic per-mille draw on stream `stream` at coordinate
/// `(a, b, c)`.
fn hits(seed: u64, stream: u64, a: u64, b: u64, c: u64, per_mille: u32) -> bool {
    if per_mille == 0 {
        return false;
    }
    let mut h = splitmix(seed ^ stream.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    h = splitmix(h ^ a);
    h = splitmix(h ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    h = splitmix(h ^ c);
    (h % 1000) < per_mille as u64
}

/// Counters describing the faults a chaos-enabled batch absorbed and the
/// recovery work it performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosMetrics {
    /// Worker panics the plan injected (including those hit on replays).
    pub injected_panics: u64,
    /// Session steps re-executed from checkpoint after a worker loss.
    pub replayed_steps: u64,
    /// Modelled backoff ticks spent between replays.
    pub backoff_ticks: u64,
    /// Capacity-ledger reservations that transiently failed during admission.
    pub ledger_blips: u64,
    /// Session checkpoints captured at committed tick boundaries.
    pub checkpoints_taken: u64,
    /// Sessions restored from a checkpoint.
    pub restored_sessions: u64,
    /// Requests shed for deadline or queue-timeout reasons.
    pub shed_requests: u64,
    /// Requests cancelled mid-stream via `cancel()`.
    pub cancelled_requests: u64,
    /// Waiting requests shed because the scheduler drained.
    pub drained_requests: u64,
    /// Requests abandoned after the replay budget was exhausted.
    pub lost_requests: u64,
}

/// Why a request was shed before completing its full decode budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShedReason {
    /// The request's end-to-end deadline elapsed while it was active; it is
    /// finalized with whatever tokens it produced.
    DeadlineExceeded,
    /// The request waited in the admission queue longer than its queue
    /// timeout and was never admitted.
    QueueTimeout,
    /// The request was cancelled via
    /// [`BatchScheduler::cancel`](crate::scheduler::BatchScheduler::cancel).
    Cancelled,
    /// The request was still waiting when the scheduler drained.
    Drained,
    /// The request's worker was lost and the replay budget was exhausted.
    WorkerLost,
}

impl ShedReason {
    /// Stable lowercase name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::DeadlineExceeded => "deadline-exceeded",
            ShedReason::QueueTimeout => "queue-timeout",
            ShedReason::Cancelled => "cancelled",
            ShedReason::Drained => "drained",
            ShedReason::WorkerLost => "worker-lost",
        }
    }
}

/// A cheap snapshot of a session at a committed tick boundary.
///
/// Captured by the scheduler for every active session while chaos is
/// enabled; when a worker carrying the live session panics, the checkpoint
/// is re-hydrated into a fresh [`Session`] and the lost decode step replays
/// deterministically (same state, same RNG stream, same token).
pub struct Checkpoint<'e> {
    session: Session<'e>,
    tick: u64,
}

impl<'e> Checkpoint<'e> {
    /// Snapshots `session` as of committed tick `tick`.
    pub fn capture(session: &Session<'e>, tick: u64) -> Self {
        Checkpoint {
            session: session.fork(),
            tick,
        }
    }

    /// The committed tick this checkpoint corresponds to.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Re-hydrates the checkpoint into a live session (the checkpoint
    /// remains usable for further replays).
    pub fn restore(&self) -> Session<'e> {
        self.session.fork()
    }
}

impl fmt::Debug for Checkpoint<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("tick", &self.tick)
            .finish_non_exhaustive()
    }
}

/// Infrastructure failures surfaced by the fallible serving entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A worker thread carrying a session's decode step panicked and the
    /// bounded replay budget could not recover it.  The request has been
    /// finalized with its partial output (shed reason
    /// [`ShedReason::WorkerLost`]); the scheduler itself remains consistent
    /// and drainable.
    WorkerLost {
        /// Index of the first request abandoned this tick.
        request: usize,
        /// Total executions attempted (1 initial + replays).
        attempts: u32,
        /// The panic payload of the last failed attempt.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WorkerLost {
                request,
                attempts,
                message,
            } => write!(
                f,
                "worker lost serving request {request} after {attempts} attempt(s): {message}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let config = ChaosConfig::default();
        assert!(!config.enabled());
        assert_eq!(config.max_retries, 3);
        let plan = ChaosPlan::new(config);
        for tick in 0..64 {
            assert!(!plan.worker_panic(tick, 0, 0));
        }
    }

    #[test]
    fn panic_draws_are_pure_in_their_coordinates() {
        let plan = ChaosPlan::new(ChaosConfig::default().with_seed(7).with_worker_panics(200));
        let first: Vec<bool> = (0..256).map(|t| plan.worker_panic(t, 3, 0)).collect();
        let second: Vec<bool> = (0..256).map(|t| plan.worker_panic(t, 3, 0)).collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&h| h).count();
        assert!(hits > 0, "a 20% rate must hit within 256 draws");
        assert!(hits < 256, "a 20% rate must miss within 256 draws");
    }

    #[test]
    fn retry_attempts_draw_independently() {
        // A step that fails at attempt 0 must not be doomed to fail forever:
        // the attempt number is part of the draw coordinate.
        let plan = ChaosPlan::new(ChaosConfig::default().with_seed(11).with_worker_panics(500));
        let mut recovered = false;
        for tick in 0..128 {
            if plan.worker_panic(tick, 0, 0) && !plan.worker_panic(tick, 0, 1) {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "some failed step recovers on its first replay");
    }

    #[test]
    fn seeds_decorrelate_plans() {
        let a = ChaosPlan::new(ChaosConfig::default().with_seed(1).with_worker_panics(300));
        let b = ChaosPlan::new(ChaosConfig::default().with_seed(2).with_worker_panics(300));
        let draws_a: Vec<bool> = (0..256).map(|t| a.worker_panic(t, 0, 0)).collect();
        let draws_b: Vec<bool> = (0..256).map(|t| b.worker_panic(t, 0, 0)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn counter_streams_are_reproducible_and_independent() {
        let config = ChaosConfig::default()
            .with_seed(23)
            .with_migration_faults(250)
            .with_ledger_blips(250);
        let mut a = ChaosPlan::new(config);
        let mut b = ChaosPlan::new(config);
        let migrations: Vec<bool> = (0..128)
            .map(|_| a.migration_fails(MemoryTier::Edram, MemoryTier::Dram, 64))
            .collect();
        let blips: Vec<bool> = (0..128).map(|_| a.ledger_blip()).collect();
        let migrations_b: Vec<bool> = (0..128)
            .map(|_| b.migration_fails(MemoryTier::Edram, MemoryTier::Dram, 64))
            .collect();
        let blips_b: Vec<bool> = (0..128).map(|_| b.ledger_blip()).collect();
        assert_eq!(migrations, migrations_b);
        assert_eq!(blips, blips_b);
        // Streams 2 and 3 are decorrelated even though both are counters.
        assert_ne!(migrations, blips);
        assert!(migrations.iter().any(|&f| f));
        assert!(migrations.iter().any(|&f| !f));
    }

    #[test]
    fn nvme_error_model_scales_to_per_mille() {
        let nvme = kelle_edram::NvmeSpec::edge_m2_256gb().with_transient_error_rate(0.05);
        let config = ChaosConfig::default().with_nvme_error_model(&nvme);
        assert_eq!(config.migration_fault_per_mille, 50);
    }

    #[test]
    fn rates_clamp_to_per_mille() {
        let config = ChaosConfig::default()
            .with_worker_panics(5000)
            .with_migration_faults(5000)
            .with_ledger_blips(5000);
        assert_eq!(config.worker_panic_per_mille, 1000);
        assert_eq!(config.migration_fault_per_mille, 1000);
        assert_eq!(config.ledger_blip_per_mille, 1000);
    }

    #[test]
    fn shed_reasons_have_stable_names() {
        assert_eq!(ShedReason::DeadlineExceeded.name(), "deadline-exceeded");
        assert_eq!(ShedReason::WorkerLost.name(), "worker-lost");
    }

    #[test]
    fn serve_error_displays_context() {
        let err = ServeError::WorkerLost {
            request: 4,
            attempts: 3,
            message: "chaos: injected worker panic".into(),
        };
        let text = err.to_string();
        assert!(text.contains("request 4"));
        assert!(text.contains("3 attempt(s)"));
    }
}
