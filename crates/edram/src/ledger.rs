//! Shared eDRAM capacity accounting for concurrent serving sessions.
//!
//! The paper's KV policies exist because on-chip capacity is scarce (§4.1):
//! one 4 MB eDRAM array holds the KV working sets of *every* request decoding
//! on the accelerator at once.  [`CapacityLedger`] is the single source of
//! truth for that shared budget.  Each admitted session holds a *lease* whose
//! byte count grows as its context grows; the ledger tracks the total live
//! bytes against the device capacity, the lifetime high-water mark, and the
//! bytes oversubscribed past capacity (which a serving stack must spill to
//! off-chip DRAM and charge at [`DramSpec`](crate::DramSpec) cost).
//!
//! Two reservation paths exist on purpose:
//!
//! * [`reserve`](CapacityLedger::reserve) is *checked* — it refuses to admit a
//!   footprint that does not fit in the remaining capacity.  Admission control
//!   uses this: the ledger never exceeds capacity through `reserve` alone.
//! * [`force_reserve`](CapacityLedger::force_reserve) and
//!   [`grow`](CapacityLedger::grow) are *unchecked* — decoding a token grows a
//!   live session's KV no matter how full the device is, so growth may
//!   oversubscribe.  The excess is reported as
//!   [`oversubscribed_bytes`](CapacityLedger::oversubscribed_bytes) rather
//!   than rejected.
//!
//! Besides per-session leases, the ledger arbitrates a **shared pool** for
//! cross-session prefix sharing: a published prefix's KV bytes are charged
//! against capacity *once*, however many sessions attach to it
//! ([`attach_shared`](CapacityLedger::attach_shared) /
//! [`detach_shared`](CapacityLedger::detach_shared) refcount the entry), and
//! every attachment beyond the first accrues
//! [`dedup_savings_bytes`](CapacityLedger::dedup_savings_bytes) — the bytes
//! deduplication kept off the device.

use serde::{Deserialize, Serialize};

/// Handle to one session's reservation inside a [`CapacityLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LeaseId(usize);

/// Why a checked reservation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// The requested bytes do not fit in the remaining capacity.
    InsufficientCapacity {
        /// Bytes the caller asked for.
        requested: u64,
        /// Bytes still available below the capacity line.
        available: u64,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "cannot reserve {requested} bytes: only {available} available"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Tracks live KV bytes per session against one shared memory capacity.
///
/// Invariants (asserted by the property tests):
///
/// * `live_bytes` always equals the sum of all outstanding lease sizes, so it
///   can never go negative and `release` always returns exactly what the
///   lease held;
/// * `reserve` never pushes `live_bytes` past `capacity_bytes` — only
///   `force_reserve`/`grow` can oversubscribe, and the excess is reported via
///   `oversubscribed_bytes`;
/// * `high_water_bytes` is monotone non-decreasing and always `>= live_bytes`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityLedger {
    capacity_bytes: u64,
    leases: Vec<Option<u64>>,
    live_bytes: u64,
    high_water_bytes: u64,
    peak_oversubscription_bytes: u64,
    shared: Vec<SharedPoolEntry>,
    dedup_savings_bytes: u64,
}

/// One refcounted shared-pool entry (a published prefix's resident bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct SharedPoolEntry {
    /// Caller-chosen identity of the shared object (the prefix entry id).
    tag: u64,
    /// Resident bytes, charged once.
    bytes: u64,
    /// Sessions currently attached.
    refs: usize,
}

impl CapacityLedger {
    /// A ledger arbitrating `capacity_bytes` of shared memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "ledger capacity must be non-zero");
        CapacityLedger {
            capacity_bytes,
            leases: Vec::new(),
            live_bytes: 0,
            high_water_bytes: 0,
            peak_oversubscription_bytes: 0,
            shared: Vec::new(),
            dedup_savings_bytes: 0,
        }
    }

    /// A ledger sized to a memory device's capacity.
    pub fn for_memory(memory: &crate::MemorySpec) -> Self {
        CapacityLedger::new(memory.capacity_bytes)
    }

    /// A ledger sized to a whole tiered hierarchy
    /// ([`TierBudgets::total_bytes`](crate::TierBudgets::total_bytes)): the
    /// ledger bounds *total* live KV across every tier while the per-tier
    /// budgets in [`TierAccounts`](crate::TierAccounts) bound where those
    /// bytes reside.  Under tiering, admission plans against the eDRAM tier's
    /// free bytes; this ledger only refuses footprints the entire hierarchy
    /// cannot hold.
    pub fn for_tier_budgets(budgets: &crate::TierBudgets) -> Self {
        CapacityLedger::new(budgets.total_bytes().max(1))
    }

    /// The arbitrated capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently held by outstanding leases.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Bytes still available below the capacity line (zero when
    /// oversubscribed).
    pub fn available_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.live_bytes)
    }

    /// Whether a checked reservation of `bytes` would succeed right now.
    pub fn can_fit(&self, bytes: u64) -> bool {
        bytes <= self.available_bytes()
    }

    /// Highest `live_bytes` ever observed.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water_bytes
    }

    /// Bytes currently held past capacity — the working set a serving stack
    /// must spill to off-chip DRAM.
    pub fn oversubscribed_bytes(&self) -> u64 {
        self.live_bytes.saturating_sub(self.capacity_bytes)
    }

    /// Highest oversubscription ever observed.
    pub fn peak_oversubscription_bytes(&self) -> u64 {
        self.peak_oversubscription_bytes
    }

    /// Fraction of capacity currently in use (may exceed 1.0 when
    /// oversubscribed).
    pub fn utilization(&self) -> f64 {
        self.live_bytes as f64 / self.capacity_bytes as f64
    }

    /// Number of outstanding leases.
    pub fn active_leases(&self) -> usize {
        self.leases.iter().filter(|l| l.is_some()).count()
    }

    /// Bytes held by one lease.
    ///
    /// # Panics
    ///
    /// Panics if the lease was already released.
    pub fn lease_bytes(&self, lease: LeaseId) -> u64 {
        self.leases[lease.0].expect("lease already released")
    }

    fn open_lease(&mut self, bytes: u64) -> LeaseId {
        self.live_bytes += bytes;
        self.high_water_bytes = self.high_water_bytes.max(self.live_bytes);
        self.peak_oversubscription_bytes = self
            .peak_oversubscription_bytes
            .max(self.oversubscribed_bytes());
        self.leases.push(Some(bytes));
        LeaseId(self.leases.len() - 1)
    }

    /// Checked reservation: opens a lease of `bytes` only if it fits in the
    /// remaining capacity.  This is the admission-control path — the ledger
    /// can never exceed capacity through `reserve` alone.
    pub fn reserve(&mut self, bytes: u64) -> Result<LeaseId, LedgerError> {
        if !self.can_fit(bytes) {
            return Err(LedgerError::InsufficientCapacity {
                requested: bytes,
                available: self.available_bytes(),
            });
        }
        Ok(self.open_lease(bytes))
    }

    /// Unchecked reservation: opens a lease of `bytes` even if it
    /// oversubscribes the device.  Used to guarantee forward progress when a
    /// single request is larger than the whole capacity.
    pub fn force_reserve(&mut self, bytes: u64) -> LeaseId {
        self.open_lease(bytes)
    }

    /// Grows a live lease by `additional_bytes` (KV growth during decoding).
    /// Growth is never refused; the excess past capacity shows up in
    /// [`oversubscribed_bytes`](CapacityLedger::oversubscribed_bytes).
    ///
    /// # Panics
    ///
    /// Panics if the lease was already released.
    pub fn grow(&mut self, lease: LeaseId, additional_bytes: u64) {
        let slot = self.leases[lease.0]
            .as_mut()
            .expect("lease already released");
        *slot += additional_bytes;
        self.live_bytes += additional_bytes;
        self.high_water_bytes = self.high_water_bytes.max(self.live_bytes);
        self.peak_oversubscription_bytes = self
            .peak_oversubscription_bytes
            .max(self.oversubscribed_bytes());
    }

    /// Applies a batch of lease growths as one commit — the per-tick commit
    /// of the serving scheduler, which collects every active session's decode
    /// growth for a tick (possibly computed on worker threads) and lands the
    /// whole tick on the ledger at once, on the coordinating thread.
    ///
    /// Equivalent to calling [`grow`](CapacityLedger::grow) once per entry in
    /// order: growths only ever *increase* `live_bytes`, so the high-water
    /// and peak-oversubscription marks after the batch equal the marks the
    /// individual calls would have produced (they are maxima of a monotone
    /// sequence, i.e. its final value) — asserted by a unit test.  The
    /// watermark bookkeeping runs once per commit instead of once per lease.
    ///
    /// # Panics
    ///
    /// Panics if any lease in the batch was already released; leases before
    /// the offending entry are grown (the commit is not atomic under panic —
    /// a released lease in a tick commit is a scheduler logic error).
    pub fn commit_growth(&mut self, growths: &[(LeaseId, u64)]) {
        for &(lease, additional_bytes) in growths {
            let slot = self.leases[lease.0]
                .as_mut()
                .expect("lease already released");
            *slot += additional_bytes;
            self.live_bytes += additional_bytes;
        }
        self.high_water_bytes = self.high_water_bytes.max(self.live_bytes);
        self.peak_oversubscription_bytes = self
            .peak_oversubscription_bytes
            .max(self.oversubscribed_bytes());
    }

    /// Releases a lease, returning the bytes it held.  Releasing is what lets
    /// admission control back-fill waiting requests.
    ///
    /// # Panics
    ///
    /// Panics if the lease was already released.
    pub fn release(&mut self, lease: LeaseId) -> u64 {
        let bytes = self.leases[lease.0].take().expect("lease already released");
        self.live_bytes -= bytes;
        bytes
    }

    /// Whether the shared pool currently holds `tag`.
    pub fn has_shared(&self, tag: u64) -> bool {
        self.shared.iter().any(|e| e.tag == tag)
    }

    /// Bytes the shared pool currently charges against capacity (each tag
    /// counted once).
    pub fn shared_bytes(&self) -> u64 {
        self.shared.iter().map(|e| e.bytes).sum()
    }

    /// Cumulative bytes kept off the device by shared-pool deduplication:
    /// every attachment beyond a tag's first adds the tag's bytes here (a
    /// single-tenant stack would have charged them again).
    pub fn dedup_savings_bytes(&self) -> u64 {
        self.dedup_savings_bytes
    }

    /// Attaches a session to the shared-pool entry `tag` of `bytes` bytes.
    ///
    /// The first attachment charges the bytes against capacity (unchecked,
    /// like [`force_reserve`](CapacityLedger::force_reserve): the shared data
    /// already physically exists); every further attachment only bumps the
    /// refcount and records the deduplication saving.  Returns `true` when
    /// this call was the charging one.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is already pooled with a different byte size (a tag
    /// identifies one immutable published object).
    pub fn attach_shared(&mut self, tag: u64, bytes: u64) -> bool {
        if let Some(entry) = self.shared.iter_mut().find(|e| e.tag == tag) {
            assert_eq!(
                entry.bytes, bytes,
                "shared tag re-attached with a different size"
            );
            entry.refs += 1;
            self.dedup_savings_bytes += bytes;
            return false;
        }
        self.shared.push(SharedPoolEntry {
            tag,
            bytes,
            refs: 1,
        });
        self.live_bytes += bytes;
        self.high_water_bytes = self.high_water_bytes.max(self.live_bytes);
        self.peak_oversubscription_bytes = self
            .peak_oversubscription_bytes
            .max(self.oversubscribed_bytes());
        true
    }

    /// Detaches a session from shared-pool entry `tag`.  The last detachment
    /// releases the charged bytes.  Returns `true` when the entry was fully
    /// released.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is not pooled.
    pub fn detach_shared(&mut self, tag: u64) -> bool {
        let index = self
            .shared
            .iter()
            .position(|e| e.tag == tag)
            .expect("detach of an unpooled shared tag");
        self.shared[index].refs -= 1;
        if self.shared[index].refs == 0 {
            self.live_bytes -= self.shared[index].bytes;
            self.shared.remove(index);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySpec;

    #[test]
    fn reserve_release_roundtrip() {
        let mut ledger = CapacityLedger::new(100);
        let a = ledger.reserve(40).unwrap();
        let b = ledger.reserve(60).unwrap();
        assert_eq!(ledger.live_bytes(), 100);
        assert_eq!(ledger.available_bytes(), 0);
        assert_eq!(ledger.active_leases(), 2);
        assert_eq!(ledger.release(a), 40);
        assert_eq!(ledger.live_bytes(), 60);
        assert_eq!(ledger.release(b), 60);
        assert_eq!(ledger.live_bytes(), 0);
        assert_eq!(ledger.high_water_bytes(), 100);
    }

    #[test]
    fn checked_reserve_refuses_overflow() {
        let mut ledger = CapacityLedger::new(100);
        ledger.reserve(80).unwrap();
        let err = ledger.reserve(30).unwrap_err();
        assert_eq!(
            err,
            LedgerError::InsufficientCapacity {
                requested: 30,
                available: 20
            }
        );
        // The failed reservation left no trace.
        assert_eq!(ledger.live_bytes(), 80);
        assert_eq!(ledger.active_leases(), 1);
    }

    #[test]
    fn growth_oversubscribes_instead_of_failing() {
        let mut ledger = CapacityLedger::new(100);
        let lease = ledger.reserve(90).unwrap();
        ledger.grow(lease, 30);
        assert_eq!(ledger.live_bytes(), 120);
        assert_eq!(ledger.oversubscribed_bytes(), 20);
        assert_eq!(ledger.peak_oversubscription_bytes(), 20);
        assert_eq!(ledger.lease_bytes(lease), 120);
        assert!((ledger.utilization() - 1.2).abs() < 1e-12);
        ledger.release(lease);
        assert_eq!(ledger.oversubscribed_bytes(), 0);
        // Peak statistics persist after release.
        assert_eq!(ledger.peak_oversubscription_bytes(), 20);
        assert_eq!(ledger.high_water_bytes(), 120);
    }

    #[test]
    fn batched_commit_matches_sequential_grows() {
        // The per-tick commit must be observationally identical to growing
        // each lease one call at a time, including the watermarks.
        let mut batched = CapacityLedger::new(100);
        let mut sequential = CapacityLedger::new(100);
        let b0 = batched.reserve(30).unwrap();
        let b1 = batched.reserve(20).unwrap();
        let s0 = sequential.reserve(30).unwrap();
        let s1 = sequential.reserve(20).unwrap();

        batched.commit_growth(&[(b0, 25), (b1, 40), (b0, 5)]);
        sequential.grow(s0, 25);
        sequential.grow(s1, 40);
        sequential.grow(s0, 5);

        assert_eq!(batched, sequential);
        assert_eq!(batched.live_bytes(), 120);
        assert_eq!(batched.lease_bytes(b0), 60);
        assert_eq!(batched.lease_bytes(b1), 60);
        assert_eq!(batched.high_water_bytes(), 120);
        assert_eq!(batched.oversubscribed_bytes(), 20);
        assert_eq!(batched.peak_oversubscription_bytes(), 20);
        // An empty commit is a no-op.
        batched.commit_growth(&[]);
        assert_eq!(batched, sequential);
    }

    #[test]
    #[should_panic(expected = "lease already released")]
    fn batched_commit_rejects_released_leases() {
        let mut ledger = CapacityLedger::new(100);
        let lease = ledger.reserve(10).unwrap();
        ledger.release(lease);
        ledger.commit_growth(&[(lease, 5)]);
    }

    #[test]
    fn force_reserve_admits_requests_larger_than_capacity() {
        let mut ledger = CapacityLedger::new(10);
        let lease = ledger.force_reserve(25);
        assert_eq!(ledger.oversubscribed_bytes(), 15);
        assert!(!ledger.can_fit(1));
        ledger.release(lease);
        assert!(ledger.can_fit(10));
    }

    #[test]
    fn for_memory_uses_device_capacity() {
        let ledger = CapacityLedger::for_memory(&MemorySpec::kelle_kv_edram());
        assert_eq!(ledger.capacity_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "lease already released")]
    fn double_release_panics() {
        let mut ledger = CapacityLedger::new(10);
        let lease = ledger.reserve(5).unwrap();
        ledger.release(lease);
        ledger.release(lease);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        CapacityLedger::new(0);
    }

    #[test]
    fn shared_pool_charges_once_and_refcounts() {
        let mut ledger = CapacityLedger::new(100);
        assert!(ledger.attach_shared(7, 40), "first attach charges");
        assert!(!ledger.attach_shared(7, 40), "second attach only refcounts");
        assert!(!ledger.attach_shared(7, 40));
        assert_eq!(ledger.live_bytes(), 40);
        assert_eq!(ledger.shared_bytes(), 40);
        assert_eq!(ledger.dedup_savings_bytes(), 80);
        assert!(ledger.has_shared(7));
        // Private leases coexist with the pool.
        let lease = ledger.reserve(30).unwrap();
        assert_eq!(ledger.live_bytes(), 70);
        assert!(!ledger.detach_shared(7));
        assert!(!ledger.detach_shared(7));
        assert!(ledger.detach_shared(7), "last detach releases");
        assert!(!ledger.has_shared(7));
        assert_eq!(ledger.live_bytes(), 30);
        ledger.release(lease);
        assert_eq!(ledger.live_bytes(), 0);
        // Savings are cumulative and persist after release.
        assert_eq!(ledger.dedup_savings_bytes(), 80);
        assert_eq!(ledger.high_water_bytes(), 70);
    }

    #[test]
    fn shared_pool_counts_toward_admission_capacity() {
        let mut ledger = CapacityLedger::new(100);
        ledger.attach_shared(1, 60);
        // Admission sees the true footprint: only 40 bytes remain.
        assert!(!ledger.can_fit(41));
        assert!(ledger.can_fit(40));
        // The pool can oversubscribe like force_reserve (the data exists).
        ledger.attach_shared(2, 70);
        assert_eq!(ledger.oversubscribed_bytes(), 30);
        assert_eq!(ledger.peak_oversubscription_bytes(), 30);
    }

    #[test]
    #[should_panic(expected = "different size")]
    fn shared_tag_size_is_immutable() {
        let mut ledger = CapacityLedger::new(100);
        ledger.attach_shared(3, 10);
        ledger.attach_shared(3, 11);
    }

    #[test]
    #[should_panic(expected = "unpooled shared tag")]
    fn detach_unknown_tag_panics() {
        let mut ledger = CapacityLedger::new(100);
        ledger.detach_shared(9);
    }
}
