//! SRAM / eDRAM / DRAM device parameters.
//!
//! Table 1 of the paper (65 nm, 4 MB arrays, Destiny characterisation):
//!
//! | | area | access latency | access energy | leakage | refresh energy | retention |
//! |---|---|---|---|---|---|---|
//! | SRAM  | 7.3 mm² | 2.6 ns | 185.9 pJ/B | 415 mW | — | — |
//! | eDRAM | 3.2 mm² | 1.9 ns | 84.8 pJ/B  | 154 mW | 1.14 mJ (full array) | 45 µs |
//!
//! The off-chip memory is a 16 GB LPDDR4 with 64 GB/s bandwidth (Cacti 7,
//! matching the Google Coral edge platform of §3.1/§8).  The DRAM access
//! energy uses a system-level LPDDR4 transfer cost of ≈200 pJ/B (device +
//! PHY + controller); only ratios between on-chip and off-chip traffic matter
//! for the shapes the evaluation reproduces.

use serde::{Deserialize, Serialize};

/// Reference capacity for the Table 1 area/leakage/refresh numbers.
pub const TABLE1_CAPACITY_BYTES: u64 = 4 * 1024 * 1024;

/// Which on-chip storage technology a buffer is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTechnology {
    /// 6T SRAM.
    Sram,
    /// 3T gain-cell embedded DRAM.
    Edram,
}

impl MemoryTechnology {
    /// Area in mm² for a 4 MB array at 65 nm (Table 1).
    pub fn area_mm2_4mb(self) -> f64 {
        match self {
            MemoryTechnology::Sram => 7.3,
            MemoryTechnology::Edram => 3.2,
        }
    }

    /// Random-access latency in nanoseconds (Table 1).
    pub fn access_latency_ns(self) -> f64 {
        match self {
            MemoryTechnology::Sram => 2.6,
            MemoryTechnology::Edram => 1.9,
        }
    }

    /// Access energy in picojoules per byte (Table 1).
    pub fn access_energy_pj_per_byte(self) -> f64 {
        match self {
            MemoryTechnology::Sram => 185.9,
            MemoryTechnology::Edram => 84.8,
        }
    }

    /// Leakage power in milliwatts for a 4 MB array (Table 1).
    pub fn leakage_mw_4mb(self) -> f64 {
        match self {
            MemoryTechnology::Sram => 415.0,
            MemoryTechnology::Edram => 154.0,
        }
    }

    /// Energy of refreshing the whole 4 MB array once, in millijoules
    /// (Table 1; zero for SRAM which needs no refresh).
    pub fn refresh_energy_mj_4mb(self) -> f64 {
        match self {
            MemoryTechnology::Sram => 0.0,
            MemoryTechnology::Edram => 1.14,
        }
    }

    /// Worst-case cell retention time in microseconds (Table 1; SRAM retains
    /// data indefinitely while powered).
    pub fn retention_time_us(self) -> Option<f64> {
        match self {
            MemoryTechnology::Sram => None,
            MemoryTechnology::Edram => Some(45.0),
        }
    }
}

/// A sized on-chip memory built from one of the technologies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Storage technology.
    pub technology: MemoryTechnology,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak bandwidth in bytes per second (set by the bank organisation; §8
    /// uses 128 GB/s for the weight SRAM and 256 GB/s for the KV eDRAM).
    pub bandwidth_bytes_per_s: f64,
}

impl MemorySpec {
    /// Creates a memory spec.
    ///
    /// # Panics
    ///
    /// Panics if capacity or bandwidth is zero.
    pub fn new(technology: MemoryTechnology, capacity_bytes: u64, bandwidth_gb_per_s: f64) -> Self {
        assert!(capacity_bytes > 0, "memory capacity must be non-zero");
        assert!(
            bandwidth_gb_per_s > 0.0,
            "memory bandwidth must be positive"
        );
        MemorySpec {
            technology,
            capacity_bytes,
            bandwidth_bytes_per_s: bandwidth_gb_per_s * 1e9,
        }
    }

    /// The Kelle accelerator's 4 MB KV-cache eDRAM at 256 GB/s (§5.1, §8).
    pub fn kelle_kv_edram() -> Self {
        MemorySpec::new(MemoryTechnology::Edram, 4 * 1024 * 1024, 256.0)
    }

    /// The Kelle accelerator's 256 KB activation eDRAM (§5.1).
    pub fn kelle_activation_edram() -> Self {
        MemorySpec::new(MemoryTechnology::Edram, 256 * 1024, 256.0)
    }

    /// The Kelle accelerator's 2 MB weight SRAM at 128 GB/s (§5.1, §8).
    pub fn kelle_weight_sram() -> Self {
        MemorySpec::new(MemoryTechnology::Sram, 2 * 1024 * 1024, 128.0)
    }

    /// The Original+SRAM baseline's 4 MB unified SRAM (§8.1.1).
    pub fn baseline_sram_4mb() -> Self {
        MemorySpec::new(MemoryTechnology::Sram, 4 * 1024 * 1024, 128.0)
    }

    /// Area in mm², scaled linearly from the 4 MB Table 1 reference.
    pub fn area_mm2(&self) -> f64 {
        self.technology.area_mm2_4mb() * self.capacity_bytes as f64 / TABLE1_CAPACITY_BYTES as f64
    }

    /// Leakage power in watts, scaled linearly from the 4 MB reference.
    pub fn leakage_w(&self) -> f64 {
        self.technology.leakage_mw_4mb() * 1e-3 * self.capacity_bytes as f64
            / TABLE1_CAPACITY_BYTES as f64
    }

    /// Energy in joules to access `bytes` bytes.
    pub fn access_energy_j(&self, bytes: u64) -> f64 {
        self.technology.access_energy_pj_per_byte() * 1e-12 * bytes as f64
    }

    /// Time in seconds to stream `bytes` bytes at peak bandwidth.
    pub fn access_time_s(&self, bytes: u64) -> f64 {
        self.technology.access_latency_ns() * 1e-9 + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Energy in joules to refresh `bytes` bytes once.
    pub fn refresh_energy_j(&self, bytes: u64) -> f64 {
        self.technology.refresh_energy_mj_4mb() * 1e-3 * bytes as f64 / TABLE1_CAPACITY_BYTES as f64
    }

    /// Average refresh power in watts when `bytes` bytes are refreshed every
    /// `interval_us` microseconds.
    pub fn refresh_power_w(&self, bytes: u64, interval_us: f64) -> f64 {
        if interval_us <= 0.0 {
            return 0.0;
        }
        self.refresh_energy_j(bytes) / (interval_us * 1e-6)
    }
}

/// The NVMe storage tier backing the KV hierarchy's coldest data.
///
/// The paper's platform has no flash tier, but the tiered KV extension
/// (`kelle::tier`) follows DUAL-BLADE/KVNAND-style NVMe offloading: KV
/// arenas that fall out of both eDRAM and DRAM budgets are held on an edge
/// NVMe device and replayed on touch.  The numbers model a commodity edge
/// M.2 drive: sequential-stream bandwidth, first-access latency dominated by
/// the flash translation layer, and a per-byte transfer energy that covers
/// NAND array + controller + PCIe PHY.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmeSpec {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Sustained sequential bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Transfer energy in picojoules per byte (NAND + controller + link).
    pub access_energy_pj_per_byte: f64,
    /// First-access latency in microseconds.
    pub latency_us: f64,
    /// Background (idle) power in watts.
    pub background_power_w: f64,
    /// Probability in `[0, 1]` that any single transfer to or from the
    /// drive fails transiently (media retry, FTL hiccup, link CRC error)
    /// and must be reissued.  `0.0` — the default, and the value every
    /// stock constructor uses — models a perfect device; the chaos-injection
    /// harness (`kelle::chaos`) raises it to exercise the tier-migration
    /// retry/degrade path.  A failed transfer never corrupts data: the
    /// failure model is fail-stop per attempt.
    #[serde(default)]
    pub transient_error_rate: f64,
}

impl NvmeSpec {
    /// A 256 GB edge M.2 NVMe drive: 2 GB/s sustained, ~80 µs first access,
    /// ≈1.5 nJ/B transfer energy (an order of magnitude above LPDDR4, the
    /// ratio that makes NVMe the tier of last resort).
    pub fn edge_m2_256gb() -> Self {
        NvmeSpec {
            capacity_bytes: 256 * 1024 * 1024 * 1024,
            bandwidth_bytes_per_s: 2.0e9,
            access_energy_pj_per_byte: 1500.0,
            latency_us: 80.0,
            background_power_w: 0.05,
            transient_error_rate: 0.0,
        }
    }

    /// Returns the spec with the given transient per-transfer failure
    /// probability (clamped to `[0, 1]`).
    pub fn with_transient_error_rate(mut self, rate: f64) -> Self {
        self.transient_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Energy in joules to transfer `bytes` bytes.
    pub fn access_energy_j(&self, bytes: u64) -> f64 {
        self.access_energy_pj_per_byte * 1e-12 * bytes as f64
    }

    /// Time in seconds to transfer `bytes` bytes at sustained bandwidth.
    pub fn access_time_s(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

/// The off-chip DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramSpec {
    /// Capacity in bytes (16 GB in the paper's platform).
    pub capacity_bytes: u64,
    /// Peak bandwidth in bytes per second (64 GB/s).
    pub bandwidth_bytes_per_s: f64,
    /// Access energy in picojoules per byte.
    pub access_energy_pj_per_byte: f64,
    /// First-word access latency in nanoseconds.
    pub latency_ns: f64,
    /// Background (active-idle) power in watts.
    pub background_power_w: f64,
    /// Die area in mm² (the paper reports 16 mm² for its LPDDR4 model).
    pub area_mm2: f64,
}

impl DramSpec {
    /// The 16 GB, 64 GB/s LPDDR4 configuration used throughout the paper.
    pub fn lpddr4_16gb() -> Self {
        DramSpec {
            capacity_bytes: 16 * 1024 * 1024 * 1024,
            bandwidth_bytes_per_s: 64.0e9,
            access_energy_pj_per_byte: 200.0,
            latency_ns: 100.0,
            background_power_w: 0.35,
            area_mm2: 16.0,
        }
    }

    /// Energy in joules to transfer `bytes` bytes.
    pub fn access_energy_j(&self, bytes: u64) -> f64 {
        self.access_energy_pj_per_byte * 1e-12 * bytes as f64
    }

    /// Time in seconds to transfer `bytes` bytes at peak bandwidth.
    pub fn access_time_s(&self, bytes: u64) -> f64 {
        self.latency_ns * 1e-9 + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        assert_eq!(MemoryTechnology::Sram.area_mm2_4mb(), 7.3);
        assert_eq!(MemoryTechnology::Edram.area_mm2_4mb(), 3.2);
        assert_eq!(MemoryTechnology::Edram.retention_time_us(), Some(45.0));
        assert_eq!(MemoryTechnology::Sram.retention_time_us(), None);
        assert_eq!(MemoryTechnology::Sram.refresh_energy_mj_4mb(), 0.0);
    }

    #[test]
    fn edram_denser_and_cheaper_than_sram() {
        let sram = MemorySpec::baseline_sram_4mb();
        let edram = MemorySpec::kelle_kv_edram();
        assert!(edram.area_mm2() < sram.area_mm2());
        assert!(edram.leakage_w() < sram.leakage_w());
        assert!(edram.access_energy_j(1024) < sram.access_energy_j(1024));
        // >2x density claim: same capacity in < half the area.
        assert!(edram.area_mm2() * 2.0 < sram.area_mm2() * 1.01);
    }

    #[test]
    fn area_scales_linearly_with_capacity() {
        let m8 = MemorySpec::new(MemoryTechnology::Sram, 8 * 1024 * 1024, 128.0);
        let m4 = MemorySpec::baseline_sram_4mb();
        assert!((m8.area_mm2() - 2.0 * m4.area_mm2()).abs() < 1e-9);
    }

    #[test]
    fn refresh_power_matches_hand_calculation() {
        let edram = MemorySpec::kelle_kv_edram();
        // Refreshing the full 4 MB every 45 us: 1.14 mJ / 45 us = 25.3 W.
        let p = edram.refresh_power_w(4 * 1024 * 1024, 45.0);
        assert!((p - 25.33).abs() < 0.5, "got {p}");
        // Relaxing the interval to 1.05 ms cuts it to ~1.1 W.
        let relaxed = edram.refresh_power_w(4 * 1024 * 1024, 1050.0);
        assert!(relaxed < 1.2 && relaxed > 1.0, "got {relaxed}");
    }

    #[test]
    fn refresh_power_zero_for_sram_and_degenerate_interval() {
        let sram = MemorySpec::baseline_sram_4mb();
        assert_eq!(sram.refresh_power_w(1024, 45.0), 0.0);
        let edram = MemorySpec::kelle_kv_edram();
        assert_eq!(edram.refresh_power_w(1024, 0.0), 0.0);
    }

    #[test]
    fn nvme_is_slower_and_costlier_than_dram() {
        let nvme = NvmeSpec::edge_m2_256gb();
        let dram = DramSpec::lpddr4_16gb();
        let bytes = 1 << 20;
        assert!(nvme.access_time_s(bytes) > dram.access_time_s(bytes));
        assert!(nvme.access_energy_j(bytes) > dram.access_energy_j(bytes));
        // Latency floor shows up even for empty transfers.
        assert!(nvme.access_time_s(0) > 79.0e-6);
        assert!(nvme.capacity_bytes > dram.capacity_bytes);
    }

    #[test]
    fn dram_transfer_cost() {
        let dram = DramSpec::lpddr4_16gb();
        // 1 GiB at 64 GB/s takes ~16.8 ms.
        let t = dram.access_time_s(1 << 30);
        assert!(t > 0.015 && t < 0.018, "got {t}");
        assert!(dram.access_energy_j(1 << 30) > 0.1);
    }

    #[test]
    fn access_time_includes_latency_floor() {
        let edram = MemorySpec::kelle_kv_edram();
        assert!(edram.access_time_s(0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        MemorySpec::new(MemoryTechnology::Sram, 0, 128.0);
    }
}
