//! Per-group bit-flip rates derived from a refresh policy.
//!
//! This is the hand-off point between the device layer (which knows retention
//! physics and refresh intervals) and the functional model (which knows which
//! token a value belongs to and which bits are significant).  `kelle-core`
//! converts a [`GroupBitFlipRates`] into the functional model's
//! `BitFlipRates` / `ProbabilisticFaults` when running accuracy experiments.

use serde::{Deserialize, Serialize};

/// Per-(token-group, bit-significance) retention-failure probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupBitFlipRates {
    /// High-score tokens, most significant byte.
    pub hst_msb: f64,
    /// High-score tokens, least significant byte.
    pub hst_lsb: f64,
    /// Low-score tokens, most significant byte.
    pub lst_msb: f64,
    /// Low-score tokens, least significant byte.
    pub lst_lsb: f64,
}

impl GroupBitFlipRates {
    /// A uniform rate across all four groups.
    pub fn uniform(rate: f64) -> Self {
        GroupBitFlipRates {
            hst_msb: rate,
            hst_lsb: rate,
            lst_msb: rate,
            lst_lsb: rate,
        }
    }

    /// Average rate across the four groups (equal weighting, since the four
    /// groups occupy equal shares of the banked layout in §5.1).
    pub fn average(&self) -> f64 {
        (self.hst_msb + self.hst_lsb + self.lst_msb + self.lst_lsb) / 4.0
    }

    /// The worst (largest) per-group rate.
    pub fn max(&self) -> f64 {
        self.hst_msb
            .max(self.hst_lsb)
            .max(self.lst_msb)
            .max(self.lst_lsb)
    }

    /// Whether every group is corruption-free.
    pub fn is_zero(&self) -> bool {
        self.max() <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_average() {
        let r = GroupBitFlipRates::uniform(0.01);
        assert_eq!(r.average(), 0.01);
        assert_eq!(r.max(), 0.01);
        assert!(!r.is_zero());
        assert!(GroupBitFlipRates::default().is_zero());
    }

    #[test]
    fn max_picks_largest() {
        let r = GroupBitFlipRates {
            hst_msb: 0.0,
            hst_lsb: 0.3,
            lst_msb: 0.1,
            lst_lsb: 0.2,
        };
        assert_eq!(r.max(), 0.3);
        assert!((r.average() - 0.15).abs() < 1e-12);
    }
}
