//! The eDRAM controller: refresh scheduling and eviction bookkeeping (§5.1).
//!
//! The hardware has one eviction controller shared across the four bank groups
//! and two refresh controllers (one for the MSB banks, one for the LSB banks),
//! each with per-score-group counters.  For the analytical simulation we need
//! the controller to answer two questions about a window of execution:
//!
//! 1. how many refresh operations were issued and what they cost, given the
//!    refresh policy and the occupancy of each 2DRP group; and
//! 2. how much refresh energy *transient* data (activations scheduled by the
//!    Kelle scheduler, §6) incurs given its lifetime — data whose lifetime is
//!    shorter than its refresh interval is never refreshed at all, which is
//!    the scheduler's whole point.

use crate::device::MemorySpec;
use crate::refresh::RefreshPolicy;
use crate::retention::RetentionModel;
use serde::{Deserialize, Serialize};

/// Refresh work performed over a simulated window.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RefreshActivity {
    /// Number of byte-refresh operations issued (bytes x refresh rounds).
    pub refreshed_bytes: f64,
    /// Energy spent on refresh, in joules.
    pub energy_j: f64,
    /// Average refresh power over the window, in watts.
    pub power_w: f64,
}

impl RefreshActivity {
    /// Combines two activity records.
    pub fn merged(self, other: RefreshActivity, total_duration_s: f64) -> RefreshActivity {
        let energy = self.energy_j + other.energy_j;
        RefreshActivity {
            refreshed_bytes: self.refreshed_bytes + other.refreshed_bytes,
            energy_j: energy,
            power_w: if total_duration_s > 0.0 {
                energy / total_duration_s
            } else {
                0.0
            },
        }
    }
}

/// Counters kept by the eviction controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EvictionActivity {
    /// Number of token evictions executed.
    pub evictions: u64,
    /// Number of in-place slot reuses (new token written into an evicted row).
    pub slot_reuses: u64,
}

/// The eDRAM controller model.
#[derive(Debug, Clone, PartialEq)]
pub struct EdramController {
    spec: MemorySpec,
    retention: RetentionModel,
    policy: RefreshPolicy,
}

impl EdramController {
    /// Creates a controller for an eDRAM array under the given policy.
    pub fn new(spec: MemorySpec, retention: RetentionModel, policy: RefreshPolicy) -> Self {
        EdramController {
            spec,
            retention,
            policy,
        }
    }

    /// The refresh policy in force.
    pub fn policy(&self) -> &RefreshPolicy {
        &self.policy
    }

    /// The memory this controller manages.
    pub fn spec(&self) -> &MemorySpec {
        &self.spec
    }

    /// The retention model.
    pub fn retention(&self) -> &RetentionModel {
        &self.retention
    }

    /// Refresh work for *resident* data (the KV cache itself) held for
    /// `duration_s` seconds with the given per-group occupancy
    /// (HST-MSB, HST-LSB, LST-MSB, LST-LSB order).
    pub fn resident_refresh(&self, bytes_per_group: [u64; 4], duration_s: f64) -> RefreshActivity {
        let intervals = self.policy.group_intervals_us(&self.retention);
        let mut refreshed_bytes = 0.0;
        let mut energy = 0.0;
        for (interval_us, bytes) in intervals.iter().zip(bytes_per_group.iter()) {
            if *bytes == 0 {
                continue;
            }
            let rounds = duration_s / (interval_us * 1e-6);
            refreshed_bytes += rounds * *bytes as f64;
            energy += rounds * self.spec.refresh_energy_j(*bytes);
        }
        RefreshActivity {
            refreshed_bytes,
            energy_j: energy,
            power_w: if duration_s > 0.0 {
                energy / duration_s
            } else {
                0.0
            },
        }
    }

    /// Refresh work for *transient* data (activations, recomputed KV) of size
    /// `bytes` that lives for `lifetime_s` seconds.  Data whose lifetime is
    /// shorter than its refresh interval incurs no refresh at all — the
    /// property the Kelle scheduler exploits (§6).
    ///
    /// The most conservative (shortest) group interval of the policy is used,
    /// since transient activations are not score-classified.
    pub fn transient_refresh(&self, bytes: u64, lifetime_s: f64) -> RefreshActivity {
        let interval_s = self
            .policy
            .group_intervals_us(&self.retention)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
            * 1e-6;
        let rounds = (lifetime_s / interval_s).floor();
        let energy = rounds * self.spec.refresh_energy_j(bytes);
        RefreshActivity {
            refreshed_bytes: rounds * bytes as f64,
            energy_j: energy,
            power_w: if lifetime_s > 0.0 {
                energy / lifetime_s
            } else {
                0.0
            },
        }
    }

    /// The average retention-failure rate seen by resident data under the
    /// current policy (equal-weighted over groups).
    pub fn average_failure_rate(&self) -> f64 {
        self.policy.bit_flip_rates(&self.retention).average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refresh::RefreshIntervals;

    fn controller(policy: RefreshPolicy) -> EdramController {
        EdramController::new(
            MemorySpec::kelle_kv_edram(),
            RetentionModel::default(),
            policy,
        )
    }

    #[test]
    fn conservative_refresh_dominates_relaxed() {
        let bytes = [1 << 20; 4];
        let cons = controller(RefreshPolicy::Conservative).resident_refresh(bytes, 1.0);
        let relaxed = controller(RefreshPolicy::Uniform(1050.0)).resident_refresh(bytes, 1.0);
        let twod =
            controller(RefreshPolicy::two_dimensional_default()).resident_refresh(bytes, 1.0);
        assert!(cons.energy_j > 10.0 * relaxed.energy_j);
        assert!(twod.energy_j < cons.energy_j);
        assert!(cons.power_w > twod.power_w);
    }

    #[test]
    fn two_dimensional_refresh_spends_most_on_hst_msb() {
        let ctrl = controller(RefreshPolicy::TwoDimensional(
            RefreshIntervals::paper_default(),
        ));
        let only_hst_msb = ctrl.resident_refresh([1 << 20, 0, 0, 0], 1.0);
        let only_lst_lsb = ctrl.resident_refresh([0, 0, 0, 1 << 20], 1.0);
        assert!(only_hst_msb.energy_j > 10.0 * only_lst_lsb.energy_j);
    }

    #[test]
    fn empty_occupancy_costs_nothing() {
        let ctrl = controller(RefreshPolicy::Conservative);
        let act = ctrl.resident_refresh([0, 0, 0, 0], 1.0);
        assert_eq!(act.energy_j, 0.0);
        assert_eq!(act.refreshed_bytes, 0.0);
    }

    #[test]
    fn transient_data_shorter_than_interval_is_free() {
        let ctrl = controller(RefreshPolicy::Uniform(1000.0));
        // Lifetime 100 us << 1000 us interval: no refresh.
        let act = ctrl.transient_refresh(64 * 1024, 100e-6);
        assert_eq!(act.energy_j, 0.0);
        // Lifetime 5 ms: 5 refresh rounds.
        let act = ctrl.transient_refresh(64 * 1024, 5e-3);
        assert!(act.energy_j > 0.0);
        assert!((act.refreshed_bytes - 5.0 * 65_536.0).abs() < 1.0);
    }

    #[test]
    fn average_failure_rate_increases_with_relaxed_policy() {
        let cons = controller(RefreshPolicy::Conservative).average_failure_rate();
        let relaxed = controller(RefreshPolicy::Uniform(5000.0)).average_failure_rate();
        assert_eq!(cons, 0.0);
        assert!(relaxed > 1e-3);
    }

    #[test]
    fn merged_activity_adds_energy() {
        let a = RefreshActivity {
            refreshed_bytes: 10.0,
            energy_j: 1.0,
            power_w: 1.0,
        };
        let b = RefreshActivity {
            refreshed_bytes: 20.0,
            energy_j: 3.0,
            power_w: 3.0,
        };
        let m = a.merged(b, 2.0);
        assert_eq!(m.refreshed_bytes, 30.0);
        assert_eq!(m.energy_j, 4.0);
        assert_eq!(m.power_w, 2.0);
    }
}
