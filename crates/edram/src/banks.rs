//! Banked KV-cache eDRAM layout (§5.1).
//!
//! The Kelle accelerator splits each 16-bit KV element bitwise across four bank
//! groups — Key-MSB, Key-LSB, Value-MSB, Value-LSB — with 8 banks per group
//! (32 banks total), so that (a) 2DRP can refresh the MSB and LSB halves at
//! different rates, and (b) the 32×32 systolic array can be fed without bank
//! conflicts.  KV vectors of the same token share an address (row) across all
//! banks, which is what lets an evicted token's slot be reused in place
//! (§8.4.1's permutation-invariance argument).

use serde::{Deserialize, Serialize};

/// The four bank groups of the KV-cache eDRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankGroup {
    /// Most significant byte of key elements.
    KeyMsb,
    /// Least significant byte of key elements.
    KeyLsb,
    /// Most significant byte of value elements.
    ValueMsb,
    /// Least significant byte of value elements.
    ValueLsb,
}

impl BankGroup {
    /// All groups in layout order.
    pub fn all() -> [BankGroup; 4] {
        [
            BankGroup::KeyMsb,
            BankGroup::KeyLsb,
            BankGroup::ValueMsb,
            BankGroup::ValueLsb,
        ]
    }

    /// Index of the group within the layout (0–3).
    pub fn index(self) -> usize {
        match self {
            BankGroup::KeyMsb => 0,
            BankGroup::KeyLsb => 1,
            BankGroup::ValueMsb => 2,
            BankGroup::ValueLsb => 3,
        }
    }

    /// Whether this group stores most-significant bytes.
    pub fn is_msb(self) -> bool {
        matches!(self, BankGroup::KeyMsb | BankGroup::ValueMsb)
    }
}

/// The banked organisation of the KV-cache eDRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankedLayout {
    /// Total number of banks (32 in the paper).
    pub total_banks: usize,
    /// Row width of one bank in bits (128 in Fig. 10).
    pub row_bits: usize,
    /// Per-bank peak bandwidth in bytes per second.
    pub per_bank_bandwidth_bytes_per_s: u64,
}

impl BankedLayout {
    /// The paper's 32-bank layout: 8 banks per group, 128-bit rows, sized so
    /// the aggregate bandwidth is 256 GB/s.
    pub fn kelle_default() -> Self {
        BankedLayout {
            total_banks: 32,
            row_bits: 128,
            per_bank_bandwidth_bytes_per_s: 8_000_000_000, // 8 GB/s x 32 banks = 256 GB/s
        }
    }

    /// The §8.3.7 ablation: half the banks with doubled per-bank capacity, so
    /// total capacity is unchanged but bandwidth halves to 128 GB/s.
    pub fn halved_banks(&self) -> Self {
        BankedLayout {
            total_banks: self.total_banks / 2,
            row_bits: self.row_bits,
            per_bank_bandwidth_bytes_per_s: self.per_bank_bandwidth_bytes_per_s,
        }
    }

    /// Number of banks per group.
    ///
    /// # Panics
    ///
    /// Panics if the bank count is not divisible by the four groups.
    pub fn banks_per_group(&self) -> usize {
        assert_eq!(
            self.total_banks % 4,
            0,
            "banks must divide evenly into 4 groups"
        );
        self.total_banks / 4
    }

    /// Aggregate peak bandwidth in bytes per second.
    pub fn aggregate_bandwidth_bytes_per_s(&self) -> u64 {
        self.per_bank_bandwidth_bytes_per_s * self.total_banks as u64
    }

    /// The bank (within its group) that stores a token's data: tokens are
    /// striped round-robin across the group's banks so consecutive cache slots
    /// hit different banks.
    pub fn bank_of(&self, cache_slot: usize, group: BankGroup) -> usize {
        let per_group = self.banks_per_group();
        group.index() * per_group + (cache_slot % per_group)
    }

    /// Whether reading the given set of cache slots from one group is
    /// conflict-free (each slot maps to a distinct bank).
    pub fn is_conflict_free(&self, cache_slots: &[usize], group: BankGroup) -> bool {
        let mut seen = vec![false; self.total_banks];
        for &slot in cache_slots {
            let bank = self.bank_of(slot, group);
            if seen[bank] {
                return false;
            }
            seen[bank] = true;
        }
        true
    }

    /// How many conflict-free parallel reads a group supports per access.
    pub fn parallel_reads_per_group(&self) -> usize {
        self.banks_per_group()
    }
}

impl Default for BankedLayout {
    fn default() -> Self {
        Self::kelle_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_matches_paper() {
        let layout = BankedLayout::kelle_default();
        assert_eq!(layout.total_banks, 32);
        assert_eq!(layout.banks_per_group(), 8);
        assert_eq!(layout.aggregate_bandwidth_bytes_per_s(), 256_000_000_000);
    }

    #[test]
    fn halved_banks_halves_bandwidth_only() {
        let layout = BankedLayout::kelle_default();
        let halved = layout.halved_banks();
        assert_eq!(halved.total_banks, 16);
        assert_eq!(halved.banks_per_group(), 4);
        assert_eq!(
            halved.aggregate_bandwidth_bytes_per_s() * 2,
            layout.aggregate_bandwidth_bytes_per_s()
        );
    }

    #[test]
    fn bank_mapping_is_within_group_range() {
        let layout = BankedLayout::kelle_default();
        for slot in 0..64 {
            for group in BankGroup::all() {
                let bank = layout.bank_of(slot, group);
                let start = group.index() * 8;
                assert!(bank >= start && bank < start + 8);
            }
        }
    }

    #[test]
    fn consecutive_slots_are_conflict_free() {
        let layout = BankedLayout::kelle_default();
        let slots: Vec<usize> = (0..8).collect();
        assert!(layout.is_conflict_free(&slots, BankGroup::KeyMsb));
        let conflicting: Vec<usize> = vec![0, 8];
        assert!(!layout.is_conflict_free(&conflicting, BankGroup::KeyMsb));
    }

    #[test]
    fn group_indexing() {
        assert_eq!(BankGroup::KeyMsb.index(), 0);
        assert_eq!(BankGroup::ValueLsb.index(), 3);
        assert!(BankGroup::KeyMsb.is_msb());
        assert!(!BankGroup::KeyLsb.is_msb());
        assert_eq!(BankGroup::all().len(), 4);
    }
}
