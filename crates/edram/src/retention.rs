//! eDRAM retention-failure model (Fig. 4).
//!
//! Per-cell retention times in gain-cell eDRAM follow a heavy-tailed
//! distribution across a die (threshold-voltage variation; Kong et al.,
//! cited as \[38\]).  The probability that a cell's stored bit decays before the
//! next refresh is the CDF of that distribution evaluated at the refresh
//! interval.  Fig. 4 of the paper plots this failure rate at 105 °C for the
//! 65 nm array; the curve spans ~1e-6 at tens of microseconds to ~1e-1 at
//! ~10 ms, with the markers 45 µs (guaranteed-safe interval), 784 µs, 1778 µs
//! and 9120 µs.
//!
//! [`RetentionModel`] fits that curve with a log-normal CDF whose parameters
//! are chosen so that the paper's operating points land on it:
//! `F(45 µs) ≈ 3e-6`, `F(1.05 ms) ≈ 2e-3` (the average retention-failure rate
//! quoted in §7.1), `F(9.1 ms) ≈ 4e-2`.

use serde::{Deserialize, Serialize};

/// Log-normal retention-time distribution of an eDRAM array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Mean of `ln(retention time in µs)`.
    pub mu_ln_us: f64,
    /// Standard deviation of `ln(retention time in µs)`.
    pub sigma_ln: f64,
    /// Interval below which refresh guarantees no corruption (Table 1: 45 µs).
    pub safe_interval_us: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self::table1_65nm_105c()
    }
}

impl RetentionModel {
    /// The 65 nm, 105 °C model fitted to Fig. 4.
    pub fn table1_65nm_105c() -> Self {
        RetentionModel {
            mu_ln_us: 12.47,
            sigma_ln: 1.92,
            safe_interval_us: 45.0,
        }
    }

    /// A model with the retention distribution shifted by `factor` (e.g. lower
    /// temperature → longer retention → `factor > 1`).  Used by the §8.3.4
    /// retention-time sensitivity study.
    pub fn scaled_retention(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "retention scale factor must be positive");
        RetentionModel {
            mu_ln_us: self.mu_ln_us + factor.ln(),
            sigma_ln: self.sigma_ln,
            safe_interval_us: self.safe_interval_us * factor,
        }
    }

    /// Probability that a cell refreshed every `interval_us` microseconds
    /// suffers a retention failure before its refresh (per refresh period).
    ///
    /// Intervals at or below the safe interval return 0.
    pub fn failure_rate(&self, interval_us: f64) -> f64 {
        if interval_us <= self.safe_interval_us {
            return 0.0;
        }
        let z = (interval_us.ln() - self.mu_ln_us) / self.sigma_ln;
        normal_cdf(z).clamp(0.0, 1.0)
    }

    /// The refresh interval (µs) that yields a given failure rate — the
    /// inverse of [`failure_rate`](Self::failure_rate).  Returns the safe
    /// interval for rates at or below zero.
    pub fn interval_for_failure_rate(&self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return self.safe_interval_us;
        }
        let z = inverse_normal_cdf(rate.min(0.999_999));
        (self.mu_ln_us + self.sigma_ln * z)
            .exp()
            .max(self.safe_interval_us)
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, max error ~1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse standard normal CDF (Acklam's rational approximation).
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_interval_has_zero_failures() {
        let m = RetentionModel::default();
        assert_eq!(m.failure_rate(45.0), 0.0);
        assert_eq!(m.failure_rate(10.0), 0.0);
    }

    #[test]
    fn failure_rate_is_monotone_in_interval() {
        let m = RetentionModel::default();
        let mut prev = 0.0;
        for interval in [50.0, 100.0, 360.0, 1050.0, 2000.0, 5400.0, 9120.0, 20_000.0] {
            let rate = m.failure_rate(interval);
            assert!(rate >= prev, "rate not monotone at {interval}");
            prev = rate;
        }
    }

    #[test]
    fn fig4_operating_points() {
        let m = RetentionModel::default();
        // 1.05 ms average interval -> ~2e-3 average failure rate (§7.1).
        let r = m.failure_rate(1050.0);
        assert!(r > 8e-4 && r < 5e-3, "1.05ms -> {r}");
        // ~9.1 ms -> a few percent (Fig. 4 right end of the useful range).
        let r = m.failure_rate(9120.0);
        assert!(r > 0.01 && r < 0.1, "9.12ms -> {r}");
        // 360 us -> well below 1e-3.
        let r = m.failure_rate(360.0);
        assert!(r < 1e-3, "360us -> {r}");
    }

    #[test]
    fn inverse_round_trips() {
        let m = RetentionModel::default();
        for interval in [500.0, 1000.0, 2000.0, 8000.0] {
            let rate = m.failure_rate(interval);
            let back = m.interval_for_failure_rate(rate);
            assert!(
                (back - interval).abs() / interval < 0.05,
                "{interval} -> {back}"
            );
        }
        assert_eq!(m.interval_for_failure_rate(0.0), m.safe_interval_us);
    }

    #[test]
    fn scaled_retention_shifts_curve() {
        let base = RetentionModel::default();
        let cooler = base.scaled_retention(4.0);
        assert!(cooler.failure_rate(1050.0) < base.failure_rate(1050.0));
        assert_eq!(cooler.safe_interval_us, 180.0);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }
}
