//! # kelle-edram
//!
//! Memory-device models for the Kelle reproduction: SRAM, 3T-eDRAM and
//! off-chip LPDDR4 DRAM, parameterised directly from the paper's Table 1 and
//! §8 configuration, plus the eDRAM-specific machinery Kelle depends on:
//!
//! * a **retention model** reproducing the retention-failure-rate vs
//!   refresh-interval curve of Fig. 4 (log-normal tail fit);
//! * **refresh policies**: the conservative per-retention-time refresh (`Org`),
//!   a uniform relaxed interval (`Uniform`), and the paper's
//!   **two-dimensional adaptive refresh policy (2DRP)** that assigns different
//!   intervals per token-importance group and per bit-significance group
//!   (§4.2), with refresh-energy/power accounting;
//! * the **banked KV-cache layout** of §5.1 (32 banks split across Key/Value ×
//!   MSB/LSB groups) with bandwidth and conflict accounting;
//! * the **eDRAM controller** (refresh + eviction controllers) that turns a
//!   policy and an occupancy trace into refresh-operation counts and energy;
//! * the **capacity ledger** ([`CapacityLedger`]) that arbitrates one shared
//!   eDRAM budget across concurrent serving sessions: checked admission
//!   reservations, unchecked decode-time growth, high-water and
//!   spill-to-DRAM (oversubscription) accounting;
//! * **per-tier accounting** ([`TierAccounts`]) for the eDRAM → DRAM → NVMe
//!   KV hierarchy: tier budgets, residency peaks and migration traffic —
//!   the byte-level truth behind `kelle::tier`'s watermark-credit placement.
//!
//! The original paper characterises its arrays with Destiny and Cacti at 65 nm
//! / 105 °C; neither tool is available here, so the models are analytical and
//! anchored to the numbers the paper itself reports (see `DESIGN.md` §2).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod banks;
pub mod controller;
pub mod device;
pub mod faults;
pub mod ledger;
pub mod refresh;
pub mod retention;
pub mod tier;

pub use banks::{BankGroup, BankedLayout};
pub use controller::{EdramController, RefreshActivity};
pub use device::{DramSpec, MemorySpec, MemoryTechnology, NvmeSpec};
pub use faults::GroupBitFlipRates;
pub use ledger::{CapacityLedger, LeaseId, LedgerError};
pub use refresh::{RefreshIntervals, RefreshPolicy};
pub use retention::RetentionModel;
pub use tier::{MemoryTier, TierAccounts, TierBudgets, TierTraffic};
