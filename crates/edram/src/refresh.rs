//! Refresh policies, including the two-dimensional adaptive refresh policy.
//!
//! The refresh interval of an eDRAM region determines both its refresh energy
//! (shorter interval → more refresh operations) and its retention-failure rate
//! (longer interval → more decayed bits, see [`crate::retention`]).  The paper
//! evaluates four strategies (§8.3.3):
//!
//! * **Org** — refresh everything at the 45 µs guaranteed-safe interval
//!   (no corruption, maximum refresh energy);
//! * **Uniform** — a single relaxed interval for all data;
//! * **2DRP** — different intervals per (token-importance × bit-significance)
//!   group (§4.2): HST MSBs get the shortest interval, LST LSBs the longest;
//! * **2DRP + Kelle scheduler** — modelled in `kelle-arch` on top of this
//!   policy by shortening transient-data lifetimes.
//!
//! §7.1 gives the default 2DRP intervals: 0.36 ms / 5.4 ms / 1.44 ms / 7.2 ms
//! for HST-MSB / HST-LSB / LST-MSB / LST-LSB, whose harmonic mean is the
//! quoted 1.05 ms average interval.

use crate::device::MemorySpec;
use crate::faults::GroupBitFlipRates;
use crate::retention::RetentionModel;
use serde::{Deserialize, Serialize};

/// Refresh intervals (µs) for the four 2DRP groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshIntervals {
    /// High-score tokens, most significant byte.
    pub hst_msb_us: f64,
    /// High-score tokens, least significant byte.
    pub hst_lsb_us: f64,
    /// Low-score tokens, most significant byte.
    pub lst_msb_us: f64,
    /// Low-score tokens, least significant byte.
    pub lst_lsb_us: f64,
}

impl RefreshIntervals {
    /// The default 2DRP operating point of §7.1.
    pub fn paper_default() -> Self {
        RefreshIntervals {
            hst_msb_us: 360.0,
            hst_lsb_us: 5400.0,
            lst_msb_us: 1440.0,
            lst_lsb_us: 7200.0,
        }
    }

    /// The three 2DRP settings of Table 4, indexed 0–2 (matching the columns
    /// with uniform intervals 540 µs, 1050 µs and 2062 µs respectively).
    pub fn table4_setting(index: usize) -> Self {
        match index {
            0 => RefreshIntervals {
                hst_msb_us: 180.0,
                hst_lsb_us: 3600.0,
                lst_msb_us: 720.0,
                lst_lsb_us: 5400.0,
            },
            1 => RefreshIntervals {
                hst_msb_us: 360.0,
                hst_lsb_us: 5400.0,
                lst_msb_us: 1440.0,
                lst_lsb_us: 7200.0,
            },
            _ => RefreshIntervals {
                hst_msb_us: 720.0,
                hst_lsb_us: 9000.0,
                lst_msb_us: 2880.0,
                lst_lsb_us: 10_800.0,
            },
        }
    }

    /// All four intervals in group order (HST-MSB, HST-LSB, LST-MSB, LST-LSB).
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.hst_msb_us,
            self.hst_lsb_us,
            self.lst_msb_us,
            self.lst_lsb_us,
        ]
    }

    /// Harmonic mean of the four intervals — the effective average interval
    /// between refresh operations, which is how §7.1 summarises the setting
    /// ("average retention time of 1.05 ms").
    pub fn harmonic_mean_us(&self) -> f64 {
        4.0 / self.as_array().iter().map(|i| 1.0 / i).sum::<f64>()
    }

    /// Scales every interval by `factor` (used by the §8.3.4 retention-time
    /// sweep, which reduces the average interval to 525/262/131 µs).
    pub fn scaled(&self, factor: f64) -> Self {
        RefreshIntervals {
            hst_msb_us: self.hst_msb_us * factor,
            hst_lsb_us: self.hst_lsb_us * factor,
            lst_msb_us: self.lst_msb_us * factor,
            lst_lsb_us: self.lst_lsb_us * factor,
        }
    }
}

/// A refresh strategy for the KV-cache eDRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RefreshPolicy {
    /// Refresh everything at the guaranteed-safe retention interval (45 µs).
    Conservative,
    /// Refresh everything at a single relaxed interval (µs).
    Uniform(f64),
    /// The two-dimensional adaptive refresh policy.
    TwoDimensional(RefreshIntervals),
}

impl RefreshPolicy {
    /// The paper's default 2DRP policy.
    pub fn two_dimensional_default() -> Self {
        RefreshPolicy::TwoDimensional(RefreshIntervals::paper_default())
    }

    /// The refresh interval (µs) applied to each of the four groups under this
    /// policy, in the order HST-MSB, HST-LSB, LST-MSB, LST-LSB.
    pub fn group_intervals_us(&self, retention: &RetentionModel) -> [f64; 4] {
        match self {
            RefreshPolicy::Conservative => [retention.safe_interval_us; 4],
            RefreshPolicy::Uniform(us) => [*us; 4],
            RefreshPolicy::TwoDimensional(iv) => iv.as_array(),
        }
    }

    /// Effective average refresh interval (harmonic mean over groups).
    pub fn average_interval_us(&self, retention: &RetentionModel) -> f64 {
        let intervals = self.group_intervals_us(retention);
        4.0 / intervals.iter().map(|i| 1.0 / i).sum::<f64>()
    }

    /// Per-group bit-flip probabilities implied by this policy under the given
    /// retention model.
    pub fn bit_flip_rates(&self, retention: &RetentionModel) -> GroupBitFlipRates {
        let [hst_msb, hst_lsb, lst_msb, lst_lsb] = self.group_intervals_us(retention);
        GroupBitFlipRates {
            hst_msb: retention.failure_rate(hst_msb),
            hst_lsb: retention.failure_rate(hst_lsb),
            lst_msb: retention.failure_rate(lst_msb),
            lst_lsb: retention.failure_rate(lst_lsb),
        }
    }

    /// Average refresh power in watts when the four groups hold
    /// `bytes_per_group` bytes each (HST-MSB, HST-LSB, LST-MSB, LST-LSB order).
    pub fn refresh_power_w(
        &self,
        spec: &MemorySpec,
        retention: &RetentionModel,
        bytes_per_group: [u64; 4],
    ) -> f64 {
        let intervals = self.group_intervals_us(retention);
        intervals
            .iter()
            .zip(bytes_per_group.iter())
            .map(|(interval, bytes)| spec.refresh_power_w(*bytes, *interval))
            .sum()
    }

    /// Refresh energy in joules over a period of `duration_s` seconds with the
    /// given per-group occupancy.
    pub fn refresh_energy_j(
        &self,
        spec: &MemorySpec,
        retention: &RetentionModel,
        bytes_per_group: [u64; 4],
        duration_s: f64,
    ) -> f64 {
        self.refresh_power_w(spec, retention, bytes_per_group) * duration_s
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            RefreshPolicy::Conservative => "org",
            RefreshPolicy::Uniform(_) => "uniform",
            RefreshPolicy::TwoDimensional(_) => "2drp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemorySpec;

    #[test]
    fn paper_default_average_is_about_1050us() {
        let iv = RefreshIntervals::paper_default();
        let avg = iv.harmonic_mean_us();
        assert!((avg - 1050.0).abs() < 30.0, "got {avg}");
    }

    #[test]
    fn conservative_policy_uses_safe_interval() {
        let retention = RetentionModel::default();
        let policy = RefreshPolicy::Conservative;
        assert_eq!(policy.group_intervals_us(&retention), [45.0; 4]);
        let rates = policy.bit_flip_rates(&retention);
        assert_eq!(rates.hst_msb, 0.0);
        assert_eq!(rates.lst_lsb, 0.0);
    }

    #[test]
    fn two_dimensional_rates_are_ordered() {
        let retention = RetentionModel::default();
        let policy = RefreshPolicy::two_dimensional_default();
        let rates = policy.bit_flip_rates(&retention);
        // Shorter interval -> lower failure rate.
        assert!(rates.hst_msb < rates.lst_msb);
        assert!(rates.lst_msb < rates.hst_lsb);
        assert!(rates.hst_lsb < rates.lst_lsb);
    }

    #[test]
    fn refresh_power_decreases_with_longer_intervals() {
        let retention = RetentionModel::default();
        let spec = MemorySpec::kelle_kv_edram();
        let bytes = [1_048_576u64; 4];
        let conservative = RefreshPolicy::Conservative.refresh_power_w(&spec, &retention, bytes);
        let uniform = RefreshPolicy::Uniform(1050.0).refresh_power_w(&spec, &retention, bytes);
        let twod =
            RefreshPolicy::two_dimensional_default().refresh_power_w(&spec, &retention, bytes);
        assert!(conservative > uniform);
        // 2DRP spends slightly more than a uniform policy at the same *average*
        // interval (it refreshes the HST MSB group much more often) but far
        // less than the conservative policy.
        assert!(twod < conservative / 5.0);
    }

    #[test]
    fn refresh_energy_scales_with_duration() {
        let retention = RetentionModel::default();
        let spec = MemorySpec::kelle_kv_edram();
        let bytes = [1 << 20; 4];
        let policy = RefreshPolicy::Uniform(500.0);
        let e1 = policy.refresh_energy_j(&spec, &retention, bytes, 1.0);
        let e2 = policy.refresh_energy_j(&spec, &retention, bytes, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn table4_settings_are_distinct_and_ordered() {
        let a = RefreshIntervals::table4_setting(0).harmonic_mean_us();
        let b = RefreshIntervals::table4_setting(1).harmonic_mean_us();
        let c = RefreshIntervals::table4_setting(2).harmonic_mean_us();
        assert!(a < b && b < c);
    }

    #[test]
    fn scaled_intervals() {
        let iv = RefreshIntervals::paper_default().scaled(0.5);
        assert_eq!(iv.hst_msb_us, 180.0);
        assert!((iv.harmonic_mean_us() - 525.0).abs() < 15.0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(RefreshPolicy::Conservative.name(), "org");
        assert_eq!(RefreshPolicy::Uniform(100.0).name(), "uniform");
        assert_eq!(RefreshPolicy::two_dimensional_default().name(), "2drp");
    }
}
