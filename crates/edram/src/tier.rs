//! Per-tier byte accounting for the eDRAM → DRAM → NVMe KV hierarchy.
//!
//! The [`CapacityLedger`](crate::CapacityLedger) arbitrates *how many* KV
//! bytes are live; this module tracks *where* those bytes reside.  The
//! hierarchy has three tiers, fastest first:
//!
//! 1. **eDRAM** — the on-chip banked KV memory (scarce, the paper's co-design
//!    target);
//! 2. **DRAM** — the LPDDR4 channel ([`DramSpec`](crate::DramSpec));
//! 3. **NVMe** — a simulated edge flash drive
//!    ([`NvmeSpec`](crate::device::NvmeSpec)), the tier of last resort.
//!
//! [`TierAccounts`] is pure bookkeeping: per-tier budgets, per-tier resident
//! bytes with peak tracking, and cumulative migration bytes in and out of
//! every tier.  Placement *policy* (which item moves when) lives in
//! `kelle::tier`'s watermark-credit manager; migration *cost* (latency and
//! energy of moving bytes between tiers) is charged through the `kelle-arch`
//! hardware model.  Keeping the accounting here mirrors the ledger: the
//! device crate owns byte-level truth, the serving stack owns policy.

use serde::{Deserialize, Serialize};

/// One tier of the KV memory hierarchy, fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemoryTier {
    /// On-chip banked KV eDRAM.
    Edram,
    /// Off-chip LPDDR4 DRAM.
    Dram,
    /// Simulated edge NVMe flash.
    Nvme,
}

impl MemoryTier {
    /// All tiers, fastest first.
    pub fn all() -> [MemoryTier; 3] {
        [MemoryTier::Edram, MemoryTier::Dram, MemoryTier::Nvme]
    }

    /// The next-slower tier, or `None` for the bottom of the hierarchy.
    pub fn slower(self) -> Option<MemoryTier> {
        match self {
            MemoryTier::Edram => Some(MemoryTier::Dram),
            MemoryTier::Dram => Some(MemoryTier::Nvme),
            MemoryTier::Nvme => None,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MemoryTier::Edram => "edram",
            MemoryTier::Dram => "dram",
            MemoryTier::Nvme => "nvme",
        }
    }

    fn index(self) -> usize {
        match self {
            MemoryTier::Edram => 0,
            MemoryTier::Dram => 1,
            MemoryTier::Nvme => 2,
        }
    }
}

/// Byte budgets of the three tiers.
///
/// The NVMe budget is advisory — it is the bottom of the hierarchy, so
/// rebalancing has nowhere further to demote and the tier may exceed it
/// (exactly like the ledger's force-reserve oversubscription).  eDRAM and
/// DRAM budgets are hard: the watermark rebalance demotes until they hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierBudgets {
    /// eDRAM tier budget in full-scale KV bytes.
    pub edram_bytes: u64,
    /// DRAM tier budget in full-scale KV bytes.
    pub dram_bytes: u64,
    /// NVMe tier budget in full-scale KV bytes (advisory).
    pub nvme_bytes: u64,
}

impl TierBudgets {
    /// Budgets with an explicit eDRAM bound, DRAM at 16 GiB and an unbounded
    /// NVMe bottom tier.
    ///
    /// # Panics
    ///
    /// Panics if `edram_bytes` is zero.
    pub fn with_edram(edram_bytes: u64) -> Self {
        assert!(edram_bytes > 0, "eDRAM tier budget must be non-zero");
        TierBudgets {
            edram_bytes,
            dram_bytes: 16 * 1024 * 1024 * 1024,
            nvme_bytes: u64::MAX,
        }
    }

    /// Overrides the DRAM budget (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `dram_bytes` is zero.
    pub fn with_dram(mut self, dram_bytes: u64) -> Self {
        assert!(dram_bytes > 0, "DRAM tier budget must be non-zero");
        self.dram_bytes = dram_bytes;
        self
    }

    /// Overrides the advisory NVMe budget (builder style).
    pub fn with_nvme(mut self, nvme_bytes: u64) -> Self {
        self.nvme_bytes = nvme_bytes;
        self
    }

    /// The budget of one tier.
    pub fn budget(&self, tier: MemoryTier) -> u64 {
        match tier {
            MemoryTier::Edram => self.edram_bytes,
            MemoryTier::Dram => self.dram_bytes,
            MemoryTier::Nvme => self.nvme_bytes,
        }
    }

    /// Total bytes of the whole hierarchy (saturating: the advisory NVMe
    /// budget defaults to `u64::MAX`).
    pub fn total_bytes(&self) -> u64 {
        self.edram_bytes
            .saturating_add(self.dram_bytes)
            .saturating_add(self.nvme_bytes)
    }
}

/// Cumulative migration traffic of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierTraffic {
    /// Bytes migrated into the tier since construction.
    pub in_bytes: u64,
    /// Bytes migrated out of the tier since construction.
    pub out_bytes: u64,
}

/// Per-tier byte accounting: residency, peaks and migration traffic.
///
/// All operations are plain integer bookkeeping and panic on accounting
/// bugs (removing more bytes than resident), the same contract as the
/// [`CapacityLedger`](crate::CapacityLedger).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierAccounts {
    budgets: TierBudgets,
    resident: [u64; 3],
    peak: [u64; 3],
    traffic: [TierTraffic; 3],
    demotions: u64,
    promotions: u64,
}

impl TierAccounts {
    /// Empty accounts over the given budgets.
    pub fn new(budgets: TierBudgets) -> Self {
        TierAccounts {
            budgets,
            resident: [0; 3],
            peak: [0; 3],
            traffic: [TierTraffic::default(); 3],
            demotions: 0,
            promotions: 0,
        }
    }

    /// The configured budgets.
    pub fn budgets(&self) -> &TierBudgets {
        &self.budgets
    }

    /// Bytes currently resident in `tier`.
    pub fn resident_bytes(&self, tier: MemoryTier) -> u64 {
        self.resident[tier.index()]
    }

    /// Peak bytes ever resident in `tier`.
    pub fn peak_bytes(&self, tier: MemoryTier) -> u64 {
        self.peak[tier.index()]
    }

    /// Cumulative migration traffic of `tier`.
    pub fn traffic(&self, tier: MemoryTier) -> TierTraffic {
        self.traffic[tier.index()]
    }

    /// Number of demotions (moves to a slower tier) performed.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Number of promotions (moves to a faster tier) performed.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Bytes still free under `tier`'s budget (zero when over budget).
    pub fn free_bytes(&self, tier: MemoryTier) -> u64 {
        self.budgets
            .budget(tier)
            .saturating_sub(self.resident[tier.index()])
    }

    /// Whether placing `bytes` more in `tier` stays within its budget.
    pub fn fits(&self, tier: MemoryTier, bytes: u64) -> bool {
        bytes <= self.free_bytes(tier)
    }

    /// Bytes by which `tier` currently exceeds its budget.
    pub fn over_budget_bytes(&self, tier: MemoryTier) -> u64 {
        self.resident[tier.index()].saturating_sub(self.budgets.budget(tier))
    }

    /// Total resident bytes across all tiers.
    pub fn total_resident_bytes(&self) -> u64 {
        self.resident.iter().sum()
    }

    /// Places newly allocated bytes in `tier` (no migration traffic — the
    /// bytes are created there, e.g. an admission prefill or decode growth
    /// landing in eDRAM).
    pub fn place(&mut self, tier: MemoryTier, bytes: u64) {
        let i = tier.index();
        self.resident[i] += bytes;
        self.peak[i] = self.peak[i].max(self.resident[i]);
    }

    /// Removes released bytes from `tier` (no migration traffic — the bytes
    /// are freed, e.g. a completed session's lease).
    ///
    /// # Panics
    ///
    /// Panics if `tier` holds fewer than `bytes` resident bytes.
    pub fn remove(&mut self, tier: MemoryTier, bytes: u64) {
        let i = tier.index();
        assert!(
            self.resident[i] >= bytes,
            "removing {bytes} bytes from {} which holds only {}",
            tier.name(),
            self.resident[i]
        );
        self.resident[i] -= bytes;
    }

    /// Migrates `bytes` from `from` to `to`, recording traffic on both tiers
    /// and counting a demotion or promotion by tier order.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or `from` holds fewer than `bytes`.
    pub fn migrate(&mut self, from: MemoryTier, to: MemoryTier, bytes: u64) {
        assert_ne!(from, to, "migration requires distinct tiers");
        self.remove(from, bytes);
        self.place(to, bytes);
        self.traffic[from.index()].out_bytes += bytes;
        self.traffic[to.index()].in_bytes += bytes;
        if to > from {
            self.demotions += 1;
        } else {
            self.promotions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_and_neighbours() {
        assert!(MemoryTier::Edram < MemoryTier::Dram);
        assert!(MemoryTier::Dram < MemoryTier::Nvme);
        assert_eq!(MemoryTier::Edram.slower(), Some(MemoryTier::Dram));
        assert_eq!(MemoryTier::Dram.slower(), Some(MemoryTier::Nvme));
        assert_eq!(MemoryTier::Nvme.slower(), None);
        assert_eq!(
            MemoryTier::all().map(MemoryTier::name),
            ["edram", "dram", "nvme"]
        );
    }

    #[test]
    fn budgets_builder_and_totals() {
        let budgets = TierBudgets::with_edram(4 << 20).with_dram(64 << 20);
        assert_eq!(budgets.budget(MemoryTier::Edram), 4 << 20);
        assert_eq!(budgets.budget(MemoryTier::Dram), 64 << 20);
        assert_eq!(budgets.budget(MemoryTier::Nvme), u64::MAX);
        assert_eq!(budgets.total_bytes(), u64::MAX, "saturating total");
        let bounded = budgets.with_nvme(1 << 30);
        assert_eq!(bounded.total_bytes(), (4 << 20) + (64 << 20) + (1 << 30));
    }

    #[test]
    #[should_panic(expected = "eDRAM tier budget must be non-zero")]
    fn zero_edram_budget_panics() {
        TierBudgets::with_edram(0);
    }

    #[test]
    fn place_grow_migrate_remove_roundtrip() {
        let mut accounts = TierAccounts::new(TierBudgets::with_edram(100).with_dram(200));
        accounts.place(MemoryTier::Edram, 80);
        assert_eq!(accounts.resident_bytes(MemoryTier::Edram), 80);
        assert_eq!(accounts.free_bytes(MemoryTier::Edram), 20);
        assert!(accounts.fits(MemoryTier::Edram, 20));
        assert!(!accounts.fits(MemoryTier::Edram, 21));

        accounts.place(MemoryTier::Edram, 40);
        assert_eq!(accounts.over_budget_bytes(MemoryTier::Edram), 20);
        accounts.migrate(MemoryTier::Edram, MemoryTier::Dram, 50);
        assert_eq!(accounts.resident_bytes(MemoryTier::Edram), 70);
        assert_eq!(accounts.resident_bytes(MemoryTier::Dram), 50);
        assert_eq!(accounts.demotions(), 1);
        assert_eq!(accounts.traffic(MemoryTier::Dram).in_bytes, 50);
        assert_eq!(accounts.traffic(MemoryTier::Edram).out_bytes, 50);

        accounts.migrate(MemoryTier::Dram, MemoryTier::Edram, 50);
        assert_eq!(accounts.promotions(), 1);
        assert_eq!(accounts.resident_bytes(MemoryTier::Dram), 0);
        // Peaks remember the high-water marks.
        assert_eq!(accounts.peak_bytes(MemoryTier::Edram), 120);
        assert_eq!(accounts.peak_bytes(MemoryTier::Dram), 50);

        accounts.remove(MemoryTier::Edram, 120);
        assert_eq!(accounts.total_resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "removing 10 bytes from dram")]
    fn removing_unresident_bytes_panics() {
        let mut accounts = TierAccounts::new(TierBudgets::with_edram(100));
        accounts.remove(MemoryTier::Dram, 10);
    }

    #[test]
    #[should_panic(expected = "distinct tiers")]
    fn self_migration_panics() {
        let mut accounts = TierAccounts::new(TierBudgets::with_edram(100));
        accounts.place(MemoryTier::Edram, 10);
        accounts.migrate(MemoryTier::Edram, MemoryTier::Edram, 10);
    }
}
