//! Multi-session serving scenarios.
//!
//! The single-prompt generator ([`crate::generator`]) models one request;
//! serving experiments additionally need *fleets* of concurrent sessions
//! with realistic cross-session structure.  The first such scenario is the
//! shared-system-prompt fleet: edge chatbots front every conversation with
//! the same instruction preamble, so N concurrent sessions share one long
//! common prefix and differ only in their (much shorter) user turns — the
//! workload cross-session prefix sharing exists for.

use kelle_tensor::rng::{self, DetRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A deterministic fleet of sessions sharing one system prompt.
///
/// Session `i`'s first prompt is `system_prompt() ++ user_suffix(i)`.  The
/// system prompt is drawn once from the scenario seed; the per-session user
/// suffixes come from decorrelated substreams, so two scenarios with the
/// same parameters are identical token-for-token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedPromptScenario {
    /// Number of concurrent sessions.
    pub sessions: usize,
    /// Tokens in the shared system prompt.
    pub system_tokens: usize,
    /// Tokens in each session's private user suffix.
    pub user_tokens: usize,
    /// Decode steps each session requests.
    pub decode_len: usize,
    /// Vocabulary size prompts are drawn from.
    pub vocab: usize,
    /// Scenario seed.
    pub seed: u64,
}

impl SharedPromptScenario {
    /// A scenario of `sessions` sessions sharing a `system_tokens`-token
    /// system prompt.
    ///
    /// # Panics
    ///
    /// Panics if any of `sessions`, `system_tokens`, `user_tokens`,
    /// `decode_len` is zero, or `vocab < 16`.
    pub fn new(sessions: usize, system_tokens: usize, user_tokens: usize) -> Self {
        let scenario = SharedPromptScenario {
            sessions,
            system_tokens,
            user_tokens,
            decode_len: 16,
            vocab: 512,
            seed: 23,
        };
        scenario.validate();
        scenario
    }

    /// Overrides the decode length (builder style).
    pub fn with_decode_len(mut self, decode_len: usize) -> Self {
        self.decode_len = decode_len;
        self.validate();
        self
    }

    /// Overrides the vocabulary (builder style).
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self.validate();
        self
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(self.sessions > 0, "scenario needs at least one session");
        assert!(self.system_tokens > 0, "system prompt must be non-empty");
        assert!(self.user_tokens > 0, "user suffix must be non-empty");
        assert!(self.decode_len > 0, "decode length must be non-zero");
        assert!(self.vocab >= 16, "vocabulary must have at least 16 tokens");
    }

    fn stream(&self, label: &str, len: usize) -> Vec<usize> {
        let mut rng: DetRng = rng::substream(self.seed, label);
        (0..len)
            .map(|_| {
                // Zipf body over the lower half of the vocabulary: the same
                // heavy-hitter structure as the single-prompt generator, so
                // cache policies behave realistically over the shared prefix.
                if rng.gen::<f32>() < 0.1 {
                    rng.gen_range(self.vocab / 2..self.vocab)
                } else {
                    rng::zipf_index(&mut rng, self.vocab / 2, 1.1)
                }
            })
            .collect()
    }

    /// The shared system prompt (identical for every session).
    pub fn system_prompt(&self) -> Vec<usize> {
        self.stream("system", self.system_tokens)
    }

    /// Session `i`'s private user suffix.
    pub fn user_suffix(&self, session: usize) -> Vec<usize> {
        self.stream(&format!("user-{session}"), self.user_tokens)
    }

    /// Session `i`'s full first prompt: system prompt + user suffix.
    pub fn session_prompt(&self, session: usize) -> Vec<usize> {
        let mut prompt = self.system_prompt();
        prompt.extend(self.user_suffix(session));
        prompt
    }

    /// All session prompts, in session order.
    pub fn prompts(&self) -> Vec<Vec<usize>> {
        (0..self.sessions).map(|i| self.session_prompt(i)).collect()
    }

    /// Total prompt tokens a sharing-oblivious stack pre-fills.
    pub fn total_prompt_tokens(&self) -> usize {
        self.sessions * (self.system_tokens + self.user_tokens)
    }

    /// Prompt tokens that are redundant recomputation without sharing (the
    /// system prompt re-pre-filled by every session beyond the first).
    pub fn redundant_prompt_tokens(&self) -> usize {
        (self.sessions - 1) * self.system_tokens
    }
}

/// A multi-worker serving sweep over a [`SharedPromptScenario`] fleet.
///
/// The threaded serving front-end (`kelle::parallel`) promises bit-identical
/// token streams for every worker count; what changes is wall-clock decode
/// throughput.  This scenario pins the fleet *and* the worker counts to
/// sweep, so the `bench_serving` harness, the determinism gate and local
/// experiments all measure the same shape.  Like every scenario in this
/// crate it is pure data — deterministic in its seed and independent of the
/// serving stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelScenario {
    /// The session fleet every worker count serves.
    pub fleet: SharedPromptScenario,
    /// Worker counts to sweep, in measurement order.
    pub worker_counts: Vec<usize>,
}

impl ParallelScenario {
    /// A sweep of `worker_counts` over the given fleet.
    ///
    /// # Panics
    ///
    /// Panics if `worker_counts` is empty or contains a zero.
    pub fn new(fleet: SharedPromptScenario, worker_counts: Vec<usize>) -> Self {
        let scenario = ParallelScenario {
            fleet,
            worker_counts,
        };
        scenario.validate();
        scenario
    }

    /// The acceptance-shape sweep: the 8-session × 256-token shared-prompt
    /// fleet served at 1, 2 and 4 workers.
    pub fn edge_fleet() -> Self {
        ParallelScenario::new(
            SharedPromptScenario::new(8, 256, 16).with_decode_len(32),
            vec![1, 2, 4],
        )
    }

    /// Overrides the worker counts (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `worker_counts` is empty or contains a zero.
    pub fn with_worker_counts(mut self, worker_counts: Vec<usize>) -> Self {
        self.worker_counts = worker_counts;
        self.validate();
        self
    }

    fn validate(&self) {
        assert!(
            !self.worker_counts.is_empty(),
            "sweep needs at least one worker count"
        );
        assert!(
            self.worker_counts.iter().all(|&w| w > 0),
            "worker counts must be non-zero"
        );
    }

    /// Total tokens the fleet decodes (the numerator of aggregate decode
    /// throughput).
    pub fn total_decode_tokens(&self) -> usize {
        self.fleet.sessions * self.fleet.decode_len
    }
}

/// A long-lived session fleet for the async serving front-end
/// (`kelle::front`): short prompts, long decode tails, served through the
/// submit/poll API with a sticky-shard and a work-stealing executor.
///
/// The shape is the opposite of [`ParallelScenario::edge_fleet`]'s
/// prefill-heavy burst: here almost all the work is decode ticks on
/// sessions that stay resident for a long time, which is exactly where the
/// sticky-shard executor's queue-traffic win shows up (a stealing executor
/// moves every session across the task queue twice per tick; a sticky one
/// moves only per-tick step results).  `bench_front` sweeps this scenario
/// at each worker count with both executors and asserts the streams are
/// bit-identical while measuring queue-crossings/tick and tokens/s.
/// Pure data, deterministic in its seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontScenario {
    /// The long-lived session fleet.
    pub fleet: SharedPromptScenario,
    /// Worker counts to sweep, in measurement order.
    pub worker_counts: Vec<usize>,
    /// Per-stream token-buffer bound the front applies while serving
    /// (`None` = unbounded, never pauses).
    pub stream_capacity: Option<usize>,
}

impl FrontScenario {
    /// A front-end sweep of `worker_counts` over the given fleet.
    ///
    /// # Panics
    ///
    /// Panics if `worker_counts` is empty or contains a zero.
    pub fn new(fleet: SharedPromptScenario, worker_counts: Vec<usize>) -> Self {
        let scenario = FrontScenario {
            fleet,
            worker_counts,
            stream_capacity: None,
        };
        scenario.validate();
        scenario
    }

    /// The acceptance-shape fleet: 16 long-lived sessions (64-token shared
    /// system prompt, 8-token user turns) each decoding 96 tokens, served
    /// at 1, 2 and 4 workers.  Decode dominates prefill ~6:1, the shape the
    /// sticky-shard executor exists for.
    pub fn long_lived_fleet() -> Self {
        FrontScenario::new(
            SharedPromptScenario::new(16, 64, 8).with_decode_len(96),
            vec![1, 2, 4],
        )
    }

    /// Overrides the worker counts (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `worker_counts` is empty or contains a zero.
    pub fn with_worker_counts(mut self, worker_counts: Vec<usize>) -> Self {
        self.worker_counts = worker_counts;
        self.validate();
        self
    }

    /// Bounds each per-session token buffer (builder style).
    pub fn with_stream_capacity(mut self, capacity: usize) -> Self {
        self.stream_capacity = Some(capacity);
        self
    }

    fn validate(&self) {
        assert!(
            !self.worker_counts.is_empty(),
            "sweep needs at least one worker count"
        );
        assert!(
            self.worker_counts.iter().all(|&w| w > 0),
            "worker counts must be non-zero"
        );
    }

    /// Total tokens the fleet decodes (the numerator of aggregate decode
    /// throughput).
    pub fn total_decode_tokens(&self) -> usize {
        self.fleet.sessions * self.fleet.decode_len
    }
}

/// A tiered-memory pressure scenario: a fleet whose total KV demand
/// deliberately exceeds the on-chip budget.
///
/// The tier budgets are expressed as *percentages of the fleet's total KV
/// demand* rather than absolute bytes, because the byte demand depends on
/// the serving stack's model shape and cache policy — which this crate, being
/// pure data, knows nothing about.  The serving-side harness computes the
/// demand (`engine.kv_footprint_bytes` per prompt+decode) and scales the
/// percentages into a concrete `TierBudgets`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieringScenario {
    /// The session fleet driving the memory pressure.
    pub fleet: SharedPromptScenario,
    /// eDRAM tier budget as a percentage of the fleet's total KV demand
    /// (< 100 forces overflow into DRAM/NVMe).
    pub edram_percent_of_demand: u32,
    /// DRAM tier budget as a percentage of the fleet's total KV demand.
    pub dram_percent_of_demand: u32,
}

impl TieringScenario {
    /// A scenario over the given fleet with the tier budgets expressed as
    /// percentages of its total KV demand.
    ///
    /// # Panics
    ///
    /// Panics if either percentage is zero.
    pub fn new(fleet: SharedPromptScenario, edram_percent: u32, dram_percent: u32) -> Self {
        let scenario = TieringScenario {
            fleet,
            edram_percent_of_demand: edram_percent,
            dram_percent_of_demand: dram_percent,
        };
        scenario.validate();
        scenario
    }

    /// The acceptance-shape pressure fleet: the 8-session shared-prompt
    /// fleet with an eDRAM tier sized to 40 % of its total KV demand and a
    /// DRAM tier sized to 50 % — so the hierarchy's settled state *must*
    /// keep bytes in DRAM (and, transiently, NVMe) to hold the fleet.
    pub fn edge_pressure() -> Self {
        TieringScenario::new(
            SharedPromptScenario::new(8, 256, 16).with_decode_len(32),
            40,
            50,
        )
    }

    fn validate(&self) {
        assert!(
            self.edram_percent_of_demand > 0,
            "eDRAM percentage must be non-zero"
        );
        assert!(
            self.dram_percent_of_demand > 0,
            "DRAM percentage must be non-zero"
        );
    }

    /// Scales a total KV demand (bytes) into this scenario's eDRAM budget.
    pub fn edram_budget_bytes(&self, total_demand_bytes: u64) -> u64 {
        percent_of(total_demand_bytes, self.edram_percent_of_demand)
    }

    /// Scales a total KV demand (bytes) into this scenario's DRAM budget.
    pub fn dram_budget_bytes(&self, total_demand_bytes: u64) -> u64 {
        percent_of(total_demand_bytes, self.dram_percent_of_demand)
    }
}

/// A chaos-hardened serving scenario: a fleet served while a fixed fraction
/// of decode ticks lose their worker and a fixed fraction of tier
/// migrations fail transiently.
///
/// Rates are per-mille (0–1000) so they map directly onto the serving
/// stack's deterministic fault-injection plan; like every scenario in this
/// crate it is pure data — the integration suite and the `bench_chaos`
/// harness turn it into a concrete chaos configuration.  The recovery
/// invariant the serving stack promises (and the suite asserts) is that
/// every surviving session's stream is bit-identical to a fault-free run of
/// the same fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosScenario {
    /// The session fleet served under fault injection.
    pub fleet: SharedPromptScenario,
    /// Per-mille of per-session decode steps whose worker panics mid-tick.
    pub worker_loss_per_mille: u32,
    /// Per-mille of tier-migration transfers that fail transiently.
    pub migration_fault_per_mille: u32,
    /// Per-mille of admission reservations that fail transiently.
    pub ledger_blip_per_mille: u32,
    /// Seed of the fault-injection plan (decorrelated from the fleet seed).
    pub chaos_seed: u64,
}

impl ChaosScenario {
    /// A scenario over the given fleet with the given fault rates.
    ///
    /// # Panics
    ///
    /// Panics if every rate is zero (use the plain fleet instead) or any
    /// rate exceeds 1000 ‰.
    pub fn new(fleet: SharedPromptScenario, worker_loss: u32, migration_faults: u32) -> Self {
        let scenario = ChaosScenario {
            fleet,
            worker_loss_per_mille: worker_loss,
            migration_fault_per_mille: migration_faults,
            ledger_blip_per_mille: 0,
            chaos_seed: 41,
        };
        scenario.validate();
        scenario
    }

    /// The acceptance-shape chaos fleet: the 8-session shared-prompt fleet
    /// with 5 % of decode steps losing their worker and 10 % of migrations
    /// failing transiently.
    pub fn edge_chaos() -> Self {
        ChaosScenario::new(
            SharedPromptScenario::new(8, 256, 16).with_decode_len(32),
            50,
            100,
        )
    }

    /// Overrides the admission-blip rate (builder style).
    pub fn with_ledger_blips(mut self, per_mille: u32) -> Self {
        self.ledger_blip_per_mille = per_mille;
        self.validate();
        self
    }

    /// Overrides the chaos seed (builder style).
    pub fn with_chaos_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = seed;
        self
    }

    fn validate(&self) {
        let rates = [
            self.worker_loss_per_mille,
            self.migration_fault_per_mille,
            self.ledger_blip_per_mille,
        ];
        assert!(
            rates.iter().any(|&r| r > 0),
            "a chaos scenario needs at least one non-zero fault rate"
        );
        assert!(
            rates.iter().all(|&r| r <= 1000),
            "fault rates are per-mille and cannot exceed 1000"
        );
    }

    /// Expected worker losses across the fleet's decode steps (the fault
    /// budget the recovery machinery must absorb).
    pub fn expected_worker_losses(&self) -> f64 {
        (self.fleet.sessions * self.fleet.decode_len) as f64
            * (self.worker_loss_per_mille as f64 / 1000.0)
    }
}

/// `percent` % of `bytes`, saturating, with a 1-byte floor so a tiny demand
/// never degenerates into a zero (hence panicking) tier budget.
fn percent_of(bytes: u64, percent: u32) -> u64 {
    ((bytes as u128 * percent as u128) / 100)
        .min(u64::MAX as u128)
        .max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompts_share_the_system_prefix_and_differ_after() {
        let scenario = SharedPromptScenario::new(4, 32, 8);
        let system = scenario.system_prompt();
        assert_eq!(system.len(), 32);
        for i in 0..scenario.sessions {
            let prompt = scenario.session_prompt(i);
            assert_eq!(prompt.len(), 40);
            assert_eq!(&prompt[..32], &system[..]);
            assert!(prompt.iter().all(|&t| t < scenario.vocab));
        }
        // User suffixes are decorrelated.
        assert_ne!(scenario.user_suffix(0), scenario.user_suffix(1));
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = SharedPromptScenario::new(3, 16, 4).with_seed(9);
        let b = SharedPromptScenario::new(3, 16, 4).with_seed(9);
        assert_eq!(a.prompts(), b.prompts());
        let c = SharedPromptScenario::new(3, 16, 4).with_seed(10);
        assert_ne!(a.system_prompt(), c.system_prompt());
    }

    #[test]
    fn token_accounting() {
        let scenario = SharedPromptScenario::new(8, 256, 16);
        assert_eq!(scenario.total_prompt_tokens(), 8 * 272);
        assert_eq!(scenario.redundant_prompt_tokens(), 7 * 256);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn zero_sessions_panics() {
        SharedPromptScenario::new(0, 8, 2);
    }

    #[test]
    fn parallel_scenario_pins_fleet_and_worker_counts() {
        let sweep = ParallelScenario::edge_fleet();
        assert_eq!(sweep.fleet.sessions, 8);
        assert_eq!(sweep.fleet.system_tokens, 256);
        assert_eq!(sweep.worker_counts, vec![1, 2, 4]);
        assert_eq!(sweep.total_decode_tokens(), 8 * 32);
        let wide = sweep.with_worker_counts(vec![1, 8]);
        assert_eq!(wide.worker_counts, vec![1, 8]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_worker_count_panics() {
        ParallelScenario::new(SharedPromptScenario::new(2, 8, 2), vec![1, 0]);
    }

    #[test]
    fn front_scenario_is_decode_dominated() {
        let scenario = FrontScenario::long_lived_fleet();
        assert_eq!(scenario.fleet.sessions, 16);
        assert_eq!(scenario.worker_counts, vec![1, 2, 4]);
        assert_eq!(scenario.stream_capacity, None);
        // Decode work outweighs prefill work: that is the long-lived shape.
        assert!(scenario.total_decode_tokens() > scenario.fleet.total_prompt_tokens());
        let bounded = scenario.with_stream_capacity(4);
        assert_eq!(bounded.stream_capacity, Some(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_front_worker_count_panics() {
        FrontScenario::new(SharedPromptScenario::new(2, 8, 2), vec![0]);
    }

    #[test]
    fn tiering_scenario_scales_budgets_from_demand() {
        let scenario = TieringScenario::edge_pressure();
        assert_eq!(scenario.edram_percent_of_demand, 40);
        assert_eq!(scenario.edram_budget_bytes(1000), 400);
        assert_eq!(scenario.dram_budget_bytes(1000), 500);
        // The floor keeps degenerate demands from producing a zero budget.
        assert_eq!(scenario.edram_budget_bytes(0), 1);
    }

    #[test]
    #[should_panic(expected = "eDRAM percentage")]
    fn zero_edram_percent_panics() {
        TieringScenario::new(SharedPromptScenario::new(2, 8, 2), 0, 50);
    }

    #[test]
    fn chaos_scenario_pins_rates_and_fault_budget() {
        let scenario = ChaosScenario::edge_chaos();
        assert_eq!(scenario.worker_loss_per_mille, 50);
        assert_eq!(scenario.migration_fault_per_mille, 100);
        assert_eq!(scenario.ledger_blip_per_mille, 0);
        // 8 sessions x 32 decode steps at 5% ≈ 12.8 expected losses.
        let expected = scenario.expected_worker_losses();
        assert!((expected - 12.8).abs() < 1e-9);
        let blippy = scenario.clone().with_ledger_blips(75).with_chaos_seed(7);
        assert_eq!(blippy.ledger_blip_per_mille, 75);
        assert_eq!(blippy.chaos_seed, 7);
        assert_eq!(blippy.fleet, scenario.fleet);
    }

    #[test]
    #[should_panic(expected = "non-zero fault rate")]
    fn all_zero_chaos_rates_panic() {
        ChaosScenario::new(SharedPromptScenario::new(2, 8, 2), 0, 0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed 1000")]
    fn over_unit_chaos_rate_panics() {
        ChaosScenario::new(SharedPromptScenario::new(2, 8, 2), 1001, 0);
    }
}
