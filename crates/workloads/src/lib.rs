//! # kelle-workloads
//!
//! Synthetic workload and dataset generators standing in for the evaluation
//! suites of the Kelle paper (WikiText-2, PG19, PIQA, Lambada, ARC, TriviaQA,
//! Qasper, CNN/DailyMail, TruthfulQA, BBQ).
//!
//! The real datasets cannot be shipped here; what the experiments actually
//! need from them is (a) token streams with realistic length statistics and a
//! skewed token distribution, and (b) per-task reference scores for the FP16
//! baseline so that fidelity-proxy degradations can be reported on the same
//! scale as the paper's tables.  [`TaskKind`] provides the catalogue and
//! reference numbers; [`TokenStreamGenerator`] produces deterministic synthetic
//! prompts with attention-sink and heavy-hitter structure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod scenario;
pub mod task;
pub mod trace;

pub use generator::{GeneratedPrompt, TokenStreamGenerator};
pub use scenario::{
    ChaosScenario, FrontScenario, ParallelScenario, SharedPromptScenario, TieringScenario,
};
pub use task::{TaskKind, TaskMetric};
pub use trace::{
    ArrivalProcess, HierarchyPublication, PrefixHierarchy, SessionArchetype, Trace, TraceConfig,
    TraceEngine, TraceRequest,
};
