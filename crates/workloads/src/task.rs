//! The task catalogue of the paper's evaluation (§7.1, Tables 2 and 5).

use serde::{Deserialize, Serialize};

/// How a task's quality is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskMetric {
    /// Perplexity (lower is better).
    Perplexity,
    /// Multiple-choice / exact-match accuracy in percent (higher is better).
    Accuracy,
    /// Generative quality score such as ROUGE-1 (higher is better).
    Quality,
}

/// One of the evaluation tasks used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TaskKind {
    /// WikiText-2 language modelling (Table 2, "WK2").
    WikiText2,
    /// PG19 long-form book generation (Table 2, "PG19").
    Pg19,
    /// ARC-Challenge (Table 2, "A-c").
    ArcChallenge,
    /// ARC-Easy (Table 2, "A-e").
    ArcEasy,
    /// PIQA (Table 2, "PQ").
    Piqa,
    /// Lambada (Table 2, "LA").
    Lambada,
    /// TriviaQA (Table 2, "TQ").
    TriviaQa,
    /// Qasper (Table 2, "QP").
    Qasper,
    /// CNN/DailyMail summarization (Table 5, ROUGE-1).
    CnnDailyMail,
    /// TruthfulQA multiple choice (Table 5).
    TruthfulQa,
    /// BBQ bias benchmark (Table 5).
    Bbq,
}

impl TaskKind {
    /// The eight Table 2 tasks in column order.
    pub fn table2() -> [TaskKind; 8] {
        [
            TaskKind::WikiText2,
            TaskKind::Pg19,
            TaskKind::ArcChallenge,
            TaskKind::ArcEasy,
            TaskKind::Piqa,
            TaskKind::Lambada,
            TaskKind::TriviaQa,
            TaskKind::Qasper,
        ]
    }

    /// The three Table 5 qualitative tasks.
    pub fn table5() -> [TaskKind; 3] {
        [TaskKind::CnnDailyMail, TaskKind::TruthfulQa, TaskKind::Bbq]
    }

    /// Short label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::WikiText2 => "WK2",
            TaskKind::Pg19 => "PG19",
            TaskKind::ArcChallenge => "A-c",
            TaskKind::ArcEasy => "A-e",
            TaskKind::Piqa => "PQ",
            TaskKind::Lambada => "LA",
            TaskKind::TriviaQa => "TQ",
            TaskKind::Qasper => "QP",
            TaskKind::CnnDailyMail => "CNN",
            TaskKind::TruthfulQa => "Truth",
            TaskKind::Bbq => "BBQ",
        }
    }

    /// How the task is scored.
    pub fn metric(self) -> TaskMetric {
        match self {
            TaskKind::WikiText2 | TaskKind::Pg19 => TaskMetric::Perplexity,
            TaskKind::CnnDailyMail => TaskMetric::Quality,
            _ => TaskMetric::Accuracy,
        }
    }

    /// The LLaMA2-7B FP16 reference score for this task from Table 2 / Table 5
    /// of the paper, used to express fidelity-proxy degradations on the same
    /// scale the paper reports.
    pub fn llama2_7b_fp16_reference(self) -> f64 {
        match self {
            TaskKind::WikiText2 => 5.47,
            TaskKind::Pg19 => 10.51,
            TaskKind::ArcChallenge => 46.33,
            TaskKind::ArcEasy => 74.62,
            TaskKind::Piqa => 79.11,
            TaskKind::Lambada => 73.90,
            TaskKind::TriviaQa => 48.95,
            TaskKind::Qasper => 12.69,
            TaskKind::CnnDailyMail => 40.58,
            TaskKind::TruthfulQa => 34.28,
            TaskKind::Bbq => 95.21,
        }
    }

    /// Random-guess score for accuracy-style tasks (used by the accuracy
    /// proxy's interpolation); zero for perplexity/quality tasks.
    pub fn chance_score(self) -> f64 {
        match self {
            TaskKind::ArcChallenge | TaskKind::ArcEasy => 25.0,
            TaskKind::Piqa => 50.0,
            TaskKind::Lambada => 0.5,
            TaskKind::TriviaQa | TaskKind::Qasper => 5.0,
            TaskKind::TruthfulQa => 22.0,
            TaskKind::Bbq => 50.0,
            _ => 0.0,
        }
    }

    /// Surrogate (prompt length, decode length) used by the functional-model
    /// accuracy experiments.  These are scaled-down relative to the real
    /// datasets in the same proportion as the surrogate model itself, keeping
    /// the ratio of sequence length to cache budget representative.
    pub fn surrogate_lengths(self) -> (usize, usize) {
        match self {
            TaskKind::WikiText2 => (96, 96),
            TaskKind::Pg19 => (64, 256),
            TaskKind::ArcChallenge | TaskKind::ArcEasy => (48, 32),
            TaskKind::Piqa => (40, 32),
            TaskKind::Lambada => (48, 32),
            TaskKind::TriviaQa => (128, 64),
            TaskKind::Qasper => (160, 64),
            TaskKind::CnnDailyMail => (128, 96),
            TaskKind::TruthfulQa => (48, 32),
            TaskKind::Bbq => (48, 32),
        }
    }

    /// Whether lower scores are better.
    pub fn lower_is_better(self) -> bool {
        self.metric() == TaskMetric::Perplexity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_tasks() {
        assert_eq!(TaskKind::table2().len(), 8);
        assert_eq!(TaskKind::table5().len(), 3);
    }

    #[test]
    fn labels_and_metrics() {
        assert_eq!(TaskKind::WikiText2.label(), "WK2");
        assert_eq!(TaskKind::WikiText2.metric(), TaskMetric::Perplexity);
        assert!(TaskKind::WikiText2.lower_is_better());
        assert_eq!(TaskKind::Piqa.metric(), TaskMetric::Accuracy);
        assert!(!TaskKind::Piqa.lower_is_better());
        assert_eq!(TaskKind::CnnDailyMail.metric(), TaskMetric::Quality);
    }

    #[test]
    fn reference_scores_match_paper() {
        assert!((TaskKind::WikiText2.llama2_7b_fp16_reference() - 5.47).abs() < 1e-9);
        assert!((TaskKind::Piqa.llama2_7b_fp16_reference() - 79.11).abs() < 1e-9);
        assert!((TaskKind::Bbq.llama2_7b_fp16_reference() - 95.21).abs() < 1e-9);
    }

    #[test]
    fn surrogate_lengths_are_positive_and_ordered() {
        for task in TaskKind::table2().into_iter().chain(TaskKind::table5()) {
            let (prompt, decode) = task.surrogate_lengths();
            assert!(prompt > 0 && decode > 0, "{task:?}");
        }
        // The long-context tasks have longer surrogate prompts than zero-shot.
        assert!(TaskKind::Qasper.surrogate_lengths().0 > TaskKind::Piqa.surrogate_lengths().0);
    }

    #[test]
    fn chance_below_reference_for_accuracy_tasks() {
        for task in TaskKind::table2() {
            if task.metric() == TaskMetric::Accuracy {
                assert!(task.chance_score() < task.llama2_7b_fp16_reference());
            }
        }
    }
}
