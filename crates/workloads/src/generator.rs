//! Deterministic synthetic token-stream generation.
//!
//! The generator produces prompts whose statistics mirror what the KV-cache
//! policies are sensitive to:
//!
//! * a Zipf-distributed body (a few token types dominate, so accumulated
//!   attention concentrates on a few positions — the heavy hitters);
//! * periodic re-occurrences of a small set of *anchor* tokens planted early
//!   in the prompt (long-range retrieval structure, which punishes policies
//!   that only keep recent tokens);
//! * task-dependent lengths from [`TaskKind::surrogate_lengths`].

use crate::task::TaskKind;
use kelle_tensor::rng::{self, DetRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A generated prompt plus metadata about its planted structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedPrompt {
    /// Which task the prompt belongs to.
    pub task: TaskKind,
    /// The prompt tokens (vocabulary ids).
    pub tokens: Vec<usize>,
    /// Number of decode steps the experiment should run after the prompt.
    pub decode_len: usize,
    /// The anchor token ids planted in the prompt (long-range dependencies).
    pub anchors: Vec<usize>,
}

impl GeneratedPrompt {
    /// Length of the prompt in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the prompt is empty (never true for generated prompts).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Deterministic prompt generator over a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct TokenStreamGenerator {
    vocab: usize,
    seed: u64,
    zipf_exponent: f32,
    anchor_count: usize,
    anchor_period: usize,
}

impl TokenStreamGenerator {
    /// Creates a generator over a vocabulary of `vocab` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 16`.
    pub fn new(vocab: usize, seed: u64) -> Self {
        assert!(vocab >= 16, "vocabulary must have at least 16 tokens");
        TokenStreamGenerator {
            vocab,
            seed,
            zipf_exponent: 1.1,
            anchor_count: 4,
            anchor_period: 17,
        }
    }

    /// Overrides the Zipf exponent controlling how skewed the token
    /// distribution is (builder style).
    pub fn with_zipf_exponent(mut self, exponent: f32) -> Self {
        self.zipf_exponent = exponent;
        self
    }

    /// Generates the `index`-th prompt for a task.
    pub fn prompt(&self, task: TaskKind, index: usize) -> GeneratedPrompt {
        let (prompt_len, decode_len) = task.surrogate_lengths();
        let mut rng: DetRng = rng::substream(self.seed, &format!("{}-{}", task.label(), index));

        // Anchor tokens: rare ids planted early and re-mentioned periodically.
        let anchors: Vec<usize> = (0..self.anchor_count)
            .map(|_| rng.gen_range(self.vocab / 2..self.vocab))
            .collect();

        let mut tokens = Vec::with_capacity(prompt_len);
        for position in 0..prompt_len {
            let token = if position < self.anchor_count {
                anchors[position]
            } else if position % self.anchor_period == 0 {
                anchors[rng.gen_range(0..anchors.len())]
            } else {
                rng::zipf_index(&mut rng, self.vocab / 2, self.zipf_exponent)
            };
            tokens.push(token);
        }

        GeneratedPrompt {
            task,
            tokens,
            decode_len,
            anchors,
        }
    }

    /// Generates `count` prompts for a task.
    pub fn prompts(&self, task: TaskKind, count: usize) -> Vec<GeneratedPrompt> {
        (0..count).map(|i| self.prompt(task, i)).collect()
    }

    /// The vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompts_are_deterministic() {
        let generator = TokenStreamGenerator::new(512, 7);
        let a = generator.prompt(TaskKind::WikiText2, 0);
        let b = generator.prompt(TaskKind::WikiText2, 0);
        assert_eq!(a, b);
        let c = generator.prompt(TaskKind::WikiText2, 1);
        assert_ne!(a.tokens, c.tokens);
    }

    #[test]
    fn prompt_lengths_match_task() {
        let generator = TokenStreamGenerator::new(512, 7);
        for task in TaskKind::table2() {
            let p = generator.prompt(task, 0);
            let (prompt_len, decode_len) = task.surrogate_lengths();
            assert_eq!(p.len(), prompt_len);
            assert_eq!(p.decode_len, decode_len);
            assert!(!p.is_empty());
            assert!(p.tokens.iter().all(|&t| t < 512));
        }
    }

    #[test]
    fn anchors_are_planted_and_repeated() {
        let generator = TokenStreamGenerator::new(512, 11);
        let p = generator.prompt(TaskKind::Qasper, 3);
        for (i, anchor) in p.anchors.iter().enumerate() {
            assert_eq!(p.tokens[i], *anchor);
        }
        // Anchors reappear later in the prompt.
        let later_mentions = p.tokens[p.anchors.len()..]
            .iter()
            .filter(|t| p.anchors.contains(t))
            .count();
        assert!(later_mentions > 0);
    }

    #[test]
    fn token_distribution_is_skewed() {
        let generator = TokenStreamGenerator::new(512, 13);
        let mut counts = vec![0usize; 512];
        for i in 0..20 {
            for t in generator.prompt(TaskKind::Pg19, i).tokens {
                counts[t] += 1;
            }
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sorted.iter().sum();
        let top16: usize = sorted.iter().take(16).sum();
        assert!(
            top16 as f64 > 0.4 * total as f64,
            "top tokens should dominate: {top16}/{total}"
        );
    }

    #[test]
    fn prompts_helper_generates_count() {
        let generator = TokenStreamGenerator::new(128, 3);
        assert_eq!(generator.prompts(TaskKind::Piqa, 5).len(), 5);
        assert_eq!(generator.vocab(), 128);
    }

    #[test]
    #[should_panic(expected = "at least 16 tokens")]
    fn tiny_vocab_panics() {
        TokenStreamGenerator::new(8, 1);
    }
}
