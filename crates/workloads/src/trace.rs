//! Fleet-scale serving traces.
//!
//! The scenarios in [`crate::scenario`] pin small fixed fleets; capacity
//! planning needs *traces*: thousands of sessions arriving over time under a
//! stochastic arrival process, with heterogeneous prompt/response lengths,
//! multi-turn conversations separated by think time, and nested prefix
//! hierarchies (system prompt → per-tool preamble → per-user history).
//! [`TraceEngine`] generates such traces deterministically from a seed —
//! pure data, independent of the serving stack.  The serving side converts
//! each [`TraceRequest`] into a `ServeRequest` with an arrival tick and
//! publishes each [`HierarchyPublication`] as a nested prefix hierarchy
//! before replay.
//!
//! Time is measured in *scheduler ticks* (one decode round), the same
//! deterministic clock the serving stack's SLO report uses.

use kelle_tensor::rng::{self, DetRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uniform draw from an inclusive `(min, max)` range (the vendored `rand`
/// only samples half-open ranges).
fn draw(rng: &mut DetRng, (lo, hi): (usize, usize)) -> usize {
    rng.gen_range(lo..hi + 1)
}

fn draw_ticks(rng: &mut DetRng, (lo, hi): (u64, u64)) -> u64 {
    rng.gen_range(lo..hi + 1)
}

/// The request arrival process of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals: exponential inter-arrival times with
    /// the given mean (in scheduler ticks).
    Poisson {
        /// Mean inter-arrival gap in ticks (> 0).
        mean_interarrival_ticks: f64,
    },
    /// Diurnal arrivals: a Poisson process whose instantaneous rate swings
    /// sinusoidally around the base rate — the day/night load cycle of an
    /// edge deployment.
    Diurnal {
        /// Mean inter-arrival gap in ticks at the *base* rate (> 0).
        mean_interarrival_ticks: f64,
        /// Period of one load cycle in ticks (> 0).
        period_ticks: f64,
        /// Relative swing of the rate, in `[0, 1)`: the instantaneous rate
        /// is `base * (1 + amplitude * sin(2π t / period))`.
        amplitude: f64,
    },
}

impl ArrivalProcess {
    fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson {
                mean_interarrival_ticks,
            } => {
                assert!(
                    mean_interarrival_ticks > 0.0,
                    "mean inter-arrival gap must be positive"
                );
            }
            ArrivalProcess::Diurnal {
                mean_interarrival_ticks,
                period_ticks,
                amplitude,
            } => {
                assert!(
                    mean_interarrival_ticks > 0.0,
                    "mean inter-arrival gap must be positive"
                );
                assert!(period_ticks > 0.0, "diurnal period must be positive");
                assert!(
                    (0.0..1.0).contains(&amplitude),
                    "diurnal amplitude must be in [0, 1)"
                );
            }
        }
    }

    /// Draws the gap to the next arrival given the current time, via
    /// inverse-CDF sampling of an exponential at the instantaneous rate.
    fn next_gap(&self, now_ticks: f64, rng: &mut DetRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let exponential = -u.ln();
        match *self {
            ArrivalProcess::Poisson {
                mean_interarrival_ticks,
            } => exponential * mean_interarrival_ticks,
            ArrivalProcess::Diurnal {
                mean_interarrival_ticks,
                period_ticks,
                amplitude,
            } => {
                let phase = (now_ticks / period_ticks) * std::f64::consts::TAU;
                let rate = (1.0 + amplitude * phase.sin()) / mean_interarrival_ticks;
                exponential / rate
            }
        }
    }
}

/// One class of session in the heterogeneous mixture.
///
/// Lengths are drawn uniformly from the inclusive ranges, per session, from
/// a substream decorrelated by session index — two traces with the same
/// config are identical token-for-token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionArchetype {
    /// Display name (shows up in benchmark tables).
    pub name: String,
    /// Sampling weight within the mixture (> 0).
    pub weight: u32,
    /// Fresh prompt tokens per turn (beyond the shared hierarchy prefix),
    /// as an inclusive `(min, max)` range; min must be > 0.
    pub prompt_tokens: (usize, usize),
    /// Decode tokens requested per turn, inclusive range; min must be > 0.
    pub decode_tokens: (usize, usize),
    /// Conversation turns per session, inclusive range; min must be > 0.
    pub turns: (usize, usize),
    /// Think-time ticks between a turn finishing and the next turn being
    /// issued, inclusive range.
    pub think_ticks: (u64, u64),
}

impl SessionArchetype {
    /// A single-turn archetype with fixed ranges.
    pub fn new(name: &str, weight: u32, prompt_tokens: (usize, usize)) -> Self {
        SessionArchetype {
            name: name.to_string(),
            weight,
            prompt_tokens,
            decode_tokens: (4, 8),
            turns: (1, 1),
            think_ticks: (0, 0),
        }
    }

    /// Overrides the decode-token range (builder style).
    pub fn with_decode_tokens(mut self, range: (usize, usize)) -> Self {
        self.decode_tokens = range;
        self
    }

    /// Makes the archetype multi-turn (builder style).
    pub fn with_turns(mut self, turns: (usize, usize), think_ticks: (u64, u64)) -> Self {
        self.turns = turns;
        self.think_ticks = think_ticks;
        self
    }

    fn validate(&self) {
        assert!(self.weight > 0, "archetype weight must be non-zero");
        for (label, (lo, hi)) in [
            ("prompt", self.prompt_tokens),
            ("decode", self.decode_tokens),
            ("turns", self.turns),
        ] {
            assert!(lo > 0, "{label} range minimum must be non-zero");
            assert!(lo <= hi, "{label} range must be ordered min <= max");
        }
        assert!(
            self.think_ticks.0 <= self.think_ticks.1,
            "think range must be ordered min <= max"
        );
    }
}

/// The nested prefix hierarchy every session's prompt is prefixed with:
/// one shared system prompt, then one of `tools` per-tool preambles, then
/// one of `users` per-user histories — three radix levels deep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixHierarchy {
    /// Tokens in the fleet-wide system prompt (> 0).
    pub system_tokens: usize,
    /// Number of distinct tool preambles (> 0).
    pub tools: usize,
    /// Tokens per tool preamble (> 0).
    pub tool_tokens: usize,
    /// Number of distinct per-user histories per tool (> 0).
    pub users: usize,
    /// Tokens per user history (> 0).
    pub user_tokens: usize,
}

impl PrefixHierarchy {
    /// A three-level hierarchy with the given shape.
    pub fn new(system_tokens: usize, tools: usize, tool_tokens: usize) -> Self {
        PrefixHierarchy {
            system_tokens,
            tools,
            tool_tokens,
            users: 4,
            user_tokens: 8,
        }
    }

    /// Overrides the per-user history level (builder style).
    pub fn with_users(mut self, users: usize, user_tokens: usize) -> Self {
        self.users = users;
        self.user_tokens = user_tokens;
        self
    }

    fn validate(&self) {
        assert!(self.system_tokens > 0, "system prompt must be non-empty");
        assert!(self.tools > 0, "hierarchy needs at least one tool");
        assert!(self.tool_tokens > 0, "tool preambles must be non-empty");
        assert!(self.users > 0, "hierarchy needs at least one user");
        assert!(self.user_tokens > 0, "user histories must be non-empty");
    }

    /// Total depth of the full three-level prefix in tokens.
    pub fn depth_tokens(&self) -> usize {
        self.system_tokens + self.tool_tokens + self.user_tokens
    }

    /// Number of distinct `(tool, user)` leaves.
    pub fn leaves(&self) -> usize {
        self.tools * self.users
    }
}

/// Configuration of a [`TraceEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of sessions in the trace (> 0).
    pub sessions: usize,
    /// The arrival process session starts are drawn from.
    pub arrival: ArrivalProcess,
    /// The heterogeneous session mixture (non-empty).
    pub archetypes: Vec<SessionArchetype>,
    /// The nested prefix hierarchy prompts are prefixed with.
    pub hierarchy: PrefixHierarchy,
    /// Vocabulary size tokens are drawn from (>= 16).
    pub vocab: usize,
    /// Trace seed: same seed, same trace, token-for-token.
    pub seed: u64,
}

impl TraceConfig {
    /// A trace of `sessions` Poisson arrivals with a default mixed fleet:
    /// 60 % short chat turns, 30 % medium multi-turn conversations, 10 %
    /// long-form requests.
    pub fn poisson(sessions: usize, mean_interarrival_ticks: f64) -> Self {
        let config = TraceConfig {
            sessions,
            arrival: ArrivalProcess::Poisson {
                mean_interarrival_ticks,
            },
            archetypes: vec![
                SessionArchetype::new("chat-short", 6, (4, 10)).with_decode_tokens((3, 6)),
                SessionArchetype::new("chat-multi", 3, (6, 14))
                    .with_decode_tokens((4, 8))
                    .with_turns((2, 3), (2, 10)),
                SessionArchetype::new("longform", 1, (16, 32)).with_decode_tokens((8, 12)),
            ],
            hierarchy: PrefixHierarchy::new(24, 3, 12).with_users(4, 8),
            vocab: 512,
            seed: 29,
        };
        config.validate();
        config
    }

    /// Switches the trace to diurnal arrivals (builder style).
    pub fn with_diurnal(mut self, period_ticks: f64, amplitude: f64) -> Self {
        let mean = match self.arrival {
            ArrivalProcess::Poisson {
                mean_interarrival_ticks,
            }
            | ArrivalProcess::Diurnal {
                mean_interarrival_ticks,
                ..
            } => mean_interarrival_ticks,
        };
        self.arrival = ArrivalProcess::Diurnal {
            mean_interarrival_ticks: mean,
            period_ticks,
            amplitude,
        };
        self.validate();
        self
    }

    /// Overrides the archetype mixture (builder style).
    pub fn with_archetypes(mut self, archetypes: Vec<SessionArchetype>) -> Self {
        self.archetypes = archetypes;
        self.validate();
        self
    }

    /// Overrides the prefix hierarchy (builder style).
    pub fn with_hierarchy(mut self, hierarchy: PrefixHierarchy) -> Self {
        self.hierarchy = hierarchy;
        self.validate();
        self
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(self.sessions > 0, "trace needs at least one session");
        assert!(!self.archetypes.is_empty(), "mixture must be non-empty");
        self.arrival.validate();
        for archetype in &self.archetypes {
            archetype.validate();
        }
        self.hierarchy.validate();
        assert!(self.vocab >= 16, "vocabulary must have at least 16 tokens");
    }
}

/// One request of a generated trace: turn `turn` of session `session`,
/// submitted at `arrival_tick` on the scheduler clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Session index within the trace.
    pub session: usize,
    /// Zero-based turn index within the session.
    pub turn: usize,
    /// Index into [`TraceConfig::archetypes`].
    pub archetype: usize,
    /// Scheduler tick the request arrives at.
    pub arrival_tick: u64,
    /// Full prompt: hierarchy prefix + conversation history + fresh turn
    /// tokens.
    pub prompt: Vec<usize>,
    /// Decode tokens the request asks for.
    pub decode_len: usize,
}

/// One nested prefix hierarchy to publish before replay: the three-level
/// token vector with its level boundaries, ready for
/// `KelleEngine::publish_prefix_hierarchy`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyPublication {
    /// Tool index of the leaf.
    pub tool: usize,
    /// User index of the leaf.
    pub user: usize,
    /// system ++ tool preamble ++ user history.
    pub tokens: Vec<usize>,
    /// Strictly increasing level boundaries (system, +tool, +user).
    pub boundaries: Vec<usize>,
}

/// A generated trace: requests sorted by arrival tick plus the prefix
/// hierarchies they assume published.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// All requests, sorted by `(arrival_tick, session, turn)`.
    pub requests: Vec<TraceRequest>,
    /// One publication per `(tool, user)` leaf, in `(tool, user)` order.
    /// Sibling leaves share their first one/two boundaries; the publishing
    /// engine deduplicates those.
    pub publications: Vec<HierarchyPublication>,
    /// The last arrival tick in the trace.
    pub horizon_ticks: u64,
}

impl Trace {
    /// Total decode tokens the trace requests.
    pub fn total_decode_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.decode_len).sum()
    }

    /// Total prompt tokens across all requests.
    pub fn total_prompt_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.prompt.len()).sum()
    }
}

/// Deterministic trace generator.
///
/// ```rust
/// use kelle_workloads::{TraceConfig, TraceEngine};
///
/// let trace = TraceEngine::new(TraceConfig::poisson(100, 2.0)).generate();
/// assert!(trace.requests.len() >= 100, "multi-turn sessions add requests");
/// let again = TraceEngine::new(TraceConfig::poisson(100, 2.0)).generate();
/// assert_eq!(trace, again, "same seed, same trace");
/// ```
#[derive(Debug, Clone)]
pub struct TraceEngine {
    config: TraceConfig,
}

impl TraceEngine {
    /// A generator for the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        config.validate();
        TraceEngine { config }
    }

    /// The trace configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    fn stream(&self, label: &str, len: usize) -> Vec<usize> {
        let mut rng: DetRng = rng::substream(self.config.seed, label);
        let vocab = self.config.vocab;
        (0..len)
            .map(|_| {
                // Same heavy-hitter structure as the scenario fleets: a Zipf
                // body over the lower half of the vocabulary with a uniform
                // upper-half tail.
                if rng.gen::<f32>() < 0.1 {
                    rng.gen_range(vocab / 2..vocab)
                } else {
                    rng::zipf_index(&mut rng, vocab / 2, 1.1)
                }
            })
            .collect()
    }

    /// The fleet-wide system prompt (hierarchy level 1).
    pub fn system_prompt(&self) -> Vec<usize> {
        self.stream("hier-system", self.config.hierarchy.system_tokens)
    }

    /// Tool preamble `tool` (hierarchy level 2).
    pub fn tool_preamble(&self, tool: usize) -> Vec<usize> {
        self.stream(
            &format!("hier-tool-{tool}"),
            self.config.hierarchy.tool_tokens,
        )
    }

    /// User history `user` under `tool` (hierarchy level 3).
    pub fn user_history(&self, tool: usize, user: usize) -> Vec<usize> {
        self.stream(
            &format!("hier-user-{tool}-{user}"),
            self.config.hierarchy.user_tokens,
        )
    }

    /// All `(tool, user)` hierarchy publications, each carrying its three
    /// strictly increasing level boundaries.
    pub fn publications(&self) -> Vec<HierarchyPublication> {
        let hierarchy = self.config.hierarchy;
        let system = self.system_prompt();
        let mut publications = Vec::with_capacity(hierarchy.leaves());
        for tool in 0..hierarchy.tools {
            let preamble = self.tool_preamble(tool);
            for user in 0..hierarchy.users {
                let mut tokens = system.clone();
                tokens.extend_from_slice(&preamble);
                let after_tool = tokens.len();
                tokens.extend(self.user_history(tool, user));
                publications.push(HierarchyPublication {
                    tool,
                    user,
                    boundaries: vec![system.len(), after_tool, tokens.len()],
                    tokens,
                });
            }
        }
        publications
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let config = &self.config;
        let publications = self.publications();
        let total_weight: u64 = config.archetypes.iter().map(|a| a.weight as u64).sum();

        let mut arrivals: DetRng = rng::substream(config.seed, "arrivals");
        let mut now = 0.0_f64;
        let mut requests = Vec::new();
        for session in 0..config.sessions {
            now += config.arrival.next_gap(now, &mut arrivals);
            let mut rng: DetRng = rng::substream(config.seed, &format!("session-{session}"));

            // Weighted archetype draw.
            let mut pick = rng.gen_range(0..total_weight);
            let archetype_index = config
                .archetypes
                .iter()
                .position(|a| {
                    if pick < a.weight as u64 {
                        true
                    } else {
                        pick -= a.weight as u64;
                        false
                    }
                })
                .expect("weights sum to total_weight");
            let archetype = &config.archetypes[archetype_index];

            // The session's hierarchy leaf.
            let leaf = rng.gen_range(0..config.hierarchy.leaves());
            let prefix = &publications[leaf].tokens;

            let turns = draw(&mut rng, archetype.turns);
            let mut history: Vec<usize> = prefix.clone();
            let mut arrival = now.ceil() as u64;
            for turn in 0..turns {
                let fresh = draw(&mut rng, archetype.prompt_tokens);
                let decode_len = draw(&mut rng, archetype.decode_tokens);
                let mut turn_rng: DetRng =
                    rng::substream(config.seed, &format!("turn-{session}-{turn}"));
                history.extend((0..fresh).map(|_| {
                    if turn_rng.gen::<f32>() < 0.1 {
                        turn_rng.gen_range(config.vocab / 2..config.vocab)
                    } else {
                        rng::zipf_index(&mut turn_rng, config.vocab / 2, 1.1)
                    }
                }));
                requests.push(TraceRequest {
                    session,
                    turn,
                    archetype: archetype_index,
                    arrival_tick: arrival,
                    prompt: history.clone(),
                    decode_len,
                });
                // Open-loop follow-up: the next turn arrives after an
                // estimated service time (one admission tick + one tick per
                // decode token) plus think time, fixed at generation so the
                // trace stays pure data.
                let think = draw_ticks(&mut rng, archetype.think_ticks);
                arrival += 1 + decode_len as u64 + think;
            }
        }
        requests.sort_by_key(|r| (r.arrival_tick, r.session, r.turn));
        let horizon_ticks = requests.iter().map(|r| r.arrival_tick).max().unwrap_or(0);
        Trace {
            requests,
            publications,
            horizon_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let a = TraceEngine::new(TraceConfig::poisson(200, 1.5)).generate();
        let b = TraceEngine::new(TraceConfig::poisson(200, 1.5)).generate();
        assert_eq!(a, b);
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_tick <= w[1].arrival_tick));
        let c = TraceEngine::new(TraceConfig::poisson(200, 1.5).with_seed(99)).generate();
        assert_ne!(a.requests, c.requests, "seeds decorrelate traces");
    }

    #[test]
    fn every_prompt_starts_with_its_hierarchy_leaf() {
        let engine = TraceEngine::new(TraceConfig::poisson(64, 2.0));
        let trace = engine.generate();
        let hierarchy = engine.config().hierarchy;
        assert_eq!(trace.publications.len(), hierarchy.leaves());
        for publication in &trace.publications {
            assert_eq!(
                publication.boundaries,
                vec![
                    hierarchy.system_tokens,
                    hierarchy.system_tokens + hierarchy.tool_tokens,
                    hierarchy.depth_tokens()
                ]
            );
            assert_eq!(publication.tokens.len(), hierarchy.depth_tokens());
        }
        for request in &trace.requests {
            assert!(request.prompt.len() > hierarchy.depth_tokens());
            let leaf = trace
                .publications
                .iter()
                .find(|p| request.prompt.starts_with(&p.tokens));
            assert!(leaf.is_some(), "prompt must start with a hierarchy leaf");
        }
        // Sibling leaves share the system boundary: one pass per leaf, but
        // the first two levels deduplicate at publication time.
        let first = &trace.publications[0];
        let sibling = &trace.publications[1];
        assert_eq!(
            first.tokens[..hierarchy.system_tokens],
            sibling.tokens[..hierarchy.system_tokens]
        );
    }

    #[test]
    fn multi_turn_requests_grow_their_history_and_respect_think_time() {
        let config = TraceConfig::poisson(40, 1.0).with_archetypes(vec![SessionArchetype::new(
            "conversation",
            1,
            (3, 5),
        )
        .with_decode_tokens((2, 4))
        .with_turns((3, 3), (5, 9))]);
        let trace = TraceEngine::new(config).generate();
        let mut by_session: std::collections::BTreeMap<usize, Vec<&TraceRequest>> =
            Default::default();
        for request in &trace.requests {
            by_session.entry(request.session).or_default().push(request);
        }
        for turns in by_session.values() {
            assert_eq!(turns.len(), 3);
            for pair in turns.windows(2) {
                let (earlier, later) = (pair[0], pair[1]);
                assert_eq!(later.turn, earlier.turn + 1);
                assert!(
                    later.prompt.starts_with(&earlier.prompt),
                    "each turn extends the conversation history"
                );
                // Service estimate (1 + decode) plus at least min think time.
                assert!(
                    later.arrival_tick >= earlier.arrival_tick + 1 + earlier.decode_len as u64 + 5
                );
            }
        }
    }

    #[test]
    fn diurnal_rate_modulates_arrival_density() {
        let period = 400.0;
        let config = TraceConfig::poisson(2000, 1.0).with_diurnal(period, 0.9);
        let trace = TraceEngine::new(config).generate();
        // First arrivals per session only (turn 0), split by phase half.
        let mut peak = 0usize;
        let mut trough = 0usize;
        for request in trace.requests.iter().filter(|r| r.turn == 0) {
            let phase = (request.arrival_tick as f64 % period) / period;
            if phase < 0.5 {
                peak += 1; // sin > 0: boosted rate
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > trough * 2,
            "high-rate half-cycle must be denser: peak={peak} trough={trough}"
        );
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn unit_amplitude_panics() {
        TraceEngine::new(TraceConfig::poisson(4, 1.0).with_diurnal(100.0, 1.0));
    }
}
