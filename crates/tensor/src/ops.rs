//! Non-linear operations used by transformer decoders.
//!
//! The Kelle accelerator's SFU (§5) implements softmax (with the online-max
//! trick from Softermax), activation functions and normalization via lookup
//! tables.  The functional model here uses exact math; the hardware model in
//! `kelle-arch` accounts for the SFU's latency/energy separately.

/// Numerically stable softmax, computed **in place** over a caller-owned
/// buffer.
///
/// This is the single softmax implementation of the workspace; [`softmax`]
/// and [`softmax_online`] are thin allocating wrappers over it.  The hot
/// decode path calls it directly on a reusable scratch buffer so a decode
/// step performs no softmax-related heap allocation.
///
/// The formulation fixes the maximum first (one fold over the buffer) and
/// then fuses exponentiation with the running-sum accumulation in a single
/// in-place pass (the Softermax-style online sum, applied once the maximum is
/// known), followed by the normalizing division.  The operation order —
/// `max` fold, then `exp(x - max)` and sum accumulation in element order,
/// then `e / sum` — is the *reference ordering*: results are bitwise
/// reproducible across calls and identical to the historical two-pass
/// implementation.
///
/// Degenerate input (all `-inf` or NaN, so the exponent sum is zero or
/// non-finite) falls back to the uniform distribution.  Empty input is a
/// no-op.
pub fn softmax_into(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in values.iter_mut() {
        let e = (*v - max).exp();
        *v = e;
        sum += e;
    }
    if sum == 0.0 || !sum.is_finite() {
        // Degenerate input (all -inf or NaN): fall back to uniform.
        values.fill(1.0 / values.len() as f32);
        return;
    }
    for v in values.iter_mut() {
        *v /= sum;
    }
}

/// Numerically stable softmax over a slice.
///
/// Returns an empty vector for empty input.  Thin allocating wrapper over
/// [`softmax_into`].
///
/// # Example
///
/// ```rust
/// let p = kelle_tensor::ops::softmax(&[0.0, 0.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_into(&mut out);
    out
}

/// Online (streaming, Softermax-style) softmax.
///
/// Historically a separate implementation that maintained a running maximum
/// with rescaled sums; it is now a thin wrapper over the consolidated
/// [`softmax_into`], whose fused exp-and-accumulate pass is the same
/// hardware-friendly formulation with the maximum hoisted out.  Kept so
/// existing callers and the SFU-equivalence tests retain their entry point;
/// results are bitwise identical to [`softmax`].
pub fn softmax_online(logits: &[f32]) -> Vec<f32> {
    softmax(logits)
}

/// Gaussian Error Linear Unit (tanh approximation), the FFN activation used by
/// GPT-style models.
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Sigmoid Linear Unit (a.k.a. swish), the gated-MLP activation used by the
/// Llama / Mistral family.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Root-mean-square normalization (RMSNorm) with a learned gain vector.
///
/// # Panics
///
/// Panics if `x` and `gain` have different lengths.
pub fn rms_norm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    let mut out = Vec::new();
    rms_norm_into(x, gain, eps, &mut out);
    out
}

/// RMSNorm into a caller-owned buffer (cleared and refilled), so the decode
/// hot path can reuse its scratch allocation across steps.  Identical math
/// and operation order to [`rms_norm`].
///
/// # Panics
///
/// Panics if `x` and `gain` have different lengths.
pub fn rms_norm_into(x: &[f32], gain: &[f32], eps: f32, out: &mut Vec<f32>) {
    assert_eq!(
        x.len(),
        gain.len(),
        "rms_norm operands must be equal length"
    );
    out.clear();
    if x.is_empty() {
        return;
    }
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let denom = (ms + eps).sqrt();
    out.extend(x.iter().zip(gain.iter()).map(|(v, g)| v / denom * g));
}

/// Standard layer normalization with learned gain and bias.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn layer_norm(x: &[f32], gain: &[f32], bias: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(
        x.len(),
        gain.len(),
        "layer_norm operands must be equal length"
    );
    assert_eq!(
        x.len(),
        bias.len(),
        "layer_norm operands must be equal length"
    );
    if x.is_empty() {
        return Vec::new();
    }
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let denom = (var + eps).sqrt();
    x.iter()
        .zip(gain.iter().zip(bias.iter()))
        .map(|(v, (g, b))| (v - mean) / denom * g + b)
        .collect()
}

/// Applies rotary position embedding (RoPE) to a query/key vector in place.
///
/// Consecutive element pairs `(x[2i], x[2i+1])` are rotated by an angle
/// `position * theta^(-2i/d)`.  This is the positional-embedding flavour used
/// by the Llama family; it matters for the surrogate model because RoPE makes
/// attention scores position-sensitive, giving the recency structure that
/// StreamingLLM's "recent window" heuristic relies on.
pub fn apply_rope(x: &mut [f32], position: usize, theta: f32) {
    let d = x.len();
    let half = d / 2;
    for i in 0..half {
        let freq = 1.0 / theta.powf(2.0 * i as f32 / d as f32);
        let angle = position as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos - b * sin;
        x[2 * i + 1] = a * sin + b * cos;
    }
}

/// Cross-entropy (natural log) between a one-hot target index and a
/// probability distribution, used by the perplexity-proxy metric.
///
/// Returns `+inf` if the probability of the target is zero.
///
/// # Panics
///
/// Panics if `target >= probs.len()`.
pub fn cross_entropy(probs: &[f32], target: usize) -> f32 {
    assert!(target < probs.len(), "target index out of range");
    let p = probs[target].max(f32::MIN_POSITIVE);
    -p.ln()
}

/// Kullback-Leibler divergence `KL(p || q)` between two distributions.
///
/// Entries where `p` is zero contribute nothing; entries where `q` is zero but
/// `p` is positive contribute a large finite penalty (clamped) so the metric
/// stays usable under heavy corruption.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(
        p.len(),
        q.len(),
        "kl_divergence operands must be equal length"
    );
    let mut total = 0.0f32;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi <= 0.0 {
            continue;
        }
        let qi = qi.max(1e-12);
        total += pi * (pi / qi).ln();
    }
    total.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0, 4.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_empty_and_degenerate() {
        assert!(softmax(&[]).is_empty());
        let p = softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    /// The genuinely streaming Softermax formulation (running maximum with
    /// rescaled sums, no second max pass) that `softmax_online` used to be —
    /// kept as an independent test reference so consolidating the public
    /// entry points onto `softmax_into` did not silence the
    /// hardware-equivalence check.
    fn softmax_streaming_reference(logits: &[f32]) -> Vec<f32> {
        if logits.is_empty() {
            return Vec::new();
        }
        let mut running_max = f32::NEG_INFINITY;
        let mut running_sum = 0.0f32;
        for &x in logits {
            if x > running_max {
                running_sum *= (running_max - x).exp();
                running_max = x;
            }
            running_sum += (x - running_max).exp();
        }
        if running_sum == 0.0 || !running_sum.is_finite() {
            return vec![1.0 / logits.len() as f32; logits.len()];
        }
        logits
            .iter()
            .map(|x| (x - running_max).exp() / running_sum)
            .collect()
    }

    #[test]
    fn online_softmax_matches_streaming_formulation() {
        // `softmax_online` is now a wrapper over the consolidated kernel;
        // the SFU-equivalence property is that the kernel agrees with the
        // independent running-rescale streaming realization.
        let logits = vec![0.3, -1.2, 4.5, 2.2, -0.7, 3.3, 9.9, -5.0, 9.8];
        let a = softmax_online(&logits);
        let b = softmax_streaming_reference(&logits);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
        assert_eq!(
            softmax_online(&logits)
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            softmax(&logits)
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            "wrapper must stay bitwise identical to softmax"
        );
    }

    #[test]
    fn softmax_into_matches_allocating_wrapper_bitwise() {
        let logits = vec![0.3, -1.2, 4.5, 2.2, -0.7, 3.3, 88.0, -40.0];
        let wrapper = softmax(&logits);
        let mut in_place = logits.clone();
        softmax_into(&mut in_place);
        // The wrapper is a thin shim over the in-place kernel; results must be
        // bit-for-bit identical, not merely close.
        assert_eq!(
            wrapper.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            in_place.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn softmax_into_degenerate_and_empty() {
        let mut empty: [f32; 0] = [];
        softmax_into(&mut empty);
        let mut degenerate = [f32::NEG_INFINITY, f32::NEG_INFINITY];
        softmax_into(&mut degenerate);
        assert!((degenerate[0] - 0.5).abs() < 1e-6);
        assert!((degenerate[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rms_norm_into_reuses_buffer() {
        let x = vec![3.0, 4.0];
        let gain = vec![1.0, 1.0];
        let mut buf = vec![9.0; 17];
        rms_norm_into(&x, &gain, 1e-6, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf, rms_norm(&x, &gain, 1e-6));
    }

    #[test]
    fn gelu_and_silu_basic_shape() {
        assert!(gelu(0.0).abs() < 1e-6);
        assert!(gelu(3.0) > 2.9);
        assert!(gelu(-3.0).abs() < 0.02);
        assert!(silu(0.0).abs() < 1e-6);
        assert!((silu(10.0) - 10.0).abs() < 1e-2);
    }

    #[test]
    fn rms_norm_unit_scale() {
        let x = vec![3.0, 4.0];
        let gain = vec![1.0, 1.0];
        let out = rms_norm(&x, &gain, 1e-6);
        let ms = out.iter().map(|v| v * v).sum::<f32>() / 2.0;
        assert!((ms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let gain = vec![1.0; 4];
        let bias = vec![0.0; 4];
        let out = layer_norm(&x, &gain, &bias, 1e-6);
        let mean = out.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn rope_preserves_norm() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let before: f32 = x.iter().map(|v| v * v).sum();
        apply_rope(&mut x, 17, 10_000.0);
        let after: f32 = x.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-3);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut x = vec![0.5, -0.25, 1.5, 2.0];
        let orig = x.clone();
        apply_rope(&mut x, 0, 10_000.0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn kl_divergence_zero_for_identical() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!(kl_divergence(&p, &p) < 1e-6);
    }

    #[test]
    fn kl_divergence_positive_for_different() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let q = softmax(&[3.0, 2.0, 1.0]);
        assert!(kl_divergence(&p, &q) > 0.1);
    }

    #[test]
    fn cross_entropy_matches_log() {
        let probs = vec![0.25, 0.75];
        assert!((cross_entropy(&probs, 1) - 0.75f32.ln().abs()).abs() < 1e-6);
    }
}
