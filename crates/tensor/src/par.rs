//! A minimal fork-join execution abstraction for intra-step parallelism.
//!
//! The decode hot path fans independent units of work — per-head attention
//! passes, row ranges of a projection — out to whatever compute is available.
//! Rather than depending on a thread-pool crate, the numeric layer only
//! depends on this small trait: callers hand a batch of closures to a
//! [`ParallelRunner`] and the runner guarantees all of them have finished
//! before [`ParallelRunner::run`] returns (fork-join semantics).
//!
//! Two properties make the abstraction safe and deterministic:
//!
//! - **Join before return.** `run` must not return while any job is still
//!   executing.  This is what lets jobs borrow stack-local data (`Job<'a>` is
//!   lifetime-parameterized, not `'static`).
//! - **Disjoint effects.** Each job owns the mutable state it touches
//!   (disjoint output slices, per-job scratch).  Runners never need to order
//!   jobs; any interleaving produces the same bits because no two jobs share
//!   a mutable location.
//!
//! [`SerialRunner`] is the trivial implementation (run jobs in order on the
//! calling thread); `kelle-core` provides a pool-backed implementation on top
//! of its work-stealing `WorkerPool`.

/// A unit of work handed to a [`ParallelRunner`].
///
/// Jobs may borrow data that outlives the `run` call (`'a`), because runners
/// guarantee all jobs complete before `run` returns.
pub type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Fork-join executor for batches of independent jobs.
///
/// Implementations must not return from [`run`](ParallelRunner::run) until
/// every job has finished (or panicked — panics must be propagated to the
/// caller, not swallowed).
pub trait ParallelRunner {
    /// Number of jobs that can make progress concurrently (including the
    /// calling thread).  Callers use this to size their work partitions; a
    /// value of 1 means "run everything inline".
    fn lanes(&self) -> usize;

    /// Executes all `jobs`, returning only after every one has completed.
    ///
    /// # Panics
    ///
    /// If any job panics, the panic is resurfaced on the calling thread
    /// after all other jobs have finished.
    fn run<'a>(&self, jobs: Vec<Job<'a>>);
}

impl std::fmt::Debug for dyn ParallelRunner + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ParallelRunner(lanes={})", self.lanes())
    }
}

/// The trivial [`ParallelRunner`]: executes jobs sequentially, in submission
/// order, on the calling thread.
///
/// Used as the fallback when no pool is available and as the reference
/// executor in equivalence tests (parallel runners must produce the same
/// bits as this one).
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialRunner;

impl ParallelRunner for SerialRunner {
    fn lanes(&self) -> usize {
        1
    }

    fn run<'a>(&self, jobs: Vec<Job<'a>>) {
        for job in jobs {
            job();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runner_executes_all_jobs_in_order() {
        let log = std::sync::Mutex::new(Vec::new());
        let runner = SerialRunner;
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let log = &log;
                Box::new(move || log.lock().unwrap().push(i)) as Job
            })
            .collect();
        runner.run(jobs);
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_borrow_stack_locals() {
        let mut out = vec![0u32; 4];
        let runner = SerialRunner;
        {
            let jobs: Vec<Job> = out
                .chunks_mut(1)
                .enumerate()
                .map(|(i, chunk)| Box::new(move || chunk[0] = i as u32 + 1) as Job)
                .collect();
            runner.run(jobs);
        }
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
