//! # kelle-tensor
//!
//! Numeric substrate for the Kelle reproduction: dense row-major matrices and
//! vectors, the non-linear operations used by transformer decoders (softmax,
//! GELU/SiLU, RMSNorm), FP16/INT8/INT4 quantization emulation with bit-exact
//! storage words (so that retention-failure bit flips can be injected at the
//! memory level), and deterministic random-number utilities used to build the
//! surrogate LLM and the synthetic workloads.
//!
//! The crate deliberately avoids SIMD/BLAS dependencies: the evaluation of the
//! paper is dominated by the analytical hardware model, and the functional
//! model only needs to be *correct* and reproducible, not fast.
//!
//! ## Example
//!
//! ```rust
//! use kelle_tensor::{Matrix, ops};
//!
//! # fn main() -> Result<(), kelle_tensor::TensorError> {
//! let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.get(1, 0), 3.0);
//! let probs = ops::softmax(&[1.0, 2.0, 3.0]);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod fp16;
mod matrix;
pub mod ops;
pub mod par;
pub mod quant;
pub mod rng;

pub use error::TensorError;
pub use fp16::F16;
pub use matrix::{dot, Matrix, Vector, DOT_LANES};
pub use par::{Job, ParallelRunner, SerialRunner};
pub use quant::{QuantFormat, QuantizedMatrix, QuantizedVector};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
