//! Quantization emulation.
//!
//! The paper evaluates several numeric configurations:
//!
//! * the default Kelle configuration: **W8A16** — weights in INT8, activations
//!   and KV vectors in FP16 (§5, §7.1);
//! * a QuaRot-style configuration with 4-bit KV vectors used as a baseline with
//!   a matched storage budget (§7.1) and the **W4A8** variant in Table 6;
//! * the COMET comparator with 4-bit activations/KV (§8.2).
//!
//! [`QuantizedVector`] and [`QuantizedMatrix`] implement symmetric per-tensor
//! linear quantization with explicit integer storage words so that storage
//! sizes and bit-level corruption can be modelled faithfully.

use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};

/// Numeric storage formats used across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum QuantFormat {
    /// IEEE-754 half precision (16 bits per element).
    Fp16,
    /// Signed 8-bit integers with a per-tensor scale.
    Int8,
    /// Signed 4-bit integers with a per-tensor scale (stored one per byte for
    /// simplicity; storage accounting uses the true 4-bit footprint).
    Int4,
}

impl QuantFormat {
    /// Storage cost in bits per element.
    pub fn bits_per_element(self) -> u32 {
        match self {
            QuantFormat::Fp16 => 16,
            QuantFormat::Int8 => 8,
            QuantFormat::Int4 => 4,
        }
    }

    /// Storage cost in bytes for `n` elements (rounded up to whole bytes).
    pub fn bytes_for(self, n: usize) -> usize {
        ((n as u64 * u64::from(self.bits_per_element())).div_ceil(8)) as usize
    }

    /// The number of quantization levels (unused for FP16).
    pub fn levels(self) -> u32 {
        match self {
            QuantFormat::Fp16 => 0,
            QuantFormat::Int8 => 256,
            QuantFormat::Int4 => 16,
        }
    }
}

/// A vector quantized to a fixed-point format with a single scale factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVector {
    format: QuantFormat,
    scale: f32,
    /// Integer codes; for FP16 this holds the raw bit patterns widened to i32.
    codes: Vec<i32>,
}

impl QuantizedVector {
    /// Quantizes a slice of `f32` values.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidQuantization`] if the input is empty.
    pub fn quantize(values: &[f32], format: QuantFormat) -> Result<Self> {
        if values.is_empty() {
            return Err(TensorError::InvalidQuantization {
                reason: "cannot quantize an empty vector".to_string(),
            });
        }
        match format {
            QuantFormat::Fp16 => {
                let codes = values
                    .iter()
                    .map(|&v| i32::from(crate::fp16::f32_to_f16_bits(v)))
                    .collect();
                Ok(Self {
                    format,
                    scale: 1.0,
                    codes,
                })
            }
            QuantFormat::Int8 | QuantFormat::Int4 => {
                let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let qmax = (format.levels() / 2 - 1) as f32;
                let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax };
                let codes = values
                    .iter()
                    .map(|&v| {
                        let q = (v / scale).round();
                        q.clamp(-qmax - 1.0, qmax) as i32
                    })
                    .collect();
                Ok(Self {
                    format,
                    scale,
                    codes,
                })
            }
        }
    }

    /// Reconstructs the approximate `f32` values.
    pub fn dequantize(&self) -> Vec<f32> {
        match self.format {
            QuantFormat::Fp16 => self
                .codes
                .iter()
                .map(|&c| crate::fp16::f16_bits_to_f32(c as u16))
                .collect(),
            _ => self.codes.iter().map(|&c| c as f32 * self.scale).collect(),
        }
    }

    /// The storage format.
    pub fn format(&self) -> QuantFormat {
        self.format
    }

    /// The per-tensor scale factor (1.0 for FP16).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the vector is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Storage footprint in bytes, counting only payload bits (scales excluded).
    pub fn storage_bytes(&self) -> usize {
        self.format.bytes_for(self.codes.len())
    }

    /// Flips a single stored bit of element `index`.
    ///
    /// For FP16 the 16 stored bits are the IEEE-754 half-precision word; for
    /// INT8/INT4 they are the two's-complement integer code.  This is the
    /// primitive used by the eDRAM retention-fault injector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` is out of range and
    /// [`TensorError::InvalidQuantization`] if `bit` exceeds the format width.
    pub fn flip_bit(&mut self, index: usize, bit: u8) -> Result<()> {
        if index >= self.codes.len() {
            return Err(TensorError::IndexOutOfBounds {
                index,
                len: self.codes.len(),
            });
        }
        let width = self.format.bits_per_element() as u8;
        if bit >= width {
            return Err(TensorError::InvalidQuantization {
                reason: format!("bit {bit} out of range for {width}-bit format"),
            });
        }
        match self.format {
            QuantFormat::Fp16 => {
                let bits = self.codes[index] as u16;
                self.codes[index] = i32::from(bits ^ (1u16 << bit));
            }
            QuantFormat::Int8 => {
                let bits = self.codes[index] as i8 as u8;
                self.codes[index] = i32::from((bits ^ (1u8 << bit)) as i8);
            }
            QuantFormat::Int4 => {
                // Codes occupy the low nibble in sign-magnitude-free two's complement.
                let bits = (self.codes[index] & 0x0F) as u8;
                let flipped = bits ^ (1u8 << bit);
                // Sign-extend the nibble.
                let val = if flipped & 0x8 != 0 {
                    (flipped as i32) - 16
                } else {
                    flipped as i32
                };
                self.codes[index] = val;
            }
        }
        Ok(())
    }

    /// Mean absolute reconstruction error against a reference slice.
    ///
    /// # Panics
    ///
    /// Panics if `reference` has a different length.
    pub fn reconstruction_error(&self, reference: &[f32]) -> f32 {
        assert_eq!(reference.len(), self.codes.len());
        let deq = self.dequantize();
        deq.iter()
            .zip(reference.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / reference.len() as f32
    }
}

/// A matrix quantized row-by-row with per-row scales (per-channel quantization),
/// matching how LLM weight matrices are quantized in practice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    format: QuantFormat,
    rows: usize,
    cols: usize,
    row_vectors: Vec<QuantizedVector>,
}

impl QuantizedMatrix {
    /// Quantizes a dense matrix row-by-row.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`QuantizedVector::quantize`].
    pub fn quantize(matrix: &Matrix, format: QuantFormat) -> Result<Self> {
        let mut row_vectors = Vec::with_capacity(matrix.rows());
        for row in matrix.iter_rows() {
            row_vectors.push(QuantizedVector::quantize(row, format)?);
        }
        Ok(Self {
            format,
            rows: matrix.rows(),
            cols: matrix.cols(),
            row_vectors,
        })
    }

    /// Reconstructs the approximate dense matrix.
    pub fn dequantize(&self) -> Matrix {
        let rows: Vec<Vec<f32>> = self.row_vectors.iter().map(|r| r.dequantize()).collect();
        Matrix::from_rows(rows).expect("quantized matrix rows are rectangular by construction")
    }

    /// The storage format.
    pub fn format(&self) -> QuantFormat {
        self.format
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total payload storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.row_vectors.iter().map(|r| r.storage_bytes()).sum()
    }

    /// Mean absolute reconstruction error against the original matrix.
    ///
    /// # Panics
    ///
    /// Panics if `reference` has a different shape.
    pub fn reconstruction_error(&self, reference: &Matrix) -> f32 {
        assert_eq!(reference.shape(), (self.rows, self.cols));
        let mut total = 0.0;
        for (qrow, row) in self.row_vectors.iter().zip(reference.iter_rows()) {
            total += qrow.reconstruction_error(row) * row.len() as f32;
        }
        total / (self.rows * self.cols) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_storage_costs() {
        assert_eq!(QuantFormat::Fp16.bytes_for(10), 20);
        assert_eq!(QuantFormat::Int8.bytes_for(10), 10);
        assert_eq!(QuantFormat::Int4.bytes_for(10), 5);
        assert_eq!(QuantFormat::Int4.bytes_for(11), 6);
    }

    #[test]
    fn int8_round_trip_small_error() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.1).collect();
        let q = QuantizedVector::quantize(&values, QuantFormat::Int8).unwrap();
        assert!(q.reconstruction_error(&values) < 0.02);
    }

    #[test]
    fn int4_coarser_than_int8() {
        let values: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 101) as f32 * 0.01 - 0.5)
            .collect();
        let q8 = QuantizedVector::quantize(&values, QuantFormat::Int8).unwrap();
        let q4 = QuantizedVector::quantize(&values, QuantFormat::Int4).unwrap();
        assert!(q4.reconstruction_error(&values) > q8.reconstruction_error(&values));
    }

    #[test]
    fn fp16_round_trip_exact_for_representable() {
        let values = vec![1.0, -2.5, 0.125, 4.0];
        let q = QuantizedVector::quantize(&values, QuantFormat::Fp16).unwrap();
        assert_eq!(q.dequantize(), values);
    }

    #[test]
    fn empty_vector_rejected() {
        assert!(QuantizedVector::quantize(&[], QuantFormat::Int8).is_err());
    }

    #[test]
    fn zero_vector_round_trips() {
        let values = vec![0.0; 8];
        let q = QuantizedVector::quantize(&values, QuantFormat::Int8).unwrap();
        assert_eq!(q.dequantize(), values);
    }

    #[test]
    fn bit_flip_changes_value_and_is_reversible() {
        let values = vec![0.5, -0.25, 0.75];
        let mut q = QuantizedVector::quantize(&values, QuantFormat::Fp16).unwrap();
        let before = q.dequantize()[1];
        q.flip_bit(1, 10).unwrap();
        let after = q.dequantize()[1];
        assert_ne!(before, after);
        q.flip_bit(1, 10).unwrap();
        assert_eq!(q.dequantize()[1], before);
    }

    #[test]
    fn bit_flip_bounds_checked() {
        let mut q = QuantizedVector::quantize(&[1.0], QuantFormat::Int8).unwrap();
        assert!(q.flip_bit(1, 0).is_err());
        assert!(q.flip_bit(0, 8).is_err());
        assert!(q.flip_bit(0, 7).is_ok());
    }

    #[test]
    fn int4_bit_flip_stays_in_range() {
        let mut q = QuantizedVector::quantize(&[0.3, -0.3], QuantFormat::Int4).unwrap();
        for bit in 0..4 {
            q.flip_bit(0, bit).unwrap();
        }
        let v = q.dequantize();
        assert!(v[0].abs() <= 8.0 * q.scale() + 1e-6);
    }

    #[test]
    fn matrix_quantization_per_row_scales() {
        let m = Matrix::from_rows(vec![vec![0.01, -0.02, 0.03], vec![10.0, -20.0, 30.0]]).unwrap();
        let q = QuantizedMatrix::quantize(&m, QuantFormat::Int8).unwrap();
        // Per-row scaling keeps both rows accurate despite the magnitude gap.
        assert!(q.reconstruction_error(&m) < 0.2);
        let d = q.dequantize();
        assert!((d.get(0, 2) - 0.03).abs() < 0.001);
        assert!((d.get(1, 2) - 30.0).abs() < 0.5);
    }

    #[test]
    fn matrix_storage_bytes() {
        let m = Matrix::zeros(4, 8).unwrap();
        let q = QuantizedMatrix::quantize(&m, QuantFormat::Int8).unwrap();
        assert_eq!(q.storage_bytes(), 32);
        let q4 = QuantizedMatrix::quantize(&m, QuantFormat::Int4).unwrap();
        assert_eq!(q4.storage_bytes(), 16);
    }
}
