//! Deterministic random-number utilities.
//!
//! Every stochastic component of the reproduction — surrogate weight
//! generation, synthetic workloads, retention-failure sampling — is seeded
//! explicitly so that experiments are exactly reproducible run-to-run.  This
//! module provides a thin layer over `rand_chacha::ChaCha12Rng` plus the
//! distributions the surrogate model needs (Gaussian, Zipf-like heavy-tailed,
//! and log-normal for eDRAM retention times).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The deterministic RNG used across the workspace.
pub type DetRng = ChaCha12Rng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> DetRng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Derives a child RNG from a parent seed and a stream label, so that
/// independent components (e.g. per-layer weights) get decorrelated streams
/// while remaining reproducible.
pub fn substream(seed: u64, label: &str) -> DetRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha12Rng::seed_from_u64(seed ^ hash)
}

/// Derives a child RNG from a parent seed and a pair of integer labels, for
/// components indexed by position rather than name — e.g. the per-`(layer,
/// head)` fault-injection lanes.  Unlike [`substream`] this never allocates or
/// hashes bytes, so it is safe to call on hot paths.
///
/// The labels are mixed through a SplitMix64-style finalizer so that adjacent
/// `(a, b)` pairs produce decorrelated streams.
pub fn lane(seed: u64, a: u64, b: u64) -> DetRng {
    let mut z =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    ChaCha12Rng::seed_from_u64(z)
}

/// Samples a standard normal value using the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Samples a normal value with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f32, std_dev: f32) -> f32 {
    mean + std_dev * standard_normal(rng)
}

/// Samples a log-normal value parameterised by the mean and standard deviation
/// of the underlying normal (i.e. of `ln(X)`).
///
/// Used for the eDRAM retention-time distribution: per-cell retention times in
/// 65nm eDRAM follow a heavy-tailed distribution whose weak tail determines the
/// refresh-interval-to-failure-rate curve of Fig. 4.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f32, sigma: f32) -> f32 {
    normal(rng, mu, sigma).exp()
}

/// Samples an index in `0..n` from a Zipf-like power-law distribution with
/// exponent `s`.  Smaller indices are more likely.
///
/// Used to build heavy-tailed token-importance structure in the synthetic
/// workloads: a few "heavy hitter" tokens dominate attention mass, mirroring
/// the empirical observation behind H2O and AERP.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn zipf_index<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f32) -> usize {
    assert!(n > 0, "zipf support must be non-empty");
    // Inverse-CDF sampling over the (unnormalized) weights 1/(k+1)^s.
    let weights: Vec<f32> = (0..n).map(|k| 1.0 / ((k + 1) as f32).powf(s)).collect();
    let total: f32 = weights.iter().sum();
    let mut target = rng.gen::<f32>() * total;
    for (idx, w) in weights.iter().enumerate() {
        if target < *w {
            return idx;
        }
        target -= w;
    }
    n - 1
}

/// Fills a slice with i.i.d. normal values scaled for a fan-in of `fan_in`
/// (Xavier/Glorot-style initialization), producing well-conditioned surrogate
/// weight matrices.
pub fn fill_xavier<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], fan_in: usize) {
    let std_dev = (1.0 / fan_in.max(1) as f32).sqrt();
    for v in out.iter_mut() {
        *v = normal(rng, 0.0, std_dev);
    }
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn lanes_differ_by_label_and_are_reproducible() {
        let draw = |a: u64, b: u64| -> Vec<u64> {
            let mut rng = lane(42, a, b);
            (0..8).map(|_| rng.gen()).collect()
        };
        assert_eq!(draw(0, 0), draw(0, 0));
        assert_ne!(draw(0, 0), draw(0, 1));
        assert_ne!(draw(0, 1), draw(1, 0));
        assert_ne!(draw(1, 1), draw(0, 0));
    }

    #[test]
    fn substreams_differ_by_label() {
        let mut a = substream(42, "layer0");
        let mut b = substream(42, "layer1");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1);
        assert!((var - 9.0).abs() < 0.5);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = seeded(9);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn zipf_prefers_small_indices() {
        let mut rng = seeded(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[1] > counts[9]);
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut rng = seeded(13);
        for _ in 0..1000 {
            assert!(zipf_index(&mut rng, 7, 0.8) < 7);
        }
    }

    #[test]
    fn xavier_scale_shrinks_with_fan_in() {
        let mut rng = seeded(17);
        let mut small = vec![0.0; 4096];
        let mut large = vec![0.0; 4096];
        fill_xavier(&mut rng, &mut small, 16);
        fill_xavier(&mut rng, &mut large, 1024);
        let var = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!(var(&small) > var(&large) * 10.0);
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = seeded(19);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
    }
}
