//! Error type for the tensor substrate.

use std::fmt;

/// Errors produced by tensor operations.
///
/// All fallible public functions in this crate return [`TensorError`] so that
/// callers can use `?` and error-handling libraries uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An index was out of bounds for the given dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension size it was checked against.
        len: usize,
    },
    /// A matrix was constructed from rows of unequal length.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// A dimension argument was zero where a positive size is required.
    EmptyDimension {
        /// Name of the offending dimension.
        what: &'static str,
    },
    /// A quantization parameter was invalid (e.g. unsupported bit width).
    InvalidQuantization {
        /// Explanation of the failure.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            TensorError::RaggedRows { expected, found } => write!(
                f,
                "ragged rows: expected row length {expected}, found {found}"
            ),
            TensorError::EmptyDimension { what } => {
                write!(f, "dimension `{what}` must be non-zero")
            }
            TensorError::InvalidQuantization { reason } => {
                write!(f, "invalid quantization: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn all_variants_display_nonempty() {
        let errs: Vec<TensorError> = vec![
            TensorError::IndexOutOfBounds { index: 7, len: 3 },
            TensorError::RaggedRows {
                expected: 4,
                found: 2,
            },
            TensorError::EmptyDimension { what: "rows" },
            TensorError::InvalidQuantization {
                reason: "bit width 3 unsupported".to_string(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
