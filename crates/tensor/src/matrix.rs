//! Dense row-major matrices and vectors.
//!
//! The functional LLM surrogate only requires small dense linear algebra:
//! matrix-vector products for the per-token projections, dot products for the
//! attention scores, and a handful of element-wise transforms.  [`Matrix`] is a
//! simple row-major `Vec<f32>` container with checked constructors and
//! shape-checked operations.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A vector of `f32` values.
///
/// This is a plain type alias: vectors interoperate directly with slices and
/// standard iterator adaptors, which keeps the functional-model code close to
/// the paper's equations.
pub type Vector = Vec<f32>;

/// A dense, row-major matrix of `f32` values.
///
/// # Example
///
/// ```rust
/// use kelle_tensor::Matrix;
///
/// # fn main() -> Result<(), kelle_tensor::TensorError> {
/// let m = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 2.0]])?;
/// let v = m.matvec(&[3.0, 4.0])?;
/// assert_eq!(v, vec![3.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 {
            return Err(TensorError::EmptyDimension { what: "rows" });
        }
        if cols == 0 {
            return Err(TensorError::EmptyDimension { what: "cols" });
        }
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n`-by-`n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "identity dimension must be non-zero");
        let mut m = Self::zeros(n, n).expect("non-zero checked above");
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a vector of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for an empty row set or empty
    /// rows, and [`TensorError::RaggedRows`] if row lengths differ.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::EmptyDimension { what: "rows" });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(TensorError::EmptyDimension { what: "cols" });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in &rows {
            if row.len() != cols {
                return Err(TensorError::RaggedRows {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`
    /// and [`TensorError::EmptyDimension`] for zero dimensions.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if rows == 0 {
            return Err(TensorError::EmptyDimension { what: "rows" });
        }
        if cols == 0 {
            return Err(TensorError::EmptyDimension { what: "cols" });
        }
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "from_flat",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> Result<&[f32]> {
        if row >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        Ok(&self.data[row * self.cols..(row + 1) * self.cols])
    }

    /// Copies column `col` into a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Result<Vector> {
        if col >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: col,
                len: self.cols,
            });
        }
        Ok((0..self.rows).map(|r| self.get(r, col)).collect())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vector> {
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0f32; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Vector-matrix product `v^T * self`, i.e. treating `v` as a row vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f32]) -> Result<Vector> {
        if v.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: (self.rows, self.cols),
            });
        }
        let mut out = vec![0.0f32; self.cols];
        for (r, &coeff) in v.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, x) in out.iter_mut().zip(row.iter()) {
                *o += coeff * x;
            }
        }
        Ok(out)
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) + a * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows).expect("shape is non-zero");
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Scales every element by `factor`, returning a new matrix.
    pub fn scaled(&self, factor: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Element-wise sum with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// The Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Number of `f32` elements stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements (never true for a valid matrix).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths; use in inner loops where the
/// lengths are guaranteed by construction.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot product operands must be equal length"
    );
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_rejects_empty() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::zeros(3, 3).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(vec![vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, TensorError::RaggedRows { .. }));
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let out = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let v = vec![1.0, -1.0, 2.0];
        let a = m.vecmat(&v).unwrap();
        let b = m.transpose().matvec(&v).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let id = Matrix::identity(2);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_and_column_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1).unwrap(), &[3.0, 4.0]);
        assert_eq!(m.column(0).unwrap(), vec![1.0, 3.0]);
        assert!(m.row(2).is_err());
        assert!(m.column(5).is_err());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn add_and_scale() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = m.scaled(2.0);
        let sum = m.add(&m).unwrap();
        assert_eq!(s, sum);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let id = Matrix::identity(4);
        assert!((id.frobenius_norm() - 2.0).abs() < 1e-6);
    }
}
